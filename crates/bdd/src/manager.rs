//! The BDD manager: complement-edged nodes, an open-addressed unique
//! table, a lossy direct-mapped ITE cache, and a mark-and-sweep GC.
//!
//! All construction funnels through a budget-guarded ITE: the `try_*`
//! operations accept a [`ResourceBudget`] and return a typed
//! [`BudgetExceeded`] instead of growing the unique table without bound —
//! the known failure mode of BDD-derived analysis on wide reconvergent
//! cones. The classic infallible operations remain and simply run with an
//! unlimited budget.
//!
//! # Kernel layout
//!
//! A [`Ref`] packs a node index and a complement bit (`index << 1 | c`),
//! so negation is a bit flip, a function and its complement share one
//! subgraph, and there is a single terminal node (`FALSE` is the plain
//! terminal, `TRUE` its complement). Canonicity requires one extra
//! invariant on top of the usual ROBDD reduction rules: the stored `hi`
//! edge of every node is regular (non-complemented); [`Bdd::ite`]
//! normalizes its arguments with the standard-triple rules before probing
//! the cache so equivalent calls share cache entries.
//!
//! The unique table is a power-of-two open-addressing (linear probing)
//! array of node indices under a cheap multiplicative integer hash; the
//! ITE cache is direct-mapped and lossy (a colliding insert evicts). Both
//! avoid SipHash and per-entry allocation on the hot path.
//!
//! Nodes unreachable from the [`Bdd::protect`]ed roots can be reclaimed by
//! [`Bdd::gc`]; managers with [`Bdd::set_auto_gc`] enabled collect
//! automatically when a node budget trips, so [`ResourceBudget`]'s node
//! meter bounds *live* nodes rather than lifetime allocations. Freed slots
//! are chained into a free list and reused by later allocations.

use budget::{BudgetExceeded, ResourceBudget};

/// Reference to a BDD node. Copyable and cheap; only meaningful together
/// with the [`Bdd`] manager that created it.
///
/// Internally this packs a node index and a complement bit, which is why
/// negation never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// The constant-false function.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true function.
    pub const TRUE: Ref = Ref(1);

    /// Whether this is one of the two constant functions.
    pub fn is_const(self) -> bool {
        self.0 < 2
    }

    /// For terminals, the constant value.
    ///
    /// # Panics
    ///
    /// Panics on non-terminal references.
    pub fn const_value(self) -> bool {
        match self.0 {
            0 => false,
            1 => true,
            _ => panic!("not a terminal"),
        }
    }

    #[inline]
    fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    #[inline]
    fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    #[inline]
    fn complement(self) -> Ref {
        Ref(self.0 ^ 1)
    }

    /// Plain node index, for the serialization layer (`crate::store`).
    #[inline]
    pub(crate) fn store_index(self) -> usize {
        self.index()
    }

    /// Complement bit, for the serialization layer (`crate::store`).
    #[inline]
    pub(crate) fn store_complemented(self) -> bool {
        self.is_complemented()
    }
}

/// Variable tag of the terminal node.
const TERMINAL_VAR: u32 = u32::MAX;
/// Variable tag of free-list entries (never a legal variable).
const FREE_VAR: u32 = u32::MAX - 1;
/// Empty slot in the open-addressed unique table.
const EMPTY: u32 = u32::MAX;
/// Free-list terminator.
const NIL: u32 = u32::MAX;
/// Upper bound on ITE-cache entries (the cache tracks arena size below it).
const MAX_CACHE: usize = 1 << 22;

/// `lo`/`hi` hold raw [`Ref`] bits; `hi` is always regular.
#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

impl CacheEntry {
    const INVALID: CacheEntry = CacheEntry {
        f: u32::MAX,
        g: u32::MAX,
        h: u32::MAX,
        r: u32::MAX,
    };
}

/// Cheap multiplicative (Fx-style) hash of a node or ITE triple. The
/// default SipHash is measurably slower on this 12-byte fixed-size key.
#[inline]
fn triple_hash(a: u32, b: u32, c: u32) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = (a as u64 ^ 0x9e37_79b9_7f4a_7c15).wrapping_mul(K);
    h = (h.rotate_left(26) ^ b as u64).wrapping_mul(K);
    h = (h.rotate_left(26) ^ c as u64).wrapping_mul(K);
    h ^ (h >> 32)
}

/// Whether `LPOPT_BDD_GC_STRESS` forces a full collection on every
/// allocation (CI uses this to prove no live node is ever unrooted).
fn gc_stress_enabled() -> bool {
    static STRESS: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *STRESS.get_or_init(|| std::env::var_os("LPOPT_BDD_GC_STRESS").is_some_and(|v| v != "0"))
}

/// Size statistics of a manager, see [`Bdd::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddStats {
    /// Live interned nodes (including the terminal).
    pub nodes: usize,
    /// Number of distinct variables seen.
    pub vars: usize,
    /// Valid entries in the ITE cache.
    pub cache_entries: usize,
}

/// Operation counters accumulated by a manager over its lifetime, see
/// [`Bdd::op_counts`].
///
/// Plain `u64` fields incremented inline: this crate sits below the
/// observability layer, so the manager counts its own work and callers
/// (the power estimators) publish the totals. The counts are deterministic
/// for a given construction sequence, which makes them safe to compare in
/// golden tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Recursive ITE invocations (including terminal-resolved ones).
    pub ite_calls: u64,
    /// ITE memo-cache probes.
    pub cache_lookups: u64,
    /// ITE memo-cache probes that hit.
    pub cache_hits: u64,
    /// Direct-mapped cache inserts that displaced a different live entry.
    pub cache_evictions: u64,
    /// Unique-table probes (one per candidate node with `lo != hi`).
    pub unique_lookups: u64,
    /// Unique-table probes that found an existing node.
    pub unique_hits: u64,
    /// Nodes interned (unique-table misses).
    pub nodes_created: u64,
    /// Garbage collections run (explicit, budget-pressure, or stress).
    pub gc_runs: u64,
    /// Nodes reclaimed by garbage collection over the manager's lifetime.
    pub nodes_freed: u64,
    /// Dynamic-reorder passes run (growth-triggered or explicit).
    pub reorder_runs: u64,
    /// Adjacent-level swaps performed across all reorder passes.
    pub reorder_swaps: u64,
    /// Sum over passes of the reachable node count entering each pass.
    pub reorder_nodes_before: u64,
    /// Sum over passes of the reachable node count leaving each pass.
    pub reorder_nodes_after: u64,
}

/// When the manager runs an in-place reorder pass ([`Bdd::reorder_now`])
/// automatically. Checked at the top of every [`Bdd::try_ite`] — a safe
/// point where no ITE recursion is in flight — so a pass can rewrite the
/// level structure without invalidating in-flight cofactors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderSchedule {
    /// Never reorder automatically (the fixed-order kernel behavior).
    #[default]
    Off,
    /// Reorder whenever live nodes grew at all since the last pass.
    Always,
    /// Reorder when live nodes reach `min_nodes` and have grown by
    /// `growth_percent` percent since the last pass ended.
    Threshold {
        /// Growth since the last pass that triggers the next one (percent).
        growth_percent: u32,
        /// Floor below which no pass ever triggers (tiny graphs never pay).
        min_nodes: usize,
    },
    /// Like [`ReorderSchedule::Threshold`] with the default growth factor,
    /// but each pass stops starting new sift walks once `slice_ms` of wall
    /// time has elapsed (OBDDimal-style time-sliced reordering). The walk
    /// in progress always completes, so the manager is never left
    /// mid-swap.
    TimeSliced {
        /// Wall-clock slice per pass, in milliseconds.
        slice_ms: u64,
    },
}

/// Default growth trigger: reorder when live nodes double.
const REORDER_GROWTH_PERCENT: u32 = 100;
/// Default floor: never reorder managers smaller than this.
const REORDER_MIN_NODES: usize = 512;
/// A sift walk abandons a direction once the graph grows past
/// `size * REORDER_MAX_GROWTH_NUM / REORDER_MAX_GROWTH_DEN`.
const REORDER_MAX_GROWTH_NUM: usize = 6;
const REORDER_MAX_GROWTH_DEN: usize = 5;

impl ReorderSchedule {
    /// [`ReorderSchedule::Threshold`] with the default trigger parameters
    /// (double-the-nodes growth, 512-node floor).
    pub fn threshold() -> ReorderSchedule {
        ReorderSchedule::Threshold {
            growth_percent: REORDER_GROWTH_PERCENT,
            min_nodes: REORDER_MIN_NODES,
        }
    }

    /// Parse a schedule spec: `off`, `always`, `threshold`,
    /// `threshold:<min_nodes>`, `timeslice` or `timeslice:<ms>`.
    pub fn parse(spec: &str) -> Result<ReorderSchedule, String> {
        let (head, arg) = match spec.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (spec, None),
        };
        match (head, arg) {
            ("off", None) => Ok(ReorderSchedule::Off),
            ("always", None) => Ok(ReorderSchedule::Always),
            ("threshold", None) => Ok(ReorderSchedule::threshold()),
            ("threshold", Some(n)) => n
                .parse()
                .map(|min_nodes| ReorderSchedule::Threshold {
                    growth_percent: REORDER_GROWTH_PERCENT,
                    min_nodes,
                })
                .map_err(|_| format!("bad threshold node count: {n:?}")),
            ("timeslice", None) => Ok(ReorderSchedule::TimeSliced { slice_ms: 50 }),
            ("timeslice", Some(ms)) => ms
                .parse()
                .map(|slice_ms| ReorderSchedule::TimeSliced { slice_ms })
                .map_err(|_| format!("bad timeslice milliseconds: {ms:?}")),
            _ => Err(format!(
                "unknown reorder schedule {spec:?} (want off|always|threshold[:N]|timeslice[:MS])"
            )),
        }
    }
}

impl std::fmt::Display for ReorderSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorderSchedule::Off => write!(f, "off"),
            ReorderSchedule::Always => write!(f, "always"),
            ReorderSchedule::Threshold { min_nodes, .. } => write!(f, "threshold:{min_nodes}"),
            ReorderSchedule::TimeSliced { slice_ms } => write!(f, "timeslice:{slice_ms}"),
        }
    }
}

/// A reduced ordered BDD manager (arena + unique table + ITE cache).
///
/// Variables are `u32` indices ordered by value: smaller indices are closer
/// to the root. All functions returned by the manager are canonical: two
/// [`Ref`]s are equal iff the Boolean functions are equal.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    /// Open-addressed unique table of node indices.
    table: Vec<u32>,
    table_mask: usize,
    table_len: usize,
    /// Direct-mapped lossy ITE cache.
    cache: Vec<CacheEntry>,
    cache_mask: usize,
    /// Head of the free list threaded through freed nodes' `lo` fields.
    free_head: u32,
    live_nodes: usize,
    peak_live: usize,
    num_vars: u32,
    counts: OpCounts,
    /// Externally protected roots (raw ref bits); GC keeps these alive.
    roots: Vec<u32>,
    /// Refs held by in-flight recursions (raw ref bits); GC-protected.
    guard: Vec<u32>,
    /// Collect under node-budget pressure (and under the stress env var).
    auto_gc: bool,
    stress_gc: bool,
    /// `var2level[v]` = level of variable `v` (smaller = nearer the root).
    /// Extended lazily as variables appear; vars beyond the vector sit at
    /// their identity level.
    var2level: Vec<u32>,
    /// Inverse permutation of `var2level`.
    level2var: Vec<u32>,
    /// Automatic in-place reorder policy (see [`ReorderSchedule`]).
    schedule: ReorderSchedule,
    /// Live-node count when the last reorder pass finished (trigger base).
    reorder_baseline: usize,
    /// A reorder pass is running: suppress stress-GC inside swap `mk`s so
    /// the snapshotted candidate lists stay valid.
    in_reorder: bool,
}

impl Default for Bdd {
    fn default() -> Bdd {
        Bdd::new()
    }
}

const INITIAL_TABLE: usize = 1 << 10;
const INITIAL_CACHE: usize = 1 << 10;

impl Bdd {
    /// Create an empty manager. GC is off by default: short-lived managers
    /// (the common case in tests and one-shot analyses) never pay for
    /// rooting. Long-lived builders opt in with [`Bdd::set_auto_gc`].
    pub fn new() -> Bdd {
        Bdd {
            nodes: vec![Node {
                var: TERMINAL_VAR,
                lo: 0,
                hi: 0,
            }],
            table: vec![EMPTY; INITIAL_TABLE],
            table_mask: INITIAL_TABLE - 1,
            table_len: 0,
            cache: vec![CacheEntry::INVALID; INITIAL_CACHE],
            cache_mask: INITIAL_CACHE - 1,
            free_head: NIL,
            live_nodes: 1,
            peak_live: 1,
            num_vars: 0,
            counts: OpCounts::default(),
            roots: Vec::new(),
            guard: Vec::new(),
            auto_gc: false,
            stress_gc: false,
            var2level: Vec::new(),
            level2var: Vec::new(),
            schedule: ReorderSchedule::Off,
            reorder_baseline: 1,
            in_reorder: false,
        }
    }

    /// Lifetime operation counters (monotonic; never reset by operations).
    pub fn op_counts(&self) -> OpCounts {
        self.counts
    }

    /// The constant function `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    /// The projection function of variable `index`.
    pub fn var(&mut self, index: u32) -> Ref {
        self.mk(index, Ref::FALSE, Ref::TRUE)
    }

    /// The negated projection of variable `index`.
    pub fn nvar(&mut self, index: u32) -> Ref {
        self.mk(index, Ref::TRUE, Ref::FALSE)
    }

    /// Number of variables the manager has seen.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Whether the manager holds nothing but the terminal — the state in
    /// which [`Bdd::set_order`] may install a custom variable order.
    pub fn is_empty(&self) -> bool {
        self.live_nodes == 1 && self.nodes.len() == 1
    }

    /// Manager statistics.
    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes: self.live_nodes,
            vars: self.num_vars as usize,
            cache_entries: self.cache.iter().filter(|e| e.f != u32::MAX).count(),
        }
    }

    // ------------------------------------------------------------------
    // Allocation: unique table + free list
    // ------------------------------------------------------------------

    /// Reduced, complement-normalized node constructor.
    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        // Canonical form: the stored hi edge is regular. mk(v, l, !h) is
        // the complement of mk(v, !l, h).
        if hi.is_complemented() {
            return self.mk_raw(var, lo.complement(), hi.complement()).complement();
        }
        self.mk_raw(var, lo, hi)
    }

    /// `hi` regular, `lo != hi`.
    fn mk_raw(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        debug_assert!(!hi.is_complemented());
        debug_assert_ne!(lo, hi);
        if self.stress_gc && !self.in_reorder {
            // Pin the children: the caller may hold them unrooted. During a
            // reorder pass collection is deferred to the swap boundaries —
            // a mid-swap sweep could free a not-yet-rewritten candidate.
            let base = self.guard.len();
            self.guard.push(lo.0);
            self.guard.push(hi.0);
            self.gc_run();
            self.guard.truncate(base);
        }
        self.num_vars = self.num_vars.max(var + 1);
        if (self.var2level.len() as u32) < self.num_vars && !self.var2level.is_empty() {
            // A custom order is in force: append the new variables at the
            // bottom identity levels so the maps stay inverse permutations.
            while (self.var2level.len() as u32) < self.num_vars {
                let v = self.var2level.len() as u32;
                self.var2level.push(v);
                self.level2var.push(v);
            }
        }
        self.counts.unique_lookups += 1;
        let mask = self.table_mask;
        let mut slot = triple_hash(var, lo.0, hi.0) as usize & mask;
        loop {
            let idx = self.table[slot];
            if idx == EMPTY {
                break;
            }
            let n = self.nodes[idx as usize];
            if n.var == var && n.lo == lo.0 && n.hi == hi.0 {
                self.counts.unique_hits += 1;
                return Ref(idx << 1);
            }
            slot = (slot + 1) & mask;
        }
        self.counts.nodes_created += 1;
        let idx = if self.free_head != NIL {
            let i = self.free_head;
            self.free_head = self.nodes[i as usize].lo;
            self.nodes[i as usize] = Node {
                var,
                lo: lo.0,
                hi: hi.0,
            };
            i
        } else {
            let i = self.nodes.len() as u32;
            self.nodes.push(Node {
                var,
                lo: lo.0,
                hi: hi.0,
            });
            i
        };
        self.table[slot] = idx;
        self.table_len += 1;
        self.live_nodes += 1;
        self.peak_live = self.peak_live.max(self.live_nodes);
        if self.table_len * 4 >= (mask + 1) * 3 {
            self.rebuild_table((mask + 1) * 2);
        }
        Ref(idx << 1)
    }

    /// Re-intern every live node into a table of `cap` slots (growth and
    /// post-GC rebuild). Iterating the arena in index order keeps the
    /// probe sequences — and therefore all counters — deterministic.
    fn rebuild_table(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two());
        self.table = vec![EMPTY; cap];
        self.table_mask = cap - 1;
        self.table_len = 0;
        for i in 1..self.nodes.len() {
            let n = self.nodes[i];
            if n.var == FREE_VAR {
                continue;
            }
            let mut slot = triple_hash(n.var, n.lo, n.hi) as usize & self.table_mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & self.table_mask;
            }
            self.table[slot] = i as u32;
            self.table_len += 1;
        }
    }

    fn node(&self, r: Ref) -> Node {
        self.nodes[r.index()]
    }

    /// Top variable of `f` ([`u32::MAX`] for terminals).
    pub fn top_var(&self, f: Ref) -> u32 {
        self.node(f).var
    }

    /// Low (variable = 0) cofactor of the root node.
    pub fn low(&self, f: Ref) -> Ref {
        Ref(self.node(f).lo ^ (f.0 & 1))
    }

    /// High (variable = 1) cofactor of the root node.
    pub fn high(&self, f: Ref) -> Ref {
        Ref(self.node(f).hi ^ (f.0 & 1))
    }

    /// Raw stored low edge of `f`'s node — the plain node's cofactor,
    /// ignoring `f`'s own complement bit. Serialization walks plain nodes
    /// so a function and its complement share one stored subgraph.
    pub(crate) fn stored_low(&self, f: Ref) -> Ref {
        Ref(self.node(f).lo)
    }

    /// Raw stored high edge of `f`'s node (regular by the canonicity
    /// invariant), ignoring `f`'s own complement bit.
    pub(crate) fn stored_high(&self, f: Ref) -> Ref {
        Ref(self.node(f).hi)
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// Enable (or disable) automatic collection: when a node budget
    /// trips, the manager first sweeps garbage and only errors if *live*
    /// nodes still exceed the limit. With auto-GC on, any [`Ref`] held
    /// across an allocating call must be kept alive via [`Bdd::protect`].
    pub fn set_auto_gc(&mut self, on: bool) {
        self.auto_gc = on;
        self.stress_gc = on && gc_stress_enabled();
    }

    /// Whether automatic collection is enabled.
    pub fn auto_gc(&self) -> bool {
        self.auto_gc
    }

    /// Root `f`: it (and its subgraph) survives garbage collection.
    pub fn protect(&mut self, f: Ref) {
        self.roots.push(f.0);
    }

    /// Drop one earlier [`Bdd::protect`] of `f` (no-op if not rooted).
    pub fn unprotect(&mut self, f: Ref) {
        if let Some(pos) = self.roots.iter().rposition(|&r| r == f.0) {
            self.roots.remove(pos);
        }
    }

    /// Drop every root.
    pub fn clear_roots(&mut self) {
        self.roots.clear();
    }

    /// Mark-and-sweep: free every node unreachable from the protected
    /// roots, wipe the ITE cache, and rebuild the unique table. Returns
    /// the number of nodes freed. Unrooted [`Ref`]s dangle afterwards.
    pub fn gc(&mut self) -> usize {
        self.gc_run()
    }

    fn gc_run(&mut self) -> usize {
        self.counts.gc_runs += 1;
        let n = self.nodes.len();
        let mut marked = vec![false; n];
        marked[0] = true;
        let mut stack: Vec<usize> = self
            .roots
            .iter()
            .chain(self.guard.iter())
            .map(|&r| (r >> 1) as usize)
            .collect();
        while let Some(i) = stack.pop() {
            if marked[i] {
                continue;
            }
            marked[i] = true;
            let node = self.nodes[i];
            stack.push((node.lo >> 1) as usize);
            stack.push((node.hi >> 1) as usize);
        }
        let mut freed = 0usize;
        for (i, &alive) in marked.iter().enumerate().skip(1) {
            if !alive && self.nodes[i].var != FREE_VAR {
                self.nodes[i] = Node {
                    var: FREE_VAR,
                    lo: self.free_head,
                    hi: 0,
                };
                self.free_head = i as u32;
                freed += 1;
            }
        }
        if freed > 0 {
            self.live_nodes -= freed;
            self.counts.nodes_freed += freed as u64;
            // Freed entries would otherwise false-hit recycled indices.
            self.rebuild_table(self.table_mask + 1);
            for e in self.cache.iter_mut() {
                *e = CacheEntry::INVALID;
            }
        }
        freed
    }

    /// High-water mark of live nodes over the manager's lifetime.
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live
    }

    // ------------------------------------------------------------------
    // Core operations
    // ------------------------------------------------------------------

    /// If-then-else: `ite(f, g, h) = f·g + f'·h`. All other Boolean
    /// operations are derived from this.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        match self.try_ite(f, g, h, &ResourceBudget::unlimited()) {
            Ok(r) => r,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// Budget-guarded [`Bdd::ite`]: fails with a typed error once *live*
    /// nodes reach `budget.max_bdd_nodes` (after attempting a GC when
    /// auto-GC is on) or the deadline passes, leaving the manager in a
    /// usable (partially grown) state.
    pub fn try_ite(
        &mut self,
        f: Ref,
        g: Ref,
        h: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        // Top of a fresh recursion is the one safe point for an automatic
        // in-place reorder: no cofactor pair chosen under the old order is
        // held by a caller frame. The operands are pinned first — a reorder
        // pass ends with a collection, and e.g. an n-ary fold's accumulator
        // may be neither rooted nor anyone's child.
        if self.reorder_due() {
            let base = self.guard.len();
            self.guard.push(f.0);
            self.guard.push(g.0);
            self.guard.push(h.0);
            self.reorder_now();
            self.guard.truncate(base);
        }
        let limit = budget.max_bdd_nodes_or(u64::MAX);
        self.ite_guarded(f, g, h, budget, &mut 0, limit)
    }

    /// The one recursion every construction goes through. `ops` counts
    /// cache misses so the (syscall-cost) deadline check can be amortized;
    /// `limit` is the pre-resolved node bound.
    fn ite_guarded(
        &mut self,
        mut f: Ref,
        mut g: Ref,
        mut h: Ref,
        budget: &ResourceBudget,
        ops: &mut u64,
        limit: u64,
    ) -> Result<Ref, BudgetExceeded> {
        self.counts.ite_calls += 1;
        // Terminal cases.
        if f == Ref::TRUE {
            return Ok(g);
        }
        if f == Ref::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        // Standard-triple reduction: replace g/h when they repeat f.
        if g == f {
            g = Ref::TRUE;
        } else if g == f.complement() {
            g = Ref::FALSE;
        }
        if h == f {
            h = Ref::FALSE;
        } else if h == f.complement() {
            h = Ref::TRUE;
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return Ok(f);
        }
        if g == Ref::FALSE && h == Ref::TRUE {
            return Ok(f.complement());
        }
        if g == h {
            return Ok(g);
        }
        // Canonical argument order for the commutative forms, so e.g.
        // or(a, b) and or(b, a) share one cache entry.
        if g == Ref::TRUE {
            if self.precedes(h, f) {
                std::mem::swap(&mut f, &mut h);
            }
        } else if g == Ref::FALSE {
            if self.precedes(h, f) {
                let t = f;
                f = h.complement();
                h = t.complement();
            }
        } else if h == Ref::TRUE {
            if self.precedes(g, f) {
                let t = f;
                f = g.complement();
                g = t.complement();
            }
        } else if h == Ref::FALSE {
            if self.precedes(g, f) {
                std::mem::swap(&mut f, &mut g);
            }
        } else if g == h.complement() && self.precedes(g, f) {
            std::mem::swap(&mut f, &mut g);
            h = g.complement();
        }
        // Canonical complement marks: regular first argument ...
        if f.is_complemented() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        // ... and regular then-branch: ite(f, !g, !h) = !ite(f, g, h).
        let negate = g.is_complemented();
        if negate {
            g = g.complement();
            h = h.complement();
        }
        self.counts.cache_lookups += 1;
        let slot = triple_hash(f.0, g.0, h.0) as usize & self.cache_mask;
        let e = self.cache[slot];
        if e.f == f.0 && e.g == g.0 && e.h == h.0 {
            self.counts.cache_hits += 1;
            let r = Ref(e.r);
            return Ok(if negate { r.complement() } else { r });
        }
        // Cache miss: the only place nodes (and real work) can grow. Pin
        // the operands first — a top-level caller's operand (e.g. the
        // accumulator of an n-ary fold) may be neither rooted nor anyone's
        // child, and the budget check below may collect.
        let base = self.guard.len();
        self.guard.push(f.0);
        self.guard.push(g.0);
        self.guard.push(h.0);
        if self.live_nodes as u64 >= limit {
            if self.auto_gc {
                self.gc_run();
            }
            if self.live_nodes as u64 >= limit {
                self.guard.truncate(base);
                return Err(budget.bdd_nodes_exceeded(self.live_nodes as u64));
            }
        }
        *ops += 1;
        if *ops & 0xFFF == 0 {
            if let Err(e) = budget.check_deadline() {
                self.guard.truncate(base);
                return Err(e);
            }
        }
        let (vf, vg, vh) = (self.top_var(f), self.top_var(g), self.top_var(h));
        let (lf, lg, lh) = (self.level_of(vf), self.level_of(vg), self.level_of(vh));
        let lv = lf.min(lg).min(lh);
        let v = if lf == lv {
            vf
        } else if lg == lv {
            vg
        } else {
            vh
        };
        let (f0, f1) = self.cofactors_at(f, v);
        let (g0, g1) = self.cofactors_at(g, v);
        let (h0, h1) = self.cofactors_at(h, v);
        let lo = match self.ite_guarded(f0, g0, h0, budget, ops, limit) {
            Ok(r) => r,
            Err(e) => {
                self.guard.truncate(base);
                return Err(e);
            }
        };
        self.guard.push(lo.0);
        let hi = match self.ite_guarded(f1, g1, h1, budget, ops, limit) {
            Ok(r) => r,
            Err(e) => {
                self.guard.truncate(base);
                return Err(e);
            }
        };
        let r = self.mk(v, lo, hi);
        self.guard.truncate(base);
        self.cache_insert(f, g, h, r);
        Ok(if negate { r.complement() } else { r })
    }

    /// Deterministic operand order for commutative-form canonicalization:
    /// variable level first, allocation index as tie-break.
    #[inline]
    fn precedes(&self, a: Ref, b: Ref) -> bool {
        let (av, bv) = (
            self.level_of(self.top_var(a)),
            self.level_of(self.top_var(b)),
        );
        av < bv || (av == bv && a.index() < b.index())
    }

    /// Level of variable `var` under the current order (identity until a
    /// custom order or a reorder pass changes it). Sentinel tags
    /// ([`TERMINAL_VAR`], [`FREE_VAR`]) map to themselves, keeping
    /// terminals below every real level.
    #[inline]
    fn level_of(&self, var: u32) -> u32 {
        match self.var2level.get(var as usize) {
            Some(&l) => l,
            None => var,
        }
    }

    fn cache_insert(&mut self, f: Ref, g: Ref, h: Ref, r: Ref) {
        if self.cache.len() < self.nodes.len() && self.cache.len() < MAX_CACHE {
            let old = std::mem::replace(
                &mut self.cache,
                vec![CacheEntry::INVALID; (self.cache_mask + 1) * 2],
            );
            self.cache_mask = self.cache.len() - 1;
            for e in old {
                if e.f != u32::MAX {
                    let slot = triple_hash(e.f, e.g, e.h) as usize & self.cache_mask;
                    self.cache[slot] = e;
                }
            }
        }
        let slot = triple_hash(f.0, g.0, h.0) as usize & self.cache_mask;
        let e = self.cache[slot];
        if e.f != u32::MAX && (e.f, e.g, e.h) != (f.0, g.0, h.0) {
            self.counts.cache_evictions += 1;
        }
        self.cache[slot] = CacheEntry {
            f: f.0,
            g: g.0,
            h: h.0,
            r: r.0,
        };
    }

    fn cofactors_at(&self, f: Ref, v: u32) -> (Ref, Ref) {
        let n = self.node(f);
        if n.var == v {
            let s = f.0 & 1;
            (Ref(n.lo ^ s), Ref(n.hi ^ s))
        } else {
            (f, f)
        }
    }

    /// Negation. With complement edges this is a bit flip: no allocation,
    /// no cache traffic.
    pub fn not(&mut self, f: Ref) -> Ref {
        f.complement()
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g.complement(), g)
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, g.complement())
    }

    /// Implication `f -> g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::TRUE)
    }

    /// n-ary conjunction.
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        fs.into_iter().fold(Ref::TRUE, |acc, f| self.and(acc, f))
    }

    /// n-ary disjunction.
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        fs.into_iter().fold(Ref::FALSE, |acc, f| self.or(acc, f))
    }

    // ------------------------------------------------------------------
    // Budget-guarded operations (typed errors instead of unbounded growth)
    // ------------------------------------------------------------------

    /// Budget-guarded negation (never fails: negation is free).
    pub fn try_not(&mut self, f: Ref, _budget: &ResourceBudget) -> Result<Ref, BudgetExceeded> {
        Ok(f.complement())
    }

    /// Budget-guarded conjunction.
    pub fn try_and(
        &mut self,
        f: Ref,
        g: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        self.try_ite(f, g, Ref::FALSE, budget)
    }

    /// Budget-guarded disjunction.
    pub fn try_or(
        &mut self,
        f: Ref,
        g: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        self.try_ite(f, Ref::TRUE, g, budget)
    }

    /// Budget-guarded exclusive or.
    pub fn try_xor(
        &mut self,
        f: Ref,
        g: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        self.try_ite(f, g.complement(), g, budget)
    }

    /// Budget-guarded exclusive nor.
    pub fn try_xnor(
        &mut self,
        f: Ref,
        g: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        self.try_ite(f, g, g.complement(), budget)
    }

    /// Budget-guarded n-ary conjunction.
    pub fn try_and_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        let mut acc = Ref::TRUE;
        for f in fs {
            acc = self.try_and(acc, f, budget)?;
        }
        Ok(acc)
    }

    /// Budget-guarded n-ary disjunction.
    pub fn try_or_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        let mut acc = Ref::FALSE;
        for f in fs {
            acc = self.try_or(acc, f, budget)?;
        }
        Ok(acc)
    }

    /// Budget-guarded n-ary exclusive or (parity accumulation).
    pub fn try_xor_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        let mut acc = Ref::FALSE;
        for f in fs {
            acc = self.try_xor(acc, f, budget)?;
        }
        Ok(acc)
    }

    /// Live interned node count (including the terminal) — the quantity
    /// [`ResourceBudget::max_bdd_nodes`] bounds. Freed nodes don't count.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Restrict variable `var` to `value` (Shannon cofactor).
    pub fn restrict(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if self.level_of(n.var) > self.level_of(var) {
            return f; // var does not appear
        }
        let s = f.0 & 1;
        if n.var == var {
            return Ref(if value { n.hi } else { n.lo } ^ s);
        }
        let base = self.guard.len();
        self.guard.push(f.0);
        let lo = self.restrict(Ref(n.lo ^ s), var, value);
        self.guard.push(lo.0);
        let hi = self.restrict(Ref(n.hi ^ s), var, value);
        self.guard.truncate(base);
        self.mk(n.var, lo, hi)
    }

    /// Existential quantification over one variable.
    pub fn exists(&mut self, f: Ref, var: u32) -> Ref {
        let base = self.guard.len();
        let f0 = self.restrict(f, var, false);
        self.guard.push(f0.0);
        let f1 = self.restrict(f, var, true);
        self.guard.push(f1.0);
        let r = self.or(f0, f1);
        self.guard.truncate(base);
        r
    }

    /// Universal quantification over one variable.
    pub fn forall(&mut self, f: Ref, var: u32) -> Ref {
        let base = self.guard.len();
        let f0 = self.restrict(f, var, false);
        self.guard.push(f0.0);
        let f1 = self.restrict(f, var, true);
        self.guard.push(f1.0);
        let r = self.and(f0, f1);
        self.guard.truncate(base);
        r
    }

    /// Existential quantification over a set of variables.
    pub fn exists_many(&mut self, f: Ref, vars: &[u32]) -> Ref {
        vars.iter().fold(f, |acc, &v| self.exists(acc, v))
    }

    /// Universal quantification over a set of variables.
    pub fn forall_many(&mut self, f: Ref, vars: &[u32]) -> Ref {
        vars.iter().fold(f, |acc, &v| self.forall(acc, v))
    }

    /// Boolean difference `∂f/∂var = f|var=0 XOR f|var=1`.
    ///
    /// The probability of the Boolean difference is the core of
    /// transition-density power estimation.
    pub fn boolean_difference(&mut self, f: Ref, var: u32) -> Ref {
        let base = self.guard.len();
        let f0 = self.restrict(f, var, false);
        self.guard.push(f0.0);
        let f1 = self.restrict(f, var, true);
        self.guard.push(f1.0);
        let r = self.xor(f0, f1);
        self.guard.truncate(base);
        r
    }

    /// Substitute function `g` for variable `var` in `f`.
    pub fn compose(&mut self, f: Ref, var: u32, g: Ref) -> Ref {
        let base = self.guard.len();
        let f0 = self.restrict(f, var, false);
        self.guard.push(f0.0);
        let f1 = self.restrict(f, var, true);
        self.guard.push(f1.0);
        let r = self.ite(g, f1, f0);
        self.guard.truncate(base);
        r
    }

    /// Support: the set of variables `f` depends on, ascending.
    ///
    /// A function and its complement share one subgraph, so traversal
    /// tracks plain node indices, not signed refs.
    pub fn support(&self, f: Ref) -> Vec<u32> {
        let mut seen = std::collections::BTreeSet::new();
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![f.index()];
        while let Some(i) = stack.pop() {
            if i == 0 || visited[i] {
                continue;
            }
            visited[i] = true;
            let n = self.nodes[i];
            seen.insert(n.var);
            stack.push((n.lo >> 1) as usize);
            stack.push((n.hi >> 1) as usize);
        }
        seen.into_iter().collect()
    }

    /// Number of nodes in the graph of `f` (excluding terminals).
    pub fn size(&self, f: Ref) -> usize {
        self.size_many(std::slice::from_ref(&f))
    }

    // ------------------------------------------------------------------
    // Evaluation / counting
    // ------------------------------------------------------------------

    /// Evaluate `f` on an assignment (index `i` gives variable `i`).
    ///
    /// Variables beyond the slice default to `false`.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut r = f;
        while !r.is_const() {
            let n = self.node(r);
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            // Carry the accumulated complement parity down the path.
            r = Ref(if v { n.hi } else { n.lo } ^ (r.0 & 1));
        }
        r.const_value()
    }

    /// Number of satisfying assignments over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars` is smaller than some variable index in `f`'s
    /// support.
    pub fn sat_count(&self, f: Ref, nvars: u32) -> f64 {
        // Satisfying *fraction* per plain node (memoized densely by node
        // index); complemented refs read 1 - fraction. Fractions are
        // dyadic, so the final scale by 2^nvars is exact in f64 for any
        // count below 2^53 — same as the pre-complement-edge kernel.
        let mut memo = vec![f64::NAN; self.nodes.len()];
        self.frac_rec(f, nvars, &mut memo) * 2f64.powi(nvars as i32)
    }

    fn frac_rec(&self, f: Ref, nvars: u32, memo: &mut [f64]) -> f64 {
        if f == Ref::FALSE {
            return 0.0;
        }
        if f == Ref::TRUE {
            return 1.0;
        }
        let idx = f.index();
        let mut v = memo[idx];
        if v.is_nan() {
            let n = self.nodes[idx];
            assert!(n.var < nvars, "variable {} outside domain {nvars}", n.var);
            let lo = self.frac_rec(Ref(n.lo), nvars, memo);
            let hi = self.frac_rec(Ref(n.hi), nvars, memo);
            v = 0.5 * (lo + hi);
            memo[idx] = v;
        }
        if f.is_complemented() {
            1.0 - v
        } else {
            v
        }
    }

    /// Exact signal probability of `f` given independent per-variable
    /// one-probabilities `p` (index `i` gives `P(var_i = 1)`).
    ///
    /// Variables beyond the slice default to probability 0.5.
    pub fn probability(&self, f: Ref, p: &[f64]) -> f64 {
        let mut memo = vec![f64::NAN; self.nodes.len()];
        self.prob_rec(f, p, &mut memo)
    }

    /// Dense memo keyed by plain node index (`NAN` = unvisited; computed
    /// probabilities of live interior nodes are never `NAN`).
    fn prob_rec(&self, f: Ref, p: &[f64], memo: &mut [f64]) -> f64 {
        if f == Ref::FALSE {
            return 0.0;
        }
        if f == Ref::TRUE {
            return 1.0;
        }
        let idx = f.index();
        let mut v = memo[idx];
        if v.is_nan() {
            let n = self.nodes[idx];
            let pv = p.get(n.var as usize).copied().unwrap_or(0.5);
            let lo = self.prob_rec(Ref(n.lo), p, memo);
            let hi = self.prob_rec(Ref(n.hi), p, memo);
            v = (1.0 - pv) * lo + pv * hi;
            memo[idx] = v;
        }
        if f.is_complemented() {
            1.0 - v
        } else {
            v
        }
    }

    /// One satisfying assignment of `f` (as `(var, value)` pairs for the
    /// variables on the chosen path), or `None` if unsatisfiable.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<(u32, bool)>> {
        if f == Ref::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut r = f;
        while !r.is_const() {
            let n = self.node(r);
            let s = r.0 & 1;
            let hi = Ref(n.hi ^ s);
            if hi != Ref::FALSE {
                path.push((n.var, true));
                r = hi;
            } else {
                path.push((n.var, false));
                r = Ref(n.lo ^ s);
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut mgr = Bdd::new();
        assert_eq!(mgr.constant(true), Ref::TRUE);
        assert_eq!(mgr.constant(false), Ref::FALSE);
        let a = mgr.var(0);
        let a2 = mgr.var(0);
        assert_eq!(a, a2, "canonicity of projections");
        let na = mgr.not(a);
        assert_eq!(mgr.nvar(0), na);
        assert_ne!(a, na);
    }

    #[test]
    fn truth_tables() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let and = mgr.and(a, b);
        let or = mgr.or(a, b);
        let xor = mgr.xor(a, b);
        for bits in 0u32..4 {
            let assignment = [bits & 1 == 1, bits >> 1 & 1 == 1];
            assert_eq!(mgr.eval(and, &assignment), assignment[0] && assignment[1]);
            assert_eq!(mgr.eval(or, &assignment), assignment[0] || assignment[1]);
            assert_eq!(mgr.eval(xor, &assignment), assignment[0] ^ assignment[1]);
        }
    }

    #[test]
    fn canonicity_detects_equivalence() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        // De Morgan: !(a & b) == !a | !b
        let ab = mgr.and(a, b);
        let lhs = mgr.not(ab);
        let na = mgr.not(a);
        let nb = mgr.not(b);
        let rhs = mgr.or(na, nb);
        assert_eq!(lhs, rhs);
        // Distribution: a & (b | c) == a&b | a&c
        let c = mgr.var(2);
        let bc = mgr.or(b, c);
        let l = mgr.and(a, bc);
        let ab = mgr.and(a, b);
        let ac = mgr.and(a, c);
        let r = mgr.or(ab, ac);
        assert_eq!(l, r);
    }

    #[test]
    fn double_negation() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.xor(a, b);
        let nf = mgr.not(f);
        assert_eq!(mgr.not(nf), f);
    }

    #[test]
    fn negation_is_free() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let before = mgr.op_counts();
        let nodes = mgr.node_count();
        let nf = mgr.not(f);
        assert_ne!(nf, f);
        assert_eq!(mgr.node_count(), nodes, "complement edge: no new node");
        assert_eq!(mgr.op_counts(), before, "complement edge: no table traffic");
        // And a function xor'd against constants reduces to complement.
        assert_eq!(mgr.xor(f, Ref::TRUE), nf);
    }

    #[test]
    fn commutative_forms_share_cache_entries() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert_eq!(mgr.and(a, b), mgr.and(b, a));
        assert_eq!(mgr.or(a, b), mgr.or(b, a));
        assert_eq!(mgr.xor(a, b), mgr.xor(b, a));
        let after_pairs = mgr.op_counts();
        // The swapped forms hit the normalized cache entries: zero new
        // nodes were interned for the repeats.
        assert_eq!(after_pairs.nodes_created as usize, mgr.node_count() - 1);
    }

    #[test]
    fn restrict_and_compose() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let f = {
            let bc = mgr.or(b, c);
            mgr.and(a, bc)
        };
        // f|a=0 == 0, f|a=1 == b|c
        assert_eq!(mgr.restrict(f, 0, false), Ref::FALSE);
        let bc = mgr.or(b, c);
        assert_eq!(mgr.restrict(f, 0, true), bc);
        // compose b := a gives a & (a | c) = a
        let g = mgr.compose(f, 1, a);
        assert_eq!(g, a);
    }

    #[test]
    fn quantification() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        // ∃b. a&b == a ; ∀b. a&b == 0
        assert_eq!(mgr.exists(f, 1), a);
        assert_eq!(mgr.forall(f, 1), Ref::FALSE);
        let g = mgr.or(a, b);
        // ∀b. a|b == a ; ∃b. a|b == 1
        assert_eq!(mgr.forall(g, 1), a);
        assert_eq!(mgr.exists(g, 1), Ref::TRUE);
        // Multi-variable forms.
        assert_eq!(mgr.exists_many(f, &[0, 1]), Ref::TRUE);
        assert_eq!(mgr.forall_many(f, &[0, 1]), Ref::FALSE);
    }

    #[test]
    fn boolean_difference_of_and() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        // ∂(a&b)/∂a = b
        assert_eq!(mgr.boolean_difference(f, 0), b);
        // ∂(a xor b)/∂a = 1
        let g = mgr.xor(a, b);
        assert_eq!(mgr.boolean_difference(g, 0), Ref::TRUE);
    }

    #[test]
    fn sat_count_small() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let f = mgr.and(a, b);
        assert_eq!(mgr.sat_count(f, 3), 2.0); // a&b over 3 vars: 2 assignments
        let g = mgr.or_all([a, b, c]);
        assert_eq!(mgr.sat_count(g, 3), 7.0);
        assert_eq!(mgr.sat_count(Ref::TRUE, 3), 8.0);
        assert_eq!(mgr.sat_count(Ref::FALSE, 3), 0.0);
    }

    #[test]
    fn probability_uniform_matches_sat_count() {
        let mut mgr = Bdd::new();
        let vars: Vec<Ref> = (0..4).map(|i| mgr.var(i)).collect();
        let ab = mgr.and(vars[0], vars[1]);
        let cd = mgr.and(vars[2], vars[3]);
        let f = mgr.or(ab, cd);
        let p = mgr.probability(f, &[0.5; 4]);
        let count = mgr.sat_count(f, 4);
        assert!((p - count / 16.0).abs() < 1e-12);
    }

    #[test]
    fn probability_biased() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.or(a, b);
        // P(a|b) = 1 - (1-0.1)(1-0.2) = 0.28
        let p = mgr.probability(f, &[0.1, 0.2]);
        assert!((p - 0.28).abs() < 1e-12);
    }

    #[test]
    fn support_and_size() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let c = mgr.var(2);
        let f = mgr.xor(a, c);
        assert_eq!(mgr.support(f), vec![0, 2]);
        assert!(mgr.size(f) >= 2);
        assert_eq!(mgr.support(Ref::TRUE), Vec::<u32>::new());
        assert_eq!(mgr.size(Ref::FALSE), 0);
    }

    #[test]
    fn any_sat_finds_assignment() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let nb = mgr.not(b);
        let f = mgr.and(a, nb);
        let sat = mgr.any_sat(f).unwrap();
        let mut assignment = vec![false; 2];
        for (v, val) in sat {
            assignment[v as usize] = val;
        }
        assert!(mgr.eval(f, &assignment));
        assert_eq!(mgr.any_sat(Ref::FALSE), None);
        // A complemented ref is satisfiable exactly when it isn't TRUE's
        // complement... i.e. always, except FALSE itself.
        let nf = mgr.not(f);
        let sat = mgr.any_sat(nf).unwrap();
        let mut env = vec![false; 2];
        for (v, val) in sat {
            env[v as usize] = val;
        }
        assert!(mgr.eval(nf, &env));
    }

    #[test]
    fn adder_bit_is_canonical() {
        // sum bit of full adder built two different ways.
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let cin = mgr.var(2);
        let ab = mgr.xor(a, b);
        let s1 = mgr.xor(ab, cin);
        let bc = mgr.xor(b, cin);
        let s2 = mgr.xor(a, bc);
        assert_eq!(s1, s2);
    }

    #[test]
    fn gc_reclaims_unrooted_nodes() {
        let mut mgr = Bdd::new();
        let vars: Vec<Ref> = (0..8).map(|i| mgr.var(i)).collect();
        let keep = mgr.and(vars[0], vars[1]);
        mgr.protect(keep);
        // Build garbage: a chain over the remaining variables.
        let junk = mgr.and_all(vars[2..].iter().copied());
        assert!(!junk.is_const());
        let before = mgr.node_count();
        let freed = mgr.gc();
        assert!(freed > 0, "the unrooted chain must be collected");
        assert_eq!(mgr.node_count(), before - freed);
        let c = mgr.op_counts();
        assert_eq!(c.nodes_freed, freed as u64);
        assert!(c.gc_runs >= 1);
        // The rooted function survives and stays canonical: rebuilding it
        // from fresh projections finds the same interned nodes. (The old
        // `vars` refs dangle — their projection nodes were unrooted.)
        let a = mgr.var(0);
        let b = mgr.var(1);
        assert_eq!(mgr.and(a, b), keep);
        assert!(mgr.eval(keep, &[true, true]));
        // Freed slots are recycled by later allocations.
        let arena_before = mgr.node_count();
        let fresh: Vec<Ref> = (2..5).map(|i| mgr.var(i)).collect();
        let _rebuilt = mgr.and_all(fresh);
        assert!(mgr.node_count() > arena_before);
    }

    #[test]
    fn gc_preserves_probability_and_eval() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.xor(a, b);
        let f = mgr.or(ab, c);
        mgr.protect(f);
        let p = &[0.3, 0.7, 0.2];
        let prob_before = mgr.probability(f, p);
        let junk_vars: Vec<Ref> = (3..10).map(|i| mgr.var(i)).collect();
        let junk = mgr.and_all(junk_vars);
        assert!(!junk.is_const());
        mgr.gc();
        assert_eq!(prob_before.to_bits(), mgr.probability(f, p).to_bits());
        for bits in 0u32..8 {
            let env: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = (env[0] ^ env[1]) || env[2];
            assert_eq!(mgr.eval(f, &env), expect, "{bits:03b}");
        }
    }

    #[test]
    fn budget_counts_live_nodes_after_gc() {
        // Lifetime allocations exceed the limit, live nodes don't: with
        // auto-GC the build must succeed anyway.
        let mut mgr = Bdd::new();
        mgr.set_auto_gc(true);
        let budget = ResourceBudget::unlimited().with_max_bdd_nodes(24);
        for round in 0u32..6 {
            // With auto-GC on, refs held across allocations must be rooted.
            let a = mgr.var(round * 2);
            mgr.protect(a);
            let b = mgr.var(round * 2 + 1);
            mgr.protect(b);
            let f = mgr.try_and(a, b, &budget).expect("live nodes stay small");
            assert!(!f.is_const());
            // Drop the roots: every round's nodes become garbage.
            mgr.clear_roots();
        }
        let c = mgr.op_counts();
        assert!(
            c.nodes_created > 24 / 2,
            "enough lifetime churn to matter: {c:?}"
        );
        assert!(mgr.node_count() <= 24);
    }

    #[test]
    fn node_budget_trips_on_wide_cone() {
        // x0·x3 + x1·x4 + x2·x5 under the interleaved order needs more
        // live nodes than a 12-node budget allows even with complement
        // edges; the result must be a typed error, not growth.
        let mut mgr = Bdd::new();
        let budget = ResourceBudget::unlimited().with_max_bdd_nodes(12);
        let mut f = Ref::FALSE;
        let mut failed = None;
        for (a, b) in [(0, 3), (1, 4), (2, 5)] {
            let (va, vb) = (mgr.var(a), mgr.var(b));
            let t = match mgr.try_and(va, vb, &budget) {
                Ok(t) => t,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            match mgr.try_or(f, t, &budget) {
                Ok(r) => f = r,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let err = failed.expect("12-node budget must be exceeded");
        assert_eq!(err.resource, budget::Resource::BddNodes);
        assert!(err.used >= err.limit);
        assert!(mgr.node_count() <= 14, "growth stopped near the limit");
        // The manager stays usable after exhaustion.
        let a = mgr.var(0);
        assert!(mgr.eval(a, &[true]));
    }

    #[test]
    fn guarded_ops_match_unguarded_under_no_limit() {
        let mut guarded = Bdd::new();
        let mut plain = Bdd::new();
        let unlimited = ResourceBudget::unlimited();
        let (a1, b1, c1) = (guarded.var(0), guarded.var(1), guarded.var(2));
        let (a2, b2, c2) = (plain.var(0), plain.var(1), plain.var(2));
        let g = {
            let x = guarded.try_xor(a1, b1, &unlimited).unwrap();
            let o = guarded.try_or_all([x, c1], &unlimited).unwrap();
            guarded.try_and_all([o, a1], &unlimited).unwrap()
        };
        let p = {
            let x = plain.xor(a2, b2);
            let o = plain.or_all([x, c2]);
            plain.and_all([o, a2])
        };
        for bits in 0u32..8 {
            let env: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(guarded.eval(g, &env), plain.eval(p, &env), "{bits:03b}");
        }
        // Same construction order => same canonical node ids.
        assert_eq!(g, p);
        assert_eq!(guarded.node_count(), plain.node_count());
    }

    #[test]
    fn deadline_budget_fails_eventually() {
        // An already-expired deadline trips on the first chunk of misses.
        let mut mgr = Bdd::new();
        let budget = ResourceBudget::unlimited().with_deadline_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let vars: Vec<Ref> = (0..24).map(|i| mgr.var(i)).collect();
        let mut result = Ok(Ref::FALSE);
        for (a, b) in (0..12).map(|i| (vars[i], vars[i + 12])) {
            result = mgr
                .try_and(a, b, &budget)
                .and_then(|t| result.and_then(|acc| mgr.try_or(acc, t, &budget)));
            if result.is_err() {
                break;
            }
        }
        // Amortization means tiny graphs may finish under an expired
        // deadline; a node limit composed with it always trips.
        let tight = ResourceBudget::unlimited().with_max_bdd_nodes(4).with_deadline_ms(0);
        let v = mgr.var(30);
        let w = mgr.var(31);
        assert!(mgr.try_and(v, w, &tight).is_err());
    }

    #[test]
    fn op_counts_track_work_consistently() {
        let mut mgr = Bdd::new();
        assert_eq!(mgr.op_counts(), OpCounts::default());
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let _again = mgr.and(a, b); // pure cache hit
        let c = mgr.op_counts();
        assert!(c.ite_calls > 0);
        assert!(c.cache_hits <= c.cache_lookups, "{c:?}");
        assert!(c.unique_hits <= c.unique_lookups, "{c:?}");
        assert_eq!(c.unique_lookups, c.unique_hits + c.nodes_created, "{c:?}");
        // Every live node beyond the single terminal came through mk.
        assert_eq!(c.nodes_created as usize, mgr.node_count() - 1);
        assert!(!f.is_const());
    }

    #[test]
    fn op_counts_are_deterministic() {
        let build = || {
            let mut mgr = Bdd::new();
            let vars: Vec<Ref> = (0..6).map(|i| mgr.var(i)).collect();
            let x = mgr.xor(vars[0], vars[3]);
            let y = mgr.and(vars[1], vars[4]);
            let z = mgr.or(vars[2], vars[5]);
            let xy = mgr.or(x, y);
            let _f = mgr.and(xy, z);
            mgr.op_counts()
        };
        assert_eq!(build(), build(), "same construction => same counts");
    }

    #[test]
    fn stats_reflect_growth() {
        let mut mgr = Bdd::new();
        let initial = mgr.stats().nodes;
        let vars: Vec<Ref> = (0..8).map(|i| mgr.var(i)).collect();
        let _f = mgr.and_all(vars);
        let s = mgr.stats();
        assert!(s.nodes > initial);
        assert_eq!(s.vars, 8);
        assert!(mgr.peak_live_nodes() >= s.nodes);
    }
}

// ----------------------------------------------------------------------
// Dynamic (in-place) variable reordering
// ----------------------------------------------------------------------

impl Bdd {
    /// Extend the level maps with identity entries up to `num_vars`.
    fn ensure_level_maps(&mut self) {
        while (self.var2level.len() as u32) < self.num_vars {
            let v = self.var2level.len() as u32;
            self.var2level.push(v);
            self.level2var.push(v);
        }
    }

    /// Install a variable order on an **empty** manager: `var2level[v]` is
    /// the level variable `v` will occupy (level 0 is the root). Used to
    /// seed a build with a netlist-derived static order, and by the store
    /// layer to replay a snapshot under the order it was written with.
    ///
    /// # Panics
    ///
    /// Panics if `var2level` is not a permutation or the manager already
    /// holds interior nodes (reordering a populated manager is
    /// [`Bdd::reorder_now`]'s job — it keeps every [`Ref`] valid).
    pub fn set_order(&mut self, var2level: &[u32]) {
        assert!(
            self.live_nodes == 1 && self.nodes.len() == 1,
            "set_order requires an empty manager"
        );
        let n = var2level.len();
        let mut level2var = vec![u32::MAX; n];
        for (v, &l) in var2level.iter().enumerate() {
            assert!(
                (l as usize) < n && level2var[l as usize] == u32::MAX,
                "order must be a permutation"
            );
            level2var[l as usize] = v as u32;
        }
        self.var2level = var2level.to_vec();
        self.level2var = level2var;
        // The order declares the variable domain up front, so a reloaded
        // manager reports the same `var_order` arity as the one that
        // wrote it even when some variables go unreferenced.
        self.num_vars = self.num_vars.max(n as u32);
    }

    /// The current `var2level` permutation over the variables seen so far
    /// (identity until a custom order or a reorder pass changes it).
    pub fn var_order(&self) -> Vec<u32> {
        (0..self.num_vars).map(|v| self.level_of(v)).collect()
    }

    /// Whether any variable sits away from its identity level.
    pub fn has_custom_order(&self) -> bool {
        (0..self.num_vars).any(|v| self.level_of(v) != v)
    }

    /// Install an automatic reorder policy. Like [`Bdd::set_auto_gc`], any
    /// schedule other than [`ReorderSchedule::Off`] requires every [`Ref`]
    /// held across an allocating call to be kept alive via
    /// [`Bdd::protect`]: a pass begins and ends with a collection.
    pub fn set_reorder_schedule(&mut self, schedule: ReorderSchedule) {
        self.schedule = schedule;
        self.reorder_baseline = self.live_nodes.max(1);
    }

    /// The installed automatic reorder policy.
    pub fn reorder_schedule(&self) -> ReorderSchedule {
        self.schedule
    }

    /// Whether the schedule wants a pass before the next top-level ITE.
    fn reorder_due(&self) -> bool {
        if self.in_reorder || self.num_vars < 2 {
            return false;
        }
        match self.schedule {
            ReorderSchedule::Off => false,
            ReorderSchedule::Always => self.live_nodes > self.reorder_baseline,
            ReorderSchedule::Threshold {
                growth_percent,
                min_nodes,
            } => {
                self.live_nodes >= min_nodes.max(2)
                    && self.live_nodes
                        >= self.reorder_baseline
                            + self.reorder_baseline * growth_percent as usize / 100
            }
            ReorderSchedule::TimeSliced { .. } => {
                self.live_nodes >= REORDER_MIN_NODES
                    && self.live_nodes
                        >= self.reorder_baseline
                            + self.reorder_baseline * REORDER_GROWTH_PERCENT as usize / 100
            }
        }
    }

    /// Run one in-place sifting pass now, regardless of the schedule.
    ///
    /// Every variable is sifted (densest first) through adjacent-level
    /// swaps and parked at the level minimizing the live node count. All
    /// [`Ref`]s stay valid — nodes are rewritten in place, so a ref keeps
    /// denoting the same Boolean function — but the pass begins and ends
    /// with a collection, so unprotected refs follow the same rooting
    /// contract as [`Bdd::set_auto_gc`]. Returns `(nodes_before,
    /// nodes_after)` live counts.
    pub fn reorder_now(&mut self) -> (usize, usize) {
        self.ensure_level_maps();
        self.counts.reorder_runs += 1;
        self.in_reorder = true;
        // Collect first so occupancy and sizes reflect reachable structure
        // only (swap garbage from a previous pass, dead intermediates).
        self.gc_run();
        let before = self.live_nodes;
        let n = self.num_vars as usize;
        if n >= 2 {
            // Sift densest variables first: moving them is where the big
            // wins are, and a fixed order keeps passes deterministic.
            let mut occupancy = vec![0usize; n];
            for node in self.nodes.iter().skip(1) {
                if node.var != FREE_VAR {
                    occupancy[node.var as usize] += 1;
                }
            }
            let mut vars: Vec<u32> = (0..n as u32).collect();
            vars.sort_by(|&a, &b| {
                occupancy[b as usize]
                    .cmp(&occupancy[a as usize])
                    .then(a.cmp(&b))
            });
            let slice_ends = match self.schedule {
                ReorderSchedule::TimeSliced { slice_ms } => Some(
                    std::time::Instant::now() + std::time::Duration::from_millis(slice_ms),
                ),
                _ => None,
            };
            for var in vars {
                if occupancy[var as usize] == 0 {
                    continue;
                }
                // Time-sliced: stop *starting* walks past the slice; the
                // walk in progress always completes, so the level maps and
                // table are never left mid-swap.
                if let Some(ends) = slice_ends {
                    if std::time::Instant::now() >= ends {
                        break;
                    }
                }
                self.sift_one(var);
            }
        }
        let after = self.live_nodes;
        self.counts.reorder_nodes_before += before as u64;
        self.counts.reorder_nodes_after += after as u64;
        self.reorder_baseline = after.max(1);
        self.in_reorder = false;
        (before, after)
    }

    /// Sift one variable: walk it to the bottom, then to the top, then
    /// back to the best level seen. Each step is one adjacent-level swap;
    /// a direction is abandoned once the graph grows 20% past the best.
    fn sift_one(&mut self, var: u32) {
        let n = self.num_vars as usize;
        let mut level = self.var2level[var as usize] as usize;
        let mut best_size = self.live_nodes;
        let mut best_level = level;
        let grow_limit =
            |best: usize| best * REORDER_MAX_GROWTH_NUM / REORDER_MAX_GROWTH_DEN + 2;
        while level + 1 < n {
            self.swap_levels(level);
            level += 1;
            if self.live_nodes < best_size {
                best_size = self.live_nodes;
                best_level = level;
            } else if self.live_nodes > grow_limit(best_size) {
                break;
            }
        }
        while level > 0 {
            self.swap_levels(level - 1);
            level -= 1;
            if self.live_nodes < best_size {
                best_size = self.live_nodes;
                best_level = level;
            } else if self.live_nodes > grow_limit(best_size) {
                break;
            }
        }
        while level < best_level {
            self.swap_levels(level);
            level += 1;
        }
        while level > best_level {
            self.swap_levels(level - 1);
            level -= 1;
        }
    }

    /// Swap adjacent levels `level` and `level + 1` in place.
    ///
    /// Let `u`/`w` be the variables at the two levels. Every `u`-node with
    /// a `w`-topped child is rewritten in place to a `w`-node over fresh
    /// `u`-children (`f = w'·(u', f00, f10) + w·(u', f01, f11)`); nodes of
    /// either variable not entangled with the other just have their level
    /// reassigned via the maps. Rewriting in place keeps every external
    /// [`Ref`] — GC roots, guard pins, cached ITE results — valid, because
    /// a ref's function never changes; complement-edge canonicity is
    /// preserved because the new hi child is built from the old (regular)
    /// stored-hi cofactors, so it is always regular itself.
    fn swap_levels(&mut self, level: usize) {
        let u = self.level2var[level];
        let w = self.level2var[level + 1];
        // Snapshot the candidates before allocating: new u-children created
        // below have all their children strictly under `w`, so they are
        // never candidates themselves.
        let mut candidates: Vec<u32> = Vec::new();
        for i in 1..self.nodes.len() {
            let node = self.nodes[i];
            if node.var != u {
                continue;
            }
            let lo_var = self.nodes[(node.lo >> 1) as usize].var;
            let hi_var = self.nodes[(node.hi >> 1) as usize].var;
            if lo_var == w || hi_var == w {
                candidates.push(i as u32);
            }
        }
        for &ci in &candidates {
            let node = self.nodes[ci as usize];
            let (f00, f01) = self.cofactors_at(Ref(node.lo), w);
            let (f10, f11) = self.cofactors_at(Ref(node.hi), w);
            let g0 = self.mk(u, f00, f10);
            let g1 = self.mk(u, f01, f11);
            // The candidate depends on `w`, so its two new cofactors
            // differ; and g1 is built from regular stored-hi edges, so the
            // rewritten node keeps the hi-regular invariant.
            debug_assert_ne!(g0, g1);
            debug_assert!(!g1.is_complemented());
            self.nodes[ci as usize] = Node {
                var: w,
                lo: g0.0,
                hi: g1.0,
            };
        }
        self.level2var.swap(level, level + 1);
        self.var2level[u as usize] = (level + 1) as u32;
        self.var2level[w as usize] = level as u32;
        self.counts.reorder_swaps += 1;
        // Rewritten nodes sit in the table under their old hash and the
        // swap's dead children inflate the live count: one collection
        // frees the garbage and rebuilds the table. If nothing was freed
        // the table still holds stale slots — rebuild explicitly.
        let freed = self.gc_run();
        if freed == 0 {
            self.rebuild_table(self.table_mask + 1);
        }
    }
}

impl Bdd {
    /// Rebuild `roots` in a fresh manager under a new variable order.
    ///
    /// `position[v]` gives the level the old variable `v` occupies in the
    /// new manager (a permutation of `0..n`). Returns the new manager and
    /// the translated roots, in order.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not a permutation covering every variable in
    /// the roots' support.
    pub fn rebuild_with_order(&self, roots: &[Ref], position: &[u32]) -> (Bdd, Vec<Ref>) {
        {
            let mut seen = vec![false; position.len()];
            for &p in position {
                assert!(
                    (p as usize) < position.len() && !seen[p as usize],
                    "position must be a permutation"
                );
                seen[p as usize] = true;
            }
        }
        let mut out = Bdd::new();
        // Dense memo: old plain node index -> translated ref bits.
        let mut memo = vec![u32::MAX; self.nodes.len()];
        let mut translated = Vec::with_capacity(roots.len());
        for &root in roots {
            let r = self.rebuild_rec(root, position, &mut out, &mut memo);
            translated.push(r);
        }
        (out, translated)
    }

    fn rebuild_rec(&self, f: Ref, position: &[u32], out: &mut Bdd, memo: &mut [u32]) -> Ref {
        if f.is_const() {
            return f;
        }
        let idx = f.index();
        let plain = if memo[idx] != u32::MAX {
            Ref(memo[idx])
        } else {
            let node = self.nodes[idx];
            assert!(
                (node.var as usize) < position.len(),
                "variable {} outside the permutation",
                node.var
            );
            let lo = self.rebuild_rec(Ref(node.lo), position, out, memo);
            let hi = self.rebuild_rec(Ref(node.hi), position, out, memo);
            let v = out.var(position[node.var as usize]);
            let r = out.ite(v, hi, lo);
            memo[idx] = r.0;
            r
        };
        if f.is_complemented() {
            plain.complement()
        } else {
            plain
        }
    }

    /// Total node count of a set of roots (shared nodes counted once).
    pub fn size_many(&self, roots: &[Ref]) -> usize {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = roots.iter().map(|r| r.index()).collect();
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if i == 0 || visited[i] {
                continue;
            }
            visited[i] = true;
            count += 1;
            let n = self.nodes[i];
            stack.push((n.lo >> 1) as usize);
            stack.push((n.hi >> 1) as usize);
        }
        count
    }

    /// Greedy sifting-style reordering: repeatedly move one variable to the
    /// position that minimizes the shared node count of `roots`, until no
    /// single move helps. Practical for up to ~16 variables (each trial
    /// rebuilds the graphs).
    ///
    /// Returns the reordered manager, the translated roots, and the final
    /// `position[old_var] = new_level` permutation.
    ///
    /// ```
    /// use bdd::Bdd;
    ///
    /// // x0·x3 + x1·x4 + x2·x5 is large under the interleaved order...
    /// let mut mgr = Bdd::new();
    /// let mut f = bdd::Ref::FALSE;
    /// for (a, b) in [(0, 3), (1, 4), (2, 5)] {
    ///     let (va, vb) = (mgr.var(a), mgr.var(b));
    ///     let t = mgr.and(va, vb);
    ///     f = mgr.or(f, t);
    /// }
    /// let (sifted, roots, _) = mgr.sift(&[f], 6);
    /// // ...and linear (6 nodes) once sifting pairs the variables up.
    /// assert_eq!(sifted.size_many(&roots), 6);
    /// ```
    pub fn sift(&self, roots: &[Ref], num_vars: usize) -> (Bdd, Vec<Ref>, Vec<u32>) {
        let n = num_vars;
        let mut position: Vec<u32> = (0..n as u32).collect();
        let (mut best_mgr, mut best_roots) = self.rebuild_with_order(roots, &position);
        let mut best_size = best_mgr.size_many(&best_roots);
        let mut improved = true;
        while improved {
            improved = false;
            for var in 0..n {
                for target in 0..n as u32 {
                    // Re-read each time: an accepted move changes the level.
                    let current_level = position[var];
                    if target == current_level {
                        continue;
                    }
                    // Move `var` to level `target`, shifting the others.
                    let mut candidate = position.clone();
                    for p in candidate.iter_mut() {
                        if *p > current_level && *p <= target {
                            *p -= 1;
                        } else if *p >= target && *p < current_level {
                            *p += 1;
                        }
                    }
                    candidate[var] = target;
                    let (mgr, new_roots) = self.rebuild_with_order(roots, &candidate);
                    let size = mgr.size_many(&new_roots);
                    if size < best_size {
                        best_size = size;
                        best_mgr = mgr;
                        best_roots = new_roots;
                        position = candidate;
                        improved = true;
                    }
                }
            }
        }
        (best_mgr, best_roots, position)
    }
}

#[cfg(test)]
mod reorder_tests {
    use super::*;

    /// f = x0·x1 + x2·x3 + x4·x5 — linear under the natural order,
    /// exponential under the interleaved order (x0,x2,x4,x1,x3,x5).
    fn chain_function(mgr: &mut Bdd, pairs: &[(u32, u32)]) -> Ref {
        let mut f = Ref::FALSE;
        for &(a, b) in pairs {
            let va = mgr.var(a);
            let vb = mgr.var(b);
            let t = mgr.and(va, vb);
            f = mgr.or(f, t);
        }
        f
    }

    #[test]
    fn rebuild_preserves_function() {
        let mut mgr = Bdd::new();
        let f = chain_function(&mut mgr, &[(0, 1), (2, 3), (4, 5)]);
        // Reverse the variable order.
        let position: Vec<u32> = (0..6).rev().collect();
        let (new_mgr, roots) = mgr.rebuild_with_order(&[f], &position);
        let g = roots[0];
        for bits in 0u32..64 {
            let old_env: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            // In the new manager, old var v lives at level position[v].
            let mut new_env = vec![false; 6];
            for v in 0..6 {
                new_env[position[v] as usize] = old_env[v];
            }
            assert_eq!(new_mgr.eval(g, &new_env), mgr.eval(f, &old_env), "{bits:06b}");
        }
    }

    #[test]
    fn rebuild_preserves_complemented_roots() {
        let mut mgr = Bdd::new();
        let f = chain_function(&mut mgr, &[(0, 1), (2, 3)]);
        let nf = mgr.not(f);
        let position: Vec<u32> = (0..4).rev().collect();
        let (new_mgr, roots) = mgr.rebuild_with_order(&[f, nf], &position);
        for bits in 0u32..16 {
            let old_env: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let mut new_env = vec![false; 4];
            for v in 0..4 {
                new_env[position[v] as usize] = old_env[v];
            }
            assert_eq!(new_mgr.eval(roots[0], &new_env), mgr.eval(f, &old_env));
            assert_eq!(new_mgr.eval(roots[1], &new_env), !mgr.eval(f, &old_env));
        }
    }

    #[test]
    fn good_order_is_linear_bad_is_larger() {
        // Natural (paired) order.
        let mut good = Bdd::new();
        let fg = chain_function(&mut good, &[(0, 1), (2, 3), (4, 5)]);
        // Interleaved order: pair partners maximally separated.
        let mut bad = Bdd::new();
        let fb = chain_function(&mut bad, &[(0, 3), (1, 4), (2, 5)]);
        assert!(
            bad.size(fb) > good.size(fg),
            "interleaved {} vs paired {}",
            bad.size(fb),
            good.size(fg)
        );
    }

    #[test]
    fn sifting_recovers_linear_size() {
        let mut bad = Bdd::new();
        let f = chain_function(&mut bad, &[(0, 3), (1, 4), (2, 5)]);
        let before = bad.size(f);
        let (sifted, roots, position) = bad.sift(&[f], 6);
        let after = sifted.size_many(&roots);
        assert!(after < before, "sifting {before} -> {after}");
        // The optimum for a 3-pair chain is 6 internal nodes.
        assert_eq!(after, 6, "sifting should find the pairing order");
        // And the function is preserved.
        for bits in 0u32..64 {
            let old_env: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let mut new_env = vec![false; 6];
            for v in 0..6 {
                new_env[position[v] as usize] = old_env[v];
            }
            assert_eq!(sifted.eval(roots[0], &new_env), bad.eval(f, &old_env));
        }
    }

    #[test]
    fn sift_multiple_roots_shares_nodes() {
        let mut mgr = Bdd::new();
        let f = chain_function(&mut mgr, &[(0, 2), (1, 3)]);
        let v0 = mgr.var(0);
        let g = mgr.and(f, v0);
        let (sifted, roots, _) = mgr.sift(&[f, g], 4);
        assert_eq!(roots.len(), 2);
        assert!(sifted.size_many(&roots) <= mgr.size_many(&[f, g]));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_bad_permutation() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        mgr.rebuild_with_order(&[f], &[0, 0]);
    }

    // ------------------------------------------------------------------
    // In-place dynamic reordering
    // ------------------------------------------------------------------

    /// [`chain_function`] under the auto-GC/reorder rooting contract:
    /// every ref held across an allocating call is protected, so a pass
    /// (which begins with a collection) can fire inside any operation.
    fn chain_function_rooted(mgr: &mut Bdd, pairs: &[(u32, u32)]) -> Ref {
        let mut f = Ref::FALSE;
        mgr.protect(f);
        for &(a, b) in pairs {
            let va = mgr.var(a);
            mgr.protect(va);
            let vb = mgr.var(b);
            mgr.protect(vb);
            let t = mgr.and(va, vb);
            mgr.protect(t);
            let nf = mgr.or(f, t);
            mgr.unprotect(t);
            mgr.unprotect(vb);
            mgr.unprotect(va);
            mgr.unprotect(f);
            f = nf;
            mgr.protect(f);
        }
        f
    }

    fn truth_table(mgr: &Bdd, f: Ref, nvars: u32) -> Vec<bool> {
        (0u32..1 << nvars)
            .map(|bits| {
                let env: Vec<bool> = (0..nvars).map(|i| bits >> i & 1 == 1).collect();
                mgr.eval(f, &env)
            })
            .collect()
    }

    #[test]
    fn single_swap_preserves_semantics_in_place() {
        let mut mgr = Bdd::new();
        let f = chain_function(&mut mgr, &[(0, 1), (2, 3), (4, 5)]);
        let nf = mgr.not(f);
        mgr.protect(f);
        mgr.protect(nf);
        let want_f = truth_table(&mgr, f, 6);
        mgr.ensure_level_maps();
        // Walk every adjacent pair, twice — same external refs throughout.
        for pass in 0..2 {
            for l in 0..5 {
                mgr.swap_levels(l);
                assert_eq!(truth_table(&mgr, f, 6), want_f, "pass {pass} swap {l}");
                let got_nf = truth_table(&mgr, nf, 6);
                assert!(got_nf.iter().zip(&want_f).all(|(a, b)| *a != *b));
            }
        }
        assert!(mgr.op_counts().reorder_swaps >= 10);
    }

    #[test]
    fn reorder_now_recovers_linear_size() {
        let mut mgr = Bdd::new();
        let f = chain_function(&mut mgr, &[(0, 3), (1, 4), (2, 5)]);
        mgr.protect(f);
        let want = truth_table(&mgr, f, 6);
        let before_size = mgr.size(f);
        let (before, after) = mgr.reorder_now();
        assert!(after < before, "reorder {before} -> {after}");
        // Sifting should find a pairing order: 6 internal nodes.
        assert_eq!(mgr.size(f), 6, "was {before_size}");
        assert!(mgr.has_custom_order());
        // The same Ref still denotes the same function.
        assert_eq!(truth_table(&mgr, f, 6), want);
        let c = mgr.op_counts();
        assert_eq!(c.reorder_runs, 1);
        assert!(c.reorder_swaps > 0);
        assert!(c.reorder_nodes_after < c.reorder_nodes_before);
    }

    #[test]
    fn reorder_preserves_probability_and_counts() {
        let mut mgr = Bdd::new();
        let f = chain_function(&mut mgr, &[(0, 4), (1, 5), (2, 6), (3, 7)]);
        mgr.protect(f);
        // Dyadic biases: every intermediate probability is an exactly
        // representable dyadic, so reordering is bit-identical.
        let p: Vec<f64> = (0..8).map(|i| (i + 4) as f64 / 16.0).collect();
        let prob = mgr.probability(f, &p);
        let sat = mgr.sat_count(f, 8);
        let sup = mgr.support(f);
        mgr.reorder_now();
        assert_eq!(mgr.probability(f, &p).to_bits(), prob.to_bits());
        assert_eq!(mgr.sat_count(f, 8).to_bits(), sat.to_bits());
        assert_eq!(mgr.support(f), sup);
    }

    #[test]
    fn threshold_schedule_fires_during_growth() {
        let mut mgr = Bdd::new();
        mgr.set_auto_gc(true);
        mgr.set_reorder_schedule(ReorderSchedule::Threshold {
            growth_percent: 20,
            min_nodes: 8,
        });
        let f = chain_function_rooted(&mut mgr, &[(0, 4), (1, 5), (2, 6), (3, 7)]);
        mgr.protect(f);
        // Keep building so post-install growth trips the trigger.
        let g = chain_function_rooted(&mut mgr, &[(0, 6), (1, 7), (2, 4), (3, 5)]);
        mgr.protect(g);
        assert!(mgr.op_counts().reorder_runs >= 1, "threshold never fired");
        // Both functions match fixed-order reference managers.
        let mut fix = Bdd::new();
        let ff = chain_function(&mut fix, &[(0, 4), (1, 5), (2, 6), (3, 7)]);
        let gg = chain_function(&mut fix, &[(0, 6), (1, 7), (2, 4), (3, 5)]);
        assert_eq!(truth_table(&mgr, f, 8), truth_table(&fix, ff, 8));
        assert_eq!(truth_table(&mgr, g, 8), truth_table(&fix, gg, 8));
    }

    #[test]
    fn always_schedule_matches_fixed_order() {
        let mut mgr = Bdd::new();
        mgr.set_reorder_schedule(ReorderSchedule::Always);
        let f = chain_function_rooted(&mut mgr, &[(0, 2), (1, 3)]);
        mgr.protect(f);
        let mut fix = Bdd::new();
        let ff = chain_function(&mut fix, &[(0, 2), (1, 3)]);
        assert_eq!(truth_table(&mgr, f, 4), truth_table(&fix, ff, 4));
    }

    #[test]
    fn timesliced_schedule_completes_current_walk() {
        let mut mgr = Bdd::new();
        mgr.set_reorder_schedule(ReorderSchedule::TimeSliced { slice_ms: 1000 });
        let f = chain_function_rooted(&mut mgr, &[(0, 3), (1, 4), (2, 5)]);
        mgr.protect(f);
        let want = truth_table(&mgr, f, 6);
        mgr.reorder_now();
        assert_eq!(truth_table(&mgr, f, 6), want);
    }

    #[test]
    fn set_order_seeds_build_and_round_trips() {
        let mut mgr = Bdd::new();
        let order: Vec<u32> = (0..6).rev().collect();
        mgr.set_order(&order);
        let f = chain_function(&mut mgr, &[(0, 1), (2, 3), (4, 5)]);
        assert_eq!(mgr.var_order(), order);
        assert!(mgr.has_custom_order());
        // Pairs stay adjacent under full reversal: still the linear size.
        assert_eq!(mgr.size(f), 6);
        let mut fix = Bdd::new();
        let ff = chain_function(&mut fix, &[(0, 1), (2, 3), (4, 5)]);
        assert_eq!(truth_table(&mgr, f, 6), truth_table(&fix, ff, 6));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn set_order_rejects_non_permutation() {
        let mut mgr = Bdd::new();
        mgr.set_order(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty manager")]
    fn set_order_rejects_populated_manager() {
        let mut mgr = Bdd::new();
        let _ = mgr.var(0);
        mgr.set_order(&[0]);
    }

    #[test]
    fn reorder_schedule_parse_round_trip() {
        for spec in ["off", "always", "threshold", "threshold:64", "timeslice:25"] {
            let s = ReorderSchedule::parse(spec).unwrap();
            let shown = s.to_string();
            assert_eq!(ReorderSchedule::parse(&shown).unwrap(), s);
        }
        assert_eq!(
            ReorderSchedule::parse("threshold").unwrap(),
            ReorderSchedule::threshold()
        );
        assert!(ReorderSchedule::parse("sift-harder").is_err());
        assert!(ReorderSchedule::parse("threshold:x").is_err());
    }

    #[test]
    fn reorder_under_restrict_and_exists() {
        // Quantification recurses through ops that may trigger a reorder;
        // results must match a fixed-order manager.
        let mut mgr = Bdd::new();
        mgr.set_reorder_schedule(ReorderSchedule::Always);
        let f = chain_function_rooted(&mut mgr, &[(0, 3), (1, 4), (2, 5)]);
        mgr.protect(f);
        let e = mgr.exists(f, 3);
        mgr.protect(e);
        let r = mgr.restrict(f, 0, true);
        mgr.protect(r);
        let mut fix = Bdd::new();
        let ff = chain_function(&mut fix, &[(0, 3), (1, 4), (2, 5)]);
        let ee = fix.exists(ff, 3);
        let rr = fix.restrict(ff, 0, true);
        assert_eq!(truth_table(&mgr, e, 6), truth_table(&fix, ee, 6));
        assert_eq!(truth_table(&mgr, r, 6), truth_table(&fix, rr, 6));
    }
}
