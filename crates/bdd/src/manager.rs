//! The BDD manager: unique table, ITE with memoization, quantification,
//! composition, counting and probability evaluation.
//!
//! All construction funnels through a budget-guarded ITE: the `try_*`
//! operations accept a [`ResourceBudget`] and return a typed
//! [`BudgetExceeded`] instead of growing the unique table without bound —
//! the known failure mode of BDD-derived analysis on wide reconvergent
//! cones. The classic infallible operations remain and simply run with an
//! unlimited budget.

use std::collections::HashMap;

use budget::{BudgetExceeded, ResourceBudget};

/// Reference to a BDD node. Copyable and cheap; only meaningful together
/// with the [`Bdd`] manager that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(u32);

impl Ref {
    /// The constant-false function.
    pub const FALSE: Ref = Ref(0);
    /// The constant-true function.
    pub const TRUE: Ref = Ref(1);

    /// Whether this is one of the two terminal nodes.
    pub fn is_const(self) -> bool {
        self.0 < 2
    }

    /// For terminals, the constant value.
    ///
    /// # Panics
    ///
    /// Panics on non-terminal references.
    pub fn const_value(self) -> bool {
        match self.0 {
            0 => false,
            1 => true,
            _ => panic!("not a terminal"),
        }
    }
}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// Size statistics of a manager, see [`Bdd::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddStats {
    /// Total interned nodes (including the two terminals).
    pub nodes: usize,
    /// Number of distinct variables seen.
    pub vars: usize,
    /// Entries in the ITE cache.
    pub cache_entries: usize,
}

/// Operation counters accumulated by a manager over its lifetime, see
/// [`Bdd::op_counts`].
///
/// Plain `u64` fields incremented inline: this crate sits below the
/// observability layer, so the manager counts its own work and callers
/// (the power estimators) publish the totals. The counts are deterministic
/// for a given construction sequence, which makes them safe to compare in
/// golden tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Recursive ITE invocations (including terminal-resolved ones).
    pub ite_calls: u64,
    /// ITE memo-cache probes.
    pub cache_lookups: u64,
    /// ITE memo-cache probes that hit.
    pub cache_hits: u64,
    /// Unique-table probes (one per candidate node with `lo != hi`).
    pub unique_lookups: u64,
    /// Unique-table probes that found an existing node.
    pub unique_hits: u64,
    /// Nodes interned (unique-table misses).
    pub nodes_created: u64,
}

/// A reduced ordered BDD manager (arena + unique table + ITE cache).
///
/// Variables are `u32` indices ordered by value: smaller indices are closer
/// to the root. All functions returned by the manager are canonical: two
/// [`Ref`]s are equal iff the Boolean functions are equal.
#[derive(Debug, Clone)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), Ref>,
    num_vars: u32,
    counts: OpCounts,
}

impl Default for Bdd {
    fn default() -> Bdd {
        Bdd::new()
    }
}

impl Bdd {
    /// Create an empty manager.
    pub fn new() -> Bdd {
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                lo: Ref::FALSE,
                hi: Ref::FALSE,
            },
            Node {
                var: TERMINAL_VAR,
                lo: Ref::TRUE,
                hi: Ref::TRUE,
            },
        ];
        Bdd {
            nodes,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars: 0,
            counts: OpCounts::default(),
        }
    }

    /// Lifetime operation counters (monotonic; never reset by operations).
    pub fn op_counts(&self) -> OpCounts {
        self.counts
    }

    /// The constant function `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::TRUE
        } else {
            Ref::FALSE
        }
    }

    /// The projection function of variable `index`.
    pub fn var(&mut self, index: u32) -> Ref {
        self.mk(index, Ref::FALSE, Ref::TRUE)
    }

    /// The negated projection of variable `index`.
    pub fn nvar(&mut self, index: u32) -> Ref {
        self.mk(index, Ref::TRUE, Ref::FALSE)
    }

    /// Number of variables the manager has seen.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Manager statistics.
    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes: self.nodes.len(),
            vars: self.num_vars as usize,
            cache_entries: self.ite_cache.len(),
        }
    }

    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        self.num_vars = self.num_vars.max(var + 1);
        self.counts.unique_lookups += 1;
        if let Some(&id) = self.unique.get(&(var, lo.0, hi.0)) {
            self.counts.unique_hits += 1;
            return Ref(id);
        }
        self.counts.nodes_created += 1;
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo.0, hi.0), id);
        Ref(id)
    }

    fn node(&self, r: Ref) -> Node {
        self.nodes[r.0 as usize]
    }

    /// Top variable of `f` ([`u32::MAX`] for terminals).
    pub fn top_var(&self, f: Ref) -> u32 {
        self.node(f).var
    }

    /// Low (variable = 0) cofactor of the root node.
    pub fn low(&self, f: Ref) -> Ref {
        self.node(f).lo
    }

    /// High (variable = 1) cofactor of the root node.
    pub fn high(&self, f: Ref) -> Ref {
        self.node(f).hi
    }

    // ------------------------------------------------------------------
    // Core operations
    // ------------------------------------------------------------------

    /// If-then-else: `ite(f, g, h) = f·g + f'·h`. All other Boolean
    /// operations are derived from this.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        match self.ite_guarded(f, g, h, &ResourceBudget::unlimited(), &mut 0) {
            Ok(r) => r,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// Budget-guarded [`Bdd::ite`]: fails with a typed error once the
    /// manager's node count reaches `budget.max_bdd_nodes` or the deadline
    /// passes, leaving the manager in a usable (partially grown) state.
    pub fn try_ite(
        &mut self,
        f: Ref,
        g: Ref,
        h: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        self.ite_guarded(f, g, h, budget, &mut 0)
    }

    /// The one recursion every construction goes through. `ops` counts
    /// cache misses so the (syscall-cost) deadline check can be amortized.
    fn ite_guarded(
        &mut self,
        f: Ref,
        g: Ref,
        h: Ref,
        budget: &ResourceBudget,
        ops: &mut u64,
    ) -> Result<Ref, BudgetExceeded> {
        self.counts.ite_calls += 1;
        // Terminal cases.
        if f == Ref::TRUE {
            return Ok(g);
        }
        if f == Ref::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == Ref::TRUE && h == Ref::FALSE {
            return Ok(f);
        }
        let key = (f.0, g.0, h.0);
        self.counts.cache_lookups += 1;
        if let Some(&r) = self.ite_cache.get(&key) {
            self.counts.cache_hits += 1;
            return Ok(r);
        }
        // Cache miss: the only place nodes (and real work) can grow.
        budget.check_bdd_nodes(self.nodes.len())?;
        *ops += 1;
        if *ops & 0xFFF == 0 {
            budget.check_deadline()?;
        }
        let fv = self.node(f).var;
        let gv = self.node(g).var;
        let hv = self.node(h).var;
        let v = fv.min(gv).min(hv);
        let (f0, f1) = self.cofactors_at(f, v);
        let (g0, g1) = self.cofactors_at(g, v);
        let (h0, h1) = self.cofactors_at(h, v);
        let lo = self.ite_guarded(f0, g0, h0, budget, ops)?;
        let hi = self.ite_guarded(f1, g1, h1, budget, ops)?;
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert(key, r);
        Ok(r)
    }

    fn cofactors_at(&self, f: Ref, v: u32) -> (Ref, Ref) {
        let n = self.node(f);
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Negation.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::FALSE, Ref::TRUE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f -> g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::TRUE)
    }

    /// n-ary conjunction.
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        fs.into_iter().fold(Ref::TRUE, |acc, f| self.and(acc, f))
    }

    /// n-ary disjunction.
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        fs.into_iter().fold(Ref::FALSE, |acc, f| self.or(acc, f))
    }

    // ------------------------------------------------------------------
    // Budget-guarded operations (typed errors instead of unbounded growth)
    // ------------------------------------------------------------------

    /// Budget-guarded negation.
    pub fn try_not(&mut self, f: Ref, budget: &ResourceBudget) -> Result<Ref, BudgetExceeded> {
        self.try_ite(f, Ref::FALSE, Ref::TRUE, budget)
    }

    /// Budget-guarded conjunction.
    pub fn try_and(
        &mut self,
        f: Ref,
        g: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        self.try_ite(f, g, Ref::FALSE, budget)
    }

    /// Budget-guarded disjunction.
    pub fn try_or(
        &mut self,
        f: Ref,
        g: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        self.try_ite(f, Ref::TRUE, g, budget)
    }

    /// Budget-guarded exclusive or.
    pub fn try_xor(
        &mut self,
        f: Ref,
        g: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        let ng = self.try_not(g, budget)?;
        self.try_ite(f, ng, g, budget)
    }

    /// Budget-guarded exclusive nor.
    pub fn try_xnor(
        &mut self,
        f: Ref,
        g: Ref,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        let ng = self.try_not(g, budget)?;
        self.try_ite(f, g, ng, budget)
    }

    /// Budget-guarded n-ary conjunction.
    pub fn try_and_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        let mut acc = Ref::TRUE;
        for f in fs {
            acc = self.try_and(acc, f, budget)?;
        }
        Ok(acc)
    }

    /// Budget-guarded n-ary disjunction.
    pub fn try_or_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        let mut acc = Ref::FALSE;
        for f in fs {
            acc = self.try_or(acc, f, budget)?;
        }
        Ok(acc)
    }

    /// Budget-guarded n-ary exclusive or (parity accumulation).
    pub fn try_xor_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
        budget: &ResourceBudget,
    ) -> Result<Ref, BudgetExceeded> {
        let mut acc = Ref::FALSE;
        for f in fs {
            acc = self.try_xor(acc, f, budget)?;
        }
        Ok(acc)
    }

    /// Total interned node count (including the two terminals) — the
    /// quantity [`ResourceBudget::max_bdd_nodes`] bounds.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // ------------------------------------------------------------------
    // Structural operations
    // ------------------------------------------------------------------

    /// Restrict variable `var` to `value` (Shannon cofactor).
    pub fn restrict(&mut self, f: Ref, var: u32, value: bool) -> Ref {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f; // var does not appear
        }
        if n.var == var {
            return if value { n.hi } else { n.lo };
        }
        let lo = self.restrict(n.lo, var, value);
        let hi = self.restrict(n.hi, var, value);
        self.mk(n.var, lo, hi)
    }

    /// Existential quantification over one variable.
    pub fn exists(&mut self, f: Ref, var: u32) -> Ref {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.or(f0, f1)
    }

    /// Universal quantification over one variable.
    pub fn forall(&mut self, f: Ref, var: u32) -> Ref {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.and(f0, f1)
    }

    /// Existential quantification over a set of variables.
    pub fn exists_many(&mut self, f: Ref, vars: &[u32]) -> Ref {
        vars.iter().fold(f, |acc, &v| self.exists(acc, v))
    }

    /// Universal quantification over a set of variables.
    pub fn forall_many(&mut self, f: Ref, vars: &[u32]) -> Ref {
        vars.iter().fold(f, |acc, &v| self.forall(acc, v))
    }

    /// Boolean difference `∂f/∂var = f|var=0 XOR f|var=1`.
    ///
    /// The probability of the Boolean difference is the core of
    /// transition-density power estimation.
    pub fn boolean_difference(&mut self, f: Ref, var: u32) -> Ref {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.xor(f0, f1)
    }

    /// Substitute function `g` for variable `var` in `f`.
    pub fn compose(&mut self, f: Ref, var: u32, g: Ref) -> Ref {
        let f0 = self.restrict(f, var, false);
        let f1 = self.restrict(f, var, true);
        self.ite(g, f1, f0)
    }

    /// Support: the set of variables `f` depends on, ascending.
    pub fn support(&self, f: Ref) -> Vec<u32> {
        let mut seen = std::collections::BTreeSet::new();
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_const() || !visited.insert(r) {
                continue;
            }
            let n = self.node(r);
            seen.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.into_iter().collect()
    }

    /// Number of nodes in the graph of `f` (excluding terminals).
    pub fn size(&self, f: Ref) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_const() || !visited.insert(r) {
                continue;
            }
            count += 1;
            let n = self.node(r);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    // ------------------------------------------------------------------
    // Evaluation / counting
    // ------------------------------------------------------------------

    /// Evaluate `f` on an assignment (index `i` gives variable `i`).
    ///
    /// Variables beyond the slice default to `false`.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut r = f;
        while !r.is_const() {
            let n = self.node(r);
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            r = if v { n.hi } else { n.lo };
        }
        r.const_value()
    }

    /// Number of satisfying assignments over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars` is smaller than some variable index in `f`'s
    /// support.
    pub fn sat_count(&self, f: Ref, nvars: u32) -> f64 {
        fn go(mgr: &Bdd, f: Ref, nvars: u32, memo: &mut HashMap<u32, f64>) -> f64 {
            if f == Ref::FALSE {
                return 0.0;
            }
            if f == Ref::TRUE {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f.0) {
                return c;
            }
            let n = mgr.node(f);
            assert!(n.var < nvars, "variable {} outside domain {nvars}", n.var);
            let lo_var = if n.lo.is_const() { nvars } else { mgr.node(n.lo).var };
            let hi_var = if n.hi.is_const() { nvars } else { mgr.node(n.hi).var };
            let lo = go(mgr, n.lo, nvars, memo) * 2f64.powi((lo_var - n.var - 1) as i32);
            let hi = go(mgr, n.hi, nvars, memo) * 2f64.powi((hi_var - n.var - 1) as i32);
            let c = lo + hi;
            memo.insert(f.0, c);
            c
        }
        let mut memo = HashMap::new();
        let top = if f.is_const() { nvars } else { self.node(f).var };
        go(self, f, nvars, &mut memo) * 2f64.powi(top as i32)
    }

    /// Exact signal probability of `f` given independent per-variable
    /// one-probabilities `p` (index `i` gives `P(var_i = 1)`).
    ///
    /// Variables beyond the slice default to probability 0.5.
    pub fn probability(&self, f: Ref, p: &[f64]) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.prob_rec(f, p, &mut memo)
    }

    fn prob_rec(&self, f: Ref, p: &[f64], memo: &mut HashMap<u32, f64>) -> f64 {
        if f == Ref::FALSE {
            return 0.0;
        }
        if f == Ref::TRUE {
            return 1.0;
        }
        if let Some(&v) = memo.get(&f.0) {
            return v;
        }
        let n = self.node(f);
        let pv = p.get(n.var as usize).copied().unwrap_or(0.5);
        let lo = self.prob_rec(n.lo, p, memo);
        let hi = self.prob_rec(n.hi, p, memo);
        let result = (1.0 - pv) * lo + pv * hi;
        memo.insert(f.0, result);
        result
    }

    /// One satisfying assignment of `f` (as `(var, value)` pairs for the
    /// variables on the chosen path), or `None` if unsatisfiable.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<(u32, bool)>> {
        if f == Ref::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut r = f;
        while !r.is_const() {
            let n = self.node(r);
            if n.hi != Ref::FALSE {
                path.push((n.var, true));
                r = n.hi;
            } else {
                path.push((n.var, false));
                r = n.lo;
            }
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut mgr = Bdd::new();
        assert_eq!(mgr.constant(true), Ref::TRUE);
        assert_eq!(mgr.constant(false), Ref::FALSE);
        let a = mgr.var(0);
        let a2 = mgr.var(0);
        assert_eq!(a, a2, "canonicity of projections");
        let na = mgr.not(a);
        assert_eq!(mgr.nvar(0), na);
        assert_ne!(a, na);
    }

    #[test]
    fn truth_tables() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let and = mgr.and(a, b);
        let or = mgr.or(a, b);
        let xor = mgr.xor(a, b);
        for bits in 0u32..4 {
            let assignment = [bits & 1 == 1, bits >> 1 & 1 == 1];
            assert_eq!(mgr.eval(and, &assignment), assignment[0] && assignment[1]);
            assert_eq!(mgr.eval(or, &assignment), assignment[0] || assignment[1]);
            assert_eq!(mgr.eval(xor, &assignment), assignment[0] ^ assignment[1]);
        }
    }

    #[test]
    fn canonicity_detects_equivalence() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        // De Morgan: !(a & b) == !a | !b
        let ab = mgr.and(a, b);
        let lhs = mgr.not(ab);
        let na = mgr.not(a);
        let nb = mgr.not(b);
        let rhs = mgr.or(na, nb);
        assert_eq!(lhs, rhs);
        // Distribution: a & (b | c) == a&b | a&c
        let c = mgr.var(2);
        let bc = mgr.or(b, c);
        let l = mgr.and(a, bc);
        let ab = mgr.and(a, b);
        let ac = mgr.and(a, c);
        let r = mgr.or(ab, ac);
        assert_eq!(l, r);
    }

    #[test]
    fn double_negation() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.xor(a, b);
        let nf = mgr.not(f);
        assert_eq!(mgr.not(nf), f);
    }

    #[test]
    fn restrict_and_compose() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let f = {
            let bc = mgr.or(b, c);
            mgr.and(a, bc)
        };
        // f|a=0 == 0, f|a=1 == b|c
        assert_eq!(mgr.restrict(f, 0, false), Ref::FALSE);
        let bc = mgr.or(b, c);
        assert_eq!(mgr.restrict(f, 0, true), bc);
        // compose b := a gives a & (a | c) = a
        let g = mgr.compose(f, 1, a);
        assert_eq!(g, a);
    }

    #[test]
    fn quantification() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        // ∃b. a&b == a ; ∀b. a&b == 0
        assert_eq!(mgr.exists(f, 1), a);
        assert_eq!(mgr.forall(f, 1), Ref::FALSE);
        let g = mgr.or(a, b);
        // ∀b. a|b == a ; ∃b. a|b == 1
        assert_eq!(mgr.forall(g, 1), a);
        assert_eq!(mgr.exists(g, 1), Ref::TRUE);
        // Multi-variable forms.
        assert_eq!(mgr.exists_many(f, &[0, 1]), Ref::TRUE);
        assert_eq!(mgr.forall_many(f, &[0, 1]), Ref::FALSE);
    }

    #[test]
    fn boolean_difference_of_and() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        // ∂(a&b)/∂a = b
        assert_eq!(mgr.boolean_difference(f, 0), b);
        // ∂(a xor b)/∂a = 1
        let g = mgr.xor(a, b);
        assert_eq!(mgr.boolean_difference(g, 0), Ref::TRUE);
    }

    #[test]
    fn sat_count_small() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let f = mgr.and(a, b);
        assert_eq!(mgr.sat_count(f, 3), 2.0); // a&b over 3 vars: 2 assignments
        let g = mgr.or_all([a, b, c]);
        assert_eq!(mgr.sat_count(g, 3), 7.0);
        assert_eq!(mgr.sat_count(Ref::TRUE, 3), 8.0);
        assert_eq!(mgr.sat_count(Ref::FALSE, 3), 0.0);
    }

    #[test]
    fn probability_uniform_matches_sat_count() {
        let mut mgr = Bdd::new();
        let vars: Vec<Ref> = (0..4).map(|i| mgr.var(i)).collect();
        let ab = mgr.and(vars[0], vars[1]);
        let cd = mgr.and(vars[2], vars[3]);
        let f = mgr.or(ab, cd);
        let p = mgr.probability(f, &[0.5; 4]);
        let count = mgr.sat_count(f, 4);
        assert!((p - count / 16.0).abs() < 1e-12);
    }

    #[test]
    fn probability_biased() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.or(a, b);
        // P(a|b) = 1 - (1-0.1)(1-0.2) = 0.28
        let p = mgr.probability(f, &[0.1, 0.2]);
        assert!((p - 0.28).abs() < 1e-12);
    }

    #[test]
    fn support_and_size() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let c = mgr.var(2);
        let f = mgr.xor(a, c);
        assert_eq!(mgr.support(f), vec![0, 2]);
        assert!(mgr.size(f) >= 2);
        assert_eq!(mgr.support(Ref::TRUE), Vec::<u32>::new());
        assert_eq!(mgr.size(Ref::FALSE), 0);
    }

    #[test]
    fn any_sat_finds_assignment() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let nb = mgr.not(b);
        let f = mgr.and(a, nb);
        let sat = mgr.any_sat(f).unwrap();
        let mut assignment = vec![false; 2];
        for (v, val) in sat {
            assignment[v as usize] = val;
        }
        assert!(mgr.eval(f, &assignment));
        assert_eq!(mgr.any_sat(Ref::FALSE), None);
    }

    #[test]
    fn adder_bit_is_canonical() {
        // sum bit of full adder built two different ways.
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let cin = mgr.var(2);
        let ab = mgr.xor(a, b);
        let s1 = mgr.xor(ab, cin);
        let bc = mgr.xor(b, cin);
        let s2 = mgr.xor(a, bc);
        assert_eq!(s1, s2);
    }

    #[test]
    fn node_budget_trips_on_wide_cone() {
        // x0·x3 + x1·x4 + x2·x5 under the interleaved order needs > 16
        // nodes; a 16-node budget must produce a typed error, not growth.
        let mut mgr = Bdd::new();
        let budget = ResourceBudget::unlimited().with_max_bdd_nodes(16);
        let mut f = Ref::FALSE;
        let mut failed = None;
        for (a, b) in [(0, 3), (1, 4), (2, 5)] {
            let (va, vb) = (mgr.var(a), mgr.var(b));
            let t = match mgr.try_and(va, vb, &budget) {
                Ok(t) => t,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            };
            match mgr.try_or(f, t, &budget) {
                Ok(r) => f = r,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let err = failed.expect("16-node budget must be exceeded");
        assert_eq!(err.resource, budget::Resource::BddNodes);
        assert!(mgr.node_count() <= 18, "growth stopped near the limit");
        // The manager stays usable after exhaustion.
        let a = mgr.var(0);
        assert!(mgr.eval(a, &[true]));
    }

    #[test]
    fn guarded_ops_match_unguarded_under_no_limit() {
        let mut guarded = Bdd::new();
        let mut plain = Bdd::new();
        let unlimited = ResourceBudget::unlimited();
        let (a1, b1, c1) = (guarded.var(0), guarded.var(1), guarded.var(2));
        let (a2, b2, c2) = (plain.var(0), plain.var(1), plain.var(2));
        let g = {
            let x = guarded.try_xor(a1, b1, &unlimited).unwrap();
            let o = guarded.try_or_all([x, c1], &unlimited).unwrap();
            guarded.try_and_all([o, a1], &unlimited).unwrap()
        };
        let p = {
            let x = plain.xor(a2, b2);
            let o = plain.or_all([x, c2]);
            plain.and_all([o, a2])
        };
        for bits in 0u32..8 {
            let env: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(guarded.eval(g, &env), plain.eval(p, &env), "{bits:03b}");
        }
        // Same construction order => same canonical node ids.
        assert_eq!(g, p);
        assert_eq!(guarded.node_count(), plain.node_count());
    }

    #[test]
    fn deadline_budget_fails_eventually() {
        // An already-expired deadline trips on the first chunk of misses.
        let mut mgr = Bdd::new();
        let budget = ResourceBudget::unlimited().with_deadline_ms(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let vars: Vec<Ref> = (0..24).map(|i| mgr.var(i)).collect();
        let mut result = Ok(Ref::FALSE);
        for (a, b) in (0..12).map(|i| (vars[i], vars[i + 12])) {
            result = mgr
                .try_and(a, b, &budget)
                .and_then(|t| result.and_then(|acc| mgr.try_or(acc, t, &budget)));
            if result.is_err() {
                break;
            }
        }
        // Amortization means tiny graphs may finish under an expired
        // deadline; a node limit composed with it always trips.
        let tight = ResourceBudget::unlimited().with_max_bdd_nodes(4).with_deadline_ms(0);
        let v = mgr.var(30);
        let w = mgr.var(31);
        assert!(mgr.try_and(v, w, &tight).is_err());
    }

    #[test]
    fn op_counts_track_work_consistently() {
        let mut mgr = Bdd::new();
        assert_eq!(mgr.op_counts(), OpCounts::default());
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        let _again = mgr.and(a, b); // pure cache hit
        let c = mgr.op_counts();
        assert!(c.ite_calls > 0);
        assert!(c.cache_hits <= c.cache_lookups, "{c:?}");
        assert!(c.unique_hits <= c.unique_lookups, "{c:?}");
        assert_eq!(c.unique_lookups, c.unique_hits + c.nodes_created, "{c:?}");
        // Every interned node beyond the two terminals came through mk.
        assert_eq!(c.nodes_created as usize, mgr.node_count() - 2);
        assert!(!f.is_const());
    }

    #[test]
    fn op_counts_are_deterministic() {
        let build = || {
            let mut mgr = Bdd::new();
            let vars: Vec<Ref> = (0..6).map(|i| mgr.var(i)).collect();
            let x = mgr.xor(vars[0], vars[3]);
            let y = mgr.and(vars[1], vars[4]);
            let z = mgr.or(vars[2], vars[5]);
            let xy = mgr.or(x, y);
            let _f = mgr.and(xy, z);
            mgr.op_counts()
        };
        assert_eq!(build(), build(), "same construction => same counts");
    }

    #[test]
    fn stats_reflect_growth() {
        let mut mgr = Bdd::new();
        let initial = mgr.stats().nodes;
        let vars: Vec<Ref> = (0..8).map(|i| mgr.var(i)).collect();
        let _f = mgr.and_all(vars);
        let s = mgr.stats();
        assert!(s.nodes > initial);
        assert_eq!(s.vars, 8);
    }
}

impl Bdd {
    /// Rebuild `roots` in a fresh manager under a new variable order.
    ///
    /// `position[v]` gives the level the old variable `v` occupies in the
    /// new manager (a permutation of `0..n`). Returns the new manager and
    /// the translated roots, in order.
    ///
    /// # Panics
    ///
    /// Panics if `position` is not a permutation covering every variable in
    /// the roots' support.
    pub fn rebuild_with_order(&self, roots: &[Ref], position: &[u32]) -> (Bdd, Vec<Ref>) {
        {
            let mut seen = vec![false; position.len()];
            for &p in position {
                assert!(
                    (p as usize) < position.len() && !seen[p as usize],
                    "position must be a permutation"
                );
                seen[p as usize] = true;
            }
        }
        let mut out = Bdd::new();
        let mut memo: HashMap<u32, Ref> = HashMap::new();
        let mut translated = Vec::with_capacity(roots.len());
        for &root in roots {
            let r = self.rebuild_rec(root, position, &mut out, &mut memo);
            translated.push(r);
        }
        (out, translated)
    }

    fn rebuild_rec(
        &self,
        f: Ref,
        position: &[u32],
        out: &mut Bdd,
        memo: &mut HashMap<u32, Ref>,
    ) -> Ref {
        if f.is_const() {
            return f;
        }
        if let Some(&r) = memo.get(&f.0) {
            return r;
        }
        let node = self.node(f);
        assert!(
            (node.var as usize) < position.len(),
            "variable {} outside the permutation",
            node.var
        );
        let lo = self.rebuild_rec(node.lo, position, out, memo);
        let hi = self.rebuild_rec(node.hi, position, out, memo);
        let v = out.var(position[node.var as usize]);
        let r = out.ite(v, hi, lo);
        memo.insert(f.0, r);
        r
    }

    /// Total node count of a set of roots (shared nodes counted once).
    pub fn size_many(&self, roots: &[Ref]) -> usize {
        let mut visited = std::collections::HashSet::new();
        let mut stack: Vec<Ref> = roots.to_vec();
        let mut count = 0;
        while let Some(r) = stack.pop() {
            if r.is_const() || !visited.insert(r) {
                continue;
            }
            count += 1;
            let n = self.node(r);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Greedy sifting-style reordering example:
    ///
    /// ```
    /// use bdd::Bdd;
    ///
    /// // x0·x3 + x1·x4 + x2·x5 is large under the interleaved order...
    /// let mut mgr = Bdd::new();
    /// let mut f = bdd::Ref::FALSE;
    /// for (a, b) in [(0, 3), (1, 4), (2, 5)] {
    ///     let (va, vb) = (mgr.var(a), mgr.var(b));
    ///     let t = mgr.and(va, vb);
    ///     f = mgr.or(f, t);
    /// }
    /// let (sifted, roots, _) = mgr.sift(&[f], 6);
    /// // ...and linear (6 nodes) once sifting pairs the variables up.
    /// assert_eq!(sifted.size_many(&roots), 6);
    /// ```
    ///
    /// Greedy sifting-style reordering: repeatedly move one variable to the    /// Greedy sifting-style reordering: repeatedly move one variable to the
    /// position that minimizes the shared node count of `roots`, until no
    /// single move helps. Practical for up to ~16 variables (each trial
    /// rebuilds the graphs).
    ///
    /// Returns the reordered manager, the translated roots, and the final
    /// `position[old_var] = new_level` permutation.
    pub fn sift(&self, roots: &[Ref], num_vars: usize) -> (Bdd, Vec<Ref>, Vec<u32>) {
        let n = num_vars;
        let mut position: Vec<u32> = (0..n as u32).collect();
        let (mut best_mgr, mut best_roots) = self.rebuild_with_order(roots, &position);
        let mut best_size = best_mgr.size_many(&best_roots);
        let mut improved = true;
        while improved {
            improved = false;
            for var in 0..n {
                for target in 0..n as u32 {
                    // Re-read each time: an accepted move changes the level.
                    let current_level = position[var];
                    if target == current_level {
                        continue;
                    }
                    // Move `var` to level `target`, shifting the others.
                    let mut candidate = position.clone();
                    for p in candidate.iter_mut() {
                        if *p > current_level && *p <= target {
                            *p -= 1;
                        } else if *p >= target && *p < current_level {
                            *p += 1;
                        }
                    }
                    candidate[var] = target;
                    let (mgr, new_roots) = self.rebuild_with_order(roots, &candidate);
                    let size = mgr.size_many(&new_roots);
                    if size < best_size {
                        best_size = size;
                        best_mgr = mgr;
                        best_roots = new_roots;
                        position = candidate;
                        improved = true;
                    }
                }
            }
        }
        (best_mgr, best_roots, position)
    }
}

#[cfg(test)]
mod reorder_tests {
    use super::*;

    /// f = x0·x1 + x2·x3 + x4·x5 — linear under the natural order,
    /// exponential under the interleaved order (x0,x2,x4,x1,x3,x5).
    fn chain_function(mgr: &mut Bdd, pairs: &[(u32, u32)]) -> Ref {
        let mut f = Ref::FALSE;
        for &(a, b) in pairs {
            let va = mgr.var(a);
            let vb = mgr.var(b);
            let t = mgr.and(va, vb);
            f = mgr.or(f, t);
        }
        f
    }

    #[test]
    fn rebuild_preserves_function() {
        let mut mgr = Bdd::new();
        let f = chain_function(&mut mgr, &[(0, 1), (2, 3), (4, 5)]);
        // Reverse the variable order.
        let position: Vec<u32> = (0..6).rev().collect();
        let (new_mgr, roots) = mgr.rebuild_with_order(&[f], &position);
        let g = roots[0];
        for bits in 0u32..64 {
            let old_env: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            // In the new manager, old var v lives at level position[v].
            let mut new_env = vec![false; 6];
            for v in 0..6 {
                new_env[position[v] as usize] = old_env[v];
            }
            assert_eq!(new_mgr.eval(g, &new_env), mgr.eval(f, &old_env), "{bits:06b}");
        }
    }

    #[test]
    fn good_order_is_linear_bad_is_larger() {
        // Natural (paired) order.
        let mut good = Bdd::new();
        let fg = chain_function(&mut good, &[(0, 1), (2, 3), (4, 5)]);
        // Interleaved order: pair partners maximally separated.
        let mut bad = Bdd::new();
        let fb = chain_function(&mut bad, &[(0, 3), (1, 4), (2, 5)]);
        assert!(
            bad.size(fb) > good.size(fg),
            "interleaved {} vs paired {}",
            bad.size(fb),
            good.size(fg)
        );
    }

    #[test]
    fn sifting_recovers_linear_size() {
        let mut bad = Bdd::new();
        let f = chain_function(&mut bad, &[(0, 3), (1, 4), (2, 5)]);
        let before = bad.size(f);
        let (sifted, roots, position) = bad.sift(&[f], 6);
        let after = sifted.size_many(&roots);
        assert!(after < before, "sifting {before} -> {after}");
        // The optimum for a 3-pair chain is 6 internal nodes.
        assert_eq!(after, 6, "sifting should find the pairing order");
        // And the function is preserved.
        for bits in 0u32..64 {
            let old_env: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let mut new_env = vec![false; 6];
            for v in 0..6 {
                new_env[position[v] as usize] = old_env[v];
            }
            assert_eq!(sifted.eval(roots[0], &new_env), bad.eval(f, &old_env));
        }
    }

    #[test]
    fn sift_multiple_roots_shares_nodes() {
        let mut mgr = Bdd::new();
        let f = chain_function(&mut mgr, &[(0, 2), (1, 3)]);
        let v0 = mgr.var(0);
        let g = mgr.and(f, v0);
        let (sifted, roots, _) = mgr.sift(&[f, g], 4);
        assert_eq!(roots.len(), 2);
        assert!(sifted.size_many(&roots) <= mgr.size_many(&[f, g]));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_bad_permutation() {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b);
        mgr.rebuild_with_order(&[f], &[0, 0]);
    }
}
