//! Serialization of BDD graphs (DDDMP-style text, `lpbdd-v1`).
//!
//! A store blob captures the subgraph reachable from a set of root
//! functions so a manager can be rebuilt in another process — the warm
//! persistence layer under `lpopt serve`'s crash-safe snapshots. The
//! format is line-oriented and versioned, and the whole payload is
//! covered by an FNV-1a checksum: a truncated, bit-flipped or
//! version-skewed blob comes back as a typed [`StoreError`], never a
//! panic and never a silently different function.
//!
//! ```text
//! .lpbdd 1
//! .nvars 3
//! .nnodes 2
//! .nroots 1
//! .nodes
//! 2 0 1
//! 0 2 4
//! .roots
//! 5
//! .checksum 1234abcd1234abcd
//! ```
//!
//! Interior nodes are listed in bottom-up order and numbered 1..=nnodes
//! (serial 0 is the terminal); an edge is encoded as `serial * 2 + c`
//! where `c` is the complement bit, so `0` is constant FALSE and `1`
//! constant TRUE. A node line `var lo hi` may only reference serials
//! already listed. Reconstruction funnels every node through the
//! manager's ITE, so a loaded function is canonical in its new manager
//! and — canonicity being unique — produces bit-identical
//! `probability` / `sat_count` / `support` answers.
//!
//! A manager whose variable order was changed (statically seeded or by a
//! dynamic-reorder pass) writes one extra header line between `.nroots`
//! and `.nodes`: `.order l0 l1 …` — the var→level permutation. Reading
//! such a blob into a **fresh** manager replays the build under that
//! order, so the restored graph is node-for-node the writer's; loading
//! into a populated manager ignores the line (functions do not depend on
//! it). Identity-order managers never emit the line, so their blobs are
//! byte-identical to pre-order-aware builds and still version 1.
//!
//! ```
//! use bdd::{Bdd, store};
//!
//! let mut mgr = Bdd::new();
//! let a = mgr.var(0);
//! let b = mgr.var(1);
//! let f = mgr.and(a, b);
//! let blob = store::write_bdd(&mgr, &[f]);
//! let (back, roots) = store::read_bdd(&blob).unwrap();
//! assert_eq!(back.probability(roots[0], &[0.5, 0.25]),
//!            mgr.probability(f, &[0.5, 0.25]));
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::manager::{Bdd, Ref};

/// Store format version this build writes and accepts.
pub const FORMAT_VERSION: u32 = 1;

/// Why a blob was rejected. Every variant is a clean refusal: the caller
/// discards the snapshot and rebuilds from scratch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The version line is missing or names a format this build does not
    /// speak.
    Version(String),
    /// Structurally unreadable: truncated, token soup, out-of-range
    /// serials, counts that do not match the payload.
    Malformed(String),
    /// The payload parsed but its checksum does not match — bit rot or a
    /// torn write.
    Checksum {
        /// Checksum recorded in the blob.
        stored: u64,
        /// Checksum of the payload actually read.
        computed: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Version(v) => write!(f, "unsupported store version: {v}"),
            StoreError::Malformed(what) => write!(f, "malformed store blob: {what}"),
            StoreError::Checksum { stored, computed } => write!(
                f,
                "store checksum mismatch: recorded {stored:016x}, payload hashes to {computed:016x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn malformed(what: impl Into<String>) -> StoreError {
    StoreError::Malformed(what.into())
}

/// FNV-1a over a byte slice — the same cheap hash the circuit fingerprint
/// uses; collision resistance here guards against bit rot, not attackers.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize the subgraph reachable from `roots` as an `lpbdd-v1` blob.
///
/// Roots may repeat and may be constants; order is preserved and
/// [`read_bdd`] returns the rebuilt refs in the same order.
pub fn write_bdd(mgr: &Bdd, roots: &[Ref]) -> String {
    // Post-order DFS assigning serials so children precede parents.
    let mut serial: HashMap<usize, u64> = HashMap::new();
    let mut lines: Vec<(u32, u64, u64)> = Vec::new();
    let mut stack: Vec<(Ref, bool)> = roots.iter().rev().map(|&r| (r, false)).collect();
    while let Some((f, expanded)) = stack.pop() {
        if f.is_const() || serial.contains_key(&f.store_index()) {
            continue;
        }
        if expanded {
            let id = lines.len() as u64 + 1;
            serial.insert(f.store_index(), id);
            let lo = encode_edge(mgr.stored_low(f), &serial);
            let hi = encode_edge(mgr.stored_high(f), &serial);
            lines.push((mgr.top_var(f), lo, hi));
        } else {
            stack.push((f, true));
            stack.push((mgr.stored_high(f), false));
            stack.push((mgr.stored_low(f), false));
        }
    }
    let mut out = String::new();
    out.push_str(&format!(".lpbdd {FORMAT_VERSION}\n"));
    out.push_str(&format!(".nvars {}\n", mgr.num_vars()));
    out.push_str(&format!(".nnodes {}\n", lines.len()));
    out.push_str(&format!(".nroots {}\n", roots.len()));
    if mgr.has_custom_order() {
        out.push_str(".order");
        for level in mgr.var_order() {
            out.push_str(&format!(" {level}"));
        }
        out.push('\n');
    }
    out.push_str(".nodes\n");
    for (var, lo, hi) in &lines {
        out.push_str(&format!("{var} {lo} {hi}\n"));
    }
    out.push_str(".roots\n");
    for &r in roots {
        out.push_str(&format!("{}\n", encode_edge(r, &serial)));
    }
    let checksum = fnv1a(out.as_bytes());
    out.push_str(&format!(".checksum {checksum:016x}\n"));
    out
}

fn encode_edge(f: Ref, serial: &HashMap<usize, u64>) -> u64 {
    if f.is_const() {
        return u64::from(f.const_value());
    }
    let id = serial[&f.store_index()];
    id * 2 + u64::from(f.store_complemented())
}

/// Parse an `lpbdd-v1` blob into a fresh manager, returning it together
/// with the rebuilt roots (same order as [`write_bdd`] was given).
pub fn read_bdd(text: &str) -> Result<(Bdd, Vec<Ref>), StoreError> {
    let mut mgr = Bdd::new();
    let roots = read_bdd_into(&mut mgr, text)?;
    Ok((mgr, roots))
}

/// [`read_bdd`] loading into an existing manager. Nodes are funneled
/// through the manager's ITE, so loading the same blob twice — or a blob
/// overlapping functions already present — shares structure instead of
/// duplicating it.
pub fn read_bdd_into(mgr: &mut Bdd, text: &str) -> Result<Vec<Ref>, StoreError> {
    let (roots, consumed) = read_bdd_prefix(mgr, text)?;
    if text[consumed..].bytes().any(|b| !b.is_ascii_whitespace()) {
        return Err(malformed("trailing data after .checksum"));
    }
    Ok(roots)
}

/// Read one blob from the front of `text` (which may hold further data
/// after it — snapshot envelopes embed several blobs back to back),
/// returning the rebuilt roots and the number of bytes consumed.
pub fn read_bdd_prefix(mgr: &mut Bdd, text: &str) -> Result<(Vec<Ref>, usize), StoreError> {
    let mut parser = Parser::new(text);
    let version = parser.header_line(".lpbdd")?;
    if version != u64::from(FORMAT_VERSION) {
        return Err(StoreError::Version(version.to_string()));
    }
    let nvars = parser.header_line(".nvars")?;
    let nnodes = parser.header_line(".nnodes")?;
    let nroots = parser.header_line(".nroots")?;
    let line = parser
        .next_line()
        .ok_or_else(|| malformed("missing .nodes section"))?;
    match line.trim_end() {
        ".nodes" => {}
        l if l.starts_with(".order") => {
            let mut levels: Vec<u32> = Vec::with_capacity(nvars as usize);
            for tok in l[".order".len()..].split_ascii_whitespace() {
                levels.push(parse_num(Some(tok), ".order level")? as u32);
            }
            if levels.len() as u64 != nvars {
                return Err(malformed(format!(
                    ".order lists {} levels for {nvars} variables",
                    levels.len()
                )));
            }
            let mut seen = vec![false; levels.len()];
            for &l in &levels {
                if (l as usize) >= levels.len() || seen[l as usize] {
                    return Err(malformed(".order is not a permutation"));
                }
                seen[l as usize] = true;
            }
            // Replay the build under the writer's order so the restored
            // graph matches node for node. A populated manager keeps its
            // own order — the functions read back identically either way.
            if mgr.is_empty() {
                mgr.set_order(&levels);
            }
            parser.expect_line(".nodes")?;
        }
        _ => return Err(malformed(format!("expected .nodes, found {line:?}"))),
    }
    // refs[serial]: serial 0 is the terminal FALSE.
    let mut refs: Vec<Ref> = Vec::with_capacity(nnodes as usize + 1);
    refs.push(Ref::FALSE);
    for i in 0..nnodes {
        let line = parser.next_line().ok_or_else(|| malformed("truncated node list"))?;
        let mut it = line.split_ascii_whitespace();
        let var = parse_num(it.next(), "node var")?;
        let lo = parse_num(it.next(), "node lo edge")?;
        let hi = parse_num(it.next(), "node hi edge")?;
        if it.next().is_some() {
            return Err(malformed(format!("trailing tokens on node line {}", i + 1)));
        }
        if var >= nvars {
            return Err(malformed(format!("node {} var {var} outside domain {nvars}", i + 1)));
        }
        let lo = decode_edge(mgr, lo, &refs)?;
        let hi = decode_edge(mgr, hi, &refs)?;
        let v = mgr.var(var as u32);
        refs.push(mgr.ite(v, hi, lo));
    }
    parser.expect_line(".roots")?;
    let mut roots = Vec::with_capacity(nroots as usize);
    for _ in 0..nroots {
        let line = parser.next_line().ok_or_else(|| malformed("truncated root list"))?;
        let edge = parse_num(Some(line.trim()), "root edge")?;
        roots.push(decode_edge(mgr, edge, &refs)?);
    }
    // Everything up to here is covered by the checksum line that follows.
    let payload_end = parser.consumed;
    let line = parser
        .next_line()
        .ok_or_else(|| malformed("missing .checksum line"))?;
    let stored = line
        .strip_prefix(".checksum ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or_else(|| malformed("unreadable .checksum line"))?;
    let computed = fnv1a(&text.as_bytes()[..payload_end]);
    if stored != computed {
        return Err(StoreError::Checksum { stored, computed });
    }
    Ok((roots, parser.consumed))
}

fn parse_num(token: Option<&str>, what: &str) -> Result<u64, StoreError> {
    token
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed(format!("unreadable {what}")))
}

fn decode_edge(mgr: &mut Bdd, edge: u64, refs: &[Ref]) -> Result<Ref, StoreError> {
    let serial = (edge / 2) as usize;
    let complemented = edge % 2 == 1;
    let base = *refs
        .get(serial)
        .ok_or_else(|| malformed(format!("edge {edge} references serial {serial} before definition")))?;
    Ok(if complemented { mgr.not(base) } else { base })
}

/// Line cursor that tracks how many bytes it has consumed (the checksum
/// covers the exact prefix the parser read).
struct Parser<'a> {
    text: &'a str,
    consumed: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser { text, consumed: 0 }
    }

    fn next_line(&mut self) -> Option<&'a str> {
        if self.consumed >= self.text.len() {
            return None;
        }
        let rest = &self.text[self.consumed..];
        let (line, advance) = match rest.find('\n') {
            Some(i) => (&rest[..i], i + 1),
            None => (rest, rest.len()),
        };
        self.consumed += advance;
        Some(line)
    }

    fn header_line(&mut self, key: &str) -> Result<u64, StoreError> {
        let line = self
            .next_line()
            .ok_or_else(|| malformed(format!("missing {key} line")))?;
        let value = line.strip_prefix(key).map(str::trim);
        match value {
            Some(v) if key == ".lpbdd" => v
                .parse()
                .map_err(|_| StoreError::Version(v.to_string())),
            Some(v) => v
                .parse()
                .map_err(|_| malformed(format!("unreadable {key} value {v:?}"))),
            None if key == ".lpbdd" => Err(StoreError::Version(line.to_string())),
            None => Err(malformed(format!("expected {key}, found {line:?}"))),
        }
    }

    fn expect_line(&mut self, expected: &str) -> Result<(), StoreError> {
        match self.next_line() {
            Some(line) if line.trim_end() == expected => Ok(()),
            Some(line) => Err(malformed(format!("expected {expected}, found {line:?}"))),
            None => Err(malformed(format!("missing {expected} section"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Bdd, Vec<Ref>) {
        let mut mgr = Bdd::new();
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let f = mgr.xor(ab, c);
        let g = mgr.or(f, a);
        let h = mgr.not(f);
        (mgr, vec![f, g, h, Ref::TRUE, Ref::FALSE])
    }

    #[test]
    fn round_trip_preserves_functions() {
        let (mgr, roots) = sample();
        let blob = write_bdd(&mgr, &roots);
        let (mut back, rebuilt) = read_bdd(&blob).expect("round trip");
        assert_eq!(rebuilt.len(), roots.len());
        let p = [0.3, 0.7, 0.5];
        for (&orig, &new) in roots.iter().zip(&rebuilt) {
            assert_eq!(
                mgr.probability(orig, &p).to_bits(),
                back.probability(new, &p).to_bits()
            );
            assert_eq!(
                mgr.sat_count(orig, 3).to_bits(),
                back.sat_count(new, 3).to_bits()
            );
            assert_eq!(mgr.support(orig), back.support(new));
        }
        // Complement pair survives as a complement pair.
        assert_eq!(rebuilt[2], back.not(rebuilt[0]));
    }

    #[test]
    fn read_into_shares_structure() {
        let (mgr, roots) = sample();
        let blob = write_bdd(&mgr, &roots);
        let mut target = Bdd::new();
        let first = read_bdd_into(&mut target, &blob).unwrap();
        let nodes_after_first = target.node_count();
        let second = read_bdd_into(&mut target, &blob).unwrap();
        assert_eq!(first, second, "same functions must intern to same refs");
        assert_eq!(target.node_count(), nodes_after_first, "no duplication");
    }

    #[test]
    fn version_skew_is_rejected() {
        let (mgr, roots) = sample();
        let blob = write_bdd(&mgr, &roots).replace(".lpbdd 1", ".lpbdd 99");
        match read_bdd(&blob) {
            Err(StoreError::Version(v)) => assert_eq!(v, "99"),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let (mgr, roots) = sample();
        let blob = write_bdd(&mgr, &roots);
        for cut in [1, blob.len() / 4, blob.len() / 2, blob.len() - 2] {
            let err = read_bdd(&blob[..cut]).expect_err("truncated blob must fail");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn corruption_is_rejected_by_checksum() {
        let (mgr, roots) = sample();
        let blob = write_bdd(&mgr, &roots);
        // Flip one digit inside the node list: still parseable, but the
        // checksum no longer matches.
        let node_section = blob.find(".nodes\n").unwrap() + 7;
        let mut bytes = blob.into_bytes();
        let target = (node_section..bytes.len())
            .find(|&i| bytes[i].is_ascii_digit())
            .unwrap();
        bytes[target] = if bytes[target] == b'0' { b'1' } else { b'0' };
        let corrupt = String::from_utf8(bytes).unwrap();
        match read_bdd(&corrupt) {
            Err(StoreError::Checksum { stored, computed }) => assert_ne!(stored, computed),
            Err(other) => {
                // A flip may instead break structure (e.g. a serial now out
                // of range); that is an equally clean rejection.
                assert!(matches!(other, StoreError::Malformed(_)));
            }
            Ok(_) => panic!("corrupted blob must be rejected"),
        }
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        for garbage in ["", "hello", ".lpbdd one\n", ".lpbdd 1\n.nvars x\n"] {
            assert!(read_bdd(garbage).is_err(), "{garbage:?}");
        }
    }

    fn reordered_sample() -> (Bdd, Vec<Ref>) {
        let mut mgr = Bdd::new();
        // Non-identity order: interleaved pair partners become adjacent.
        mgr.set_order(&[0, 2, 1, 3]);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ac = mgr.and(a, c);
        let bd = mgr.and(b, d);
        let f = mgr.or(ac, bd);
        let g = mgr.xor(f, a);
        (mgr, vec![f, g])
    }

    #[test]
    fn identity_order_writes_no_order_line() {
        let (mgr, roots) = sample();
        assert!(!write_bdd(&mgr, &roots).contains(".order"));
    }

    #[test]
    fn reordered_round_trip_restores_order_and_semantics() {
        let (mgr, roots) = reordered_sample();
        let blob = write_bdd(&mgr, &roots);
        assert!(blob.contains(".order 0 2 1 3\n"), "order must be recorded");
        let (back, rebuilt) = read_bdd(&blob).expect("round trip");
        assert_eq!(back.var_order(), mgr.var_order());
        let p = [0.25, 0.75, 0.5, 0.125];
        for (&orig, &new) in roots.iter().zip(&rebuilt) {
            assert_eq!(
                mgr.probability(orig, &p).to_bits(),
                back.probability(new, &p).to_bits()
            );
            assert_eq!(
                mgr.sat_count(orig, 4).to_bits(),
                back.sat_count(new, 4).to_bits()
            );
            assert_eq!(mgr.support(orig), back.support(new));
        }
        // Node-for-node replay: the rebuilt graph is the writer's size.
        assert_eq!(back.size_many(&rebuilt), mgr.size_many(&roots));
    }

    #[test]
    fn order_line_into_populated_manager_is_ignored_but_correct() {
        let (mgr, roots) = reordered_sample();
        let blob = write_bdd(&mgr, &roots);
        let mut target = Bdd::new();
        let x = target.var(0);
        let y = target.var(1);
        let keep = target.and(x, y);
        let rebuilt = read_bdd_into(&mut target, &blob).unwrap();
        assert!(!target.has_custom_order(), "populated manager keeps its order");
        for (&orig, &new) in roots.iter().zip(&rebuilt) {
            for bits in 0u32..16 {
                let env: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(mgr.eval(orig, &env), target.eval(new, &env));
            }
        }
        assert!(target.eval(keep, &[true, true]));
    }

    #[test]
    fn corrupt_order_line_is_rejected() {
        let (mgr, roots) = reordered_sample();
        let blob = write_bdd(&mgr, &roots);
        let order_start = blob.find(".order").expect("reordered blob has .order");
        let line_end = blob[order_start..].find('\n').unwrap() + order_start;
        // Duplicate level: parseable but not a permutation.
        let dup = format!(
            "{}.order 0 0 1 2\n{}",
            &blob[..order_start],
            &blob[line_end + 1..]
        );
        assert!(matches!(read_bdd(&dup), Err(StoreError::Malformed(_))));
        // Wrong arity.
        let short = format!(
            "{}.order 0 1\n{}",
            &blob[..order_start],
            &blob[line_end + 1..]
        );
        assert!(matches!(read_bdd(&short), Err(StoreError::Malformed(_))));
        // Bit-flip inside the order digits: caught by checksum (or parse).
        let mut bytes = blob.clone().into_bytes();
        let digit = (order_start..line_end)
            .find(|&i| bytes[i].is_ascii_digit())
            .unwrap();
        bytes[digit] = if bytes[digit] == b'0' { b'1' } else { b'0' };
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(read_bdd(&flipped).is_err(), "order corruption must be rejected");
    }

    #[test]
    fn sifted_manager_round_trips() {
        // An order produced by an actual reorder pass (not a seeded one)
        // must round-trip the same way.
        let mut mgr = Bdd::new();
        let pairs = [(0u32, 3u32), (1, 4), (2, 5)];
        let mut f = Ref::FALSE;
        for (a, b) in pairs {
            let va = mgr.var(a);
            let vb = mgr.var(b);
            let t = mgr.and(va, vb);
            f = mgr.or(f, t);
        }
        mgr.protect(f);
        mgr.reorder_now();
        let blob = write_bdd(&mgr, &[f]);
        let (back, rebuilt) = read_bdd(&blob).unwrap();
        assert_eq!(back.var_order(), mgr.var_order());
        assert_eq!(back.size(rebuilt[0]), mgr.size(f));
        for bits in 0u32..64 {
            let env: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mgr.eval(f, &env), back.eval(rebuilt[0], &env));
        }
    }

    #[test]
    fn version_skew_rejected_on_order_carrying_blob() {
        let (mgr, roots) = reordered_sample();
        let blob = write_bdd(&mgr, &roots).replace(".lpbdd 1", ".lpbdd 2");
        assert!(matches!(read_bdd(&blob), Err(StoreError::Version(_))));
    }
}
