//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! BDDs are the workhorse substrate for the logic-level techniques in the
//! DAC'95 survey: exact signal probabilities (power estimation), don't-care
//! sets (§III.A.1), observability conditions for guarded evaluation
//! (§III.C.4, \[44\]) and the universal quantification that derives
//! precomputation logic (§III.C.4, \[30\]).
//!
//! The manager is an arena: nodes are interned in a unique table and never
//! freed (experiments here are small enough that GC is unnecessary).
//!
//! # Example
//!
//! ```
//! use bdd::Bdd;
//!
//! let mut mgr = Bdd::new();
//! let a = mgr.var(0);
//! let b = mgr.var(1);
//! let f = mgr.and(a, b);
//! assert_eq!(mgr.eval(f, &[true, true]), true);
//! assert_eq!(mgr.eval(f, &[true, false]), false);
//! // P(a & b) with P(a)=0.5, P(b)=0.25:
//! let p = mgr.probability(f, &[0.5, 0.25]);
//! assert!((p - 0.125).abs() < 1e-12);
//! ```

mod manager;

pub use budget::{BudgetExceeded, Resource, ResourceBudget};
pub use manager::{Bdd, BddStats, OpCounts, Ref};
