//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! BDDs are the workhorse substrate for the logic-level techniques in the
//! DAC'95 survey: exact signal probabilities (power estimation), don't-care
//! sets (§III.A.1), observability conditions for guarded evaluation
//! (§III.C.4, \[44\]) and the universal quantification that derives
//! precomputation logic (§III.C.4, \[30\]).
//!
//! The manager is an arena with complement edges: a [`Ref`] carries a
//! negation bit, nodes are interned in an open-addressed unique table, and
//! ITE results land in a lossy direct-mapped cache. Nodes unreachable from
//! [`Bdd::protect`]ed roots can be reclaimed by a free-list mark-and-sweep
//! GC ([`Bdd::gc`]); managers with [`Bdd::set_auto_gc`] enabled collect
//! automatically under node-budget pressure, so budget errors report
//! *live* nodes. Short-lived managers can ignore all of this — GC is off
//! by default and nothing requires rooting then.
//!
//! # Example
//!
//! ```
//! use bdd::Bdd;
//!
//! let mut mgr = Bdd::new();
//! let a = mgr.var(0);
//! let b = mgr.var(1);
//! let f = mgr.and(a, b);
//! assert_eq!(mgr.eval(f, &[true, true]), true);
//! assert_eq!(mgr.eval(f, &[true, false]), false);
//! // P(a & b) with P(a)=0.5, P(b)=0.25:
//! let p = mgr.probability(f, &[0.5, 0.25]);
//! assert!((p - 0.125).abs() < 1e-12);
//! ```

mod manager;
pub mod store;

pub use budget::{BudgetExceeded, Resource, ResourceBudget};
pub use manager::{Bdd, BddStats, OpCounts, Ref, ReorderSchedule};
