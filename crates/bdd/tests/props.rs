//! Property-based tests for the BDD manager: random expression trees must
//! agree with direct Boolean evaluation, and algebraic laws must hold
//! structurally (canonicity makes them checkable with `==`).

use bdd::{Bdd, Ref};
use proptest::prelude::*;

const NVARS: usize = 6;

/// A small expression AST we can both evaluate directly and translate to a
/// BDD.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Const(bool),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, env: &[bool]) -> bool {
        match self {
            Expr::Var(i) => env[*i as usize],
            Expr::Const(b) => *b,
            Expr::Not(e) => !e.eval(env),
            Expr::And(a, b) => a.eval(env) && b.eval(env),
            Expr::Or(a, b) => a.eval(env) || b.eval(env),
            Expr::Xor(a, b) => a.eval(env) ^ b.eval(env),
        }
    }

    fn build(&self, mgr: &mut Bdd) -> Ref {
        match self {
            Expr::Var(i) => mgr.var(*i),
            Expr::Const(b) => mgr.constant(*b),
            Expr::Not(e) => {
                let f = e.build(mgr);
                mgr.not(f)
            }
            Expr::And(a, b) => {
                let (fa, fb) = (a.build(mgr), b.build(mgr));
                mgr.and(fa, fb)
            }
            Expr::Or(a, b) => {
                let (fa, fb) = (a.build(mgr), b.build(mgr));
                mgr.or(fa, fb)
            }
            Expr::Xor(a, b) => {
                let (fa, fb) = (a.build(mgr), b.build(mgr));
                mgr.xor(fa, fb)
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS as u32).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #[test]
    fn bdd_matches_direct_evaluation(expr in arb_expr()) {
        let mut mgr = Bdd::new();
        let f = expr.build(&mut mgr);
        for bits in 0u32..(1 << NVARS) {
            let env: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(mgr.eval(f, &env), expr.eval(&env));
        }
    }

    #[test]
    fn canonical_equality_iff_equivalent(a in arb_expr(), b in arb_expr()) {
        let mut mgr = Bdd::new();
        let fa = a.build(&mut mgr);
        let fb = b.build(&mut mgr);
        let equivalent = (0u32..(1 << NVARS)).all(|bits| {
            let env: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            a.eval(&env) == b.eval(&env)
        });
        prop_assert_eq!(fa == fb, equivalent);
    }

    #[test]
    fn de_morgan_structural(a in arb_expr(), b in arb_expr()) {
        let mut mgr = Bdd::new();
        let fa = a.build(&mut mgr);
        let fb = b.build(&mut mgr);
        let and = mgr.and(fa, fb);
        let lhs = mgr.not(and);
        let na = mgr.not(fa);
        let nb = mgr.not(fb);
        let rhs = mgr.or(na, nb);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn shannon_expansion(expr in arb_expr(), var in 0..NVARS as u32) {
        let mut mgr = Bdd::new();
        let f = expr.build(&mut mgr);
        let f0 = mgr.restrict(f, var, false);
        let f1 = mgr.restrict(f, var, true);
        let v = mgr.var(var);
        let rebuilt = mgr.ite(v, f1, f0);
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn quantifier_duality(expr in arb_expr(), var in 0..NVARS as u32) {
        // ∀x.f == !(∃x.!f)
        let mut mgr = Bdd::new();
        let f = expr.build(&mut mgr);
        let all = mgr.forall(f, var);
        let nf = mgr.not(f);
        let ex = mgr.exists(nf, var);
        let dual = mgr.not(ex);
        prop_assert_eq!(all, dual);
    }

    #[test]
    fn sat_count_matches_enumeration(expr in arb_expr()) {
        let mut mgr = Bdd::new();
        let f = expr.build(&mut mgr);
        let expected = (0u32..(1 << NVARS)).filter(|&bits| {
            let env: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            expr.eval(&env)
        }).count() as f64;
        let got = mgr.sat_count(f, NVARS as u32);
        prop_assert!((got - expected).abs() < 1e-9, "got {got}, want {expected}");
    }

    #[test]
    fn probability_uniform_is_density(expr in arb_expr()) {
        let mut mgr = Bdd::new();
        let f = expr.build(&mut mgr);
        let p = mgr.probability(f, &[0.5; NVARS]);
        let count = mgr.sat_count(f, NVARS as u32);
        prop_assert!((p - count / (1 << NVARS) as f64).abs() < 1e-9);
    }

    #[test]
    fn compose_is_substitution(expr in arb_expr(), g in arb_expr(), var in 0..NVARS as u32) {
        let mut mgr = Bdd::new();
        let f = expr.build(&mut mgr);
        let fg = g.build(&mut mgr);
        let composed = mgr.compose(f, var, fg);
        for bits in 0u32..(1 << NVARS) {
            let env: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            // f[var := g](env) == f(env with env[var] = g(env))
            let mut substituted = env.clone();
            substituted[var as usize] = g.eval(&env);
            prop_assert_eq!(mgr.eval(composed, &env), expr.eval(&substituted));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sifting_preserves_function_and_never_grows(expr in arb_expr()) {
        let mut mgr = Bdd::new();
        let f = expr.build(&mut mgr);
        let before = mgr.size(f);
        let (sifted, roots, position) = mgr.sift(&[f], NVARS);
        prop_assert!(sifted.size_many(&roots) <= before);
        for bits in 0u32..(1 << NVARS) {
            let env: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            let mut new_env = vec![false; NVARS];
            for (v, &pos) in position.iter().enumerate() {
                new_env[pos as usize] = env[v];
            }
            prop_assert_eq!(sifted.eval(roots[0], &new_env), expr.eval(&env));
        }
    }

    #[test]
    fn rebuild_identity_order_is_isomorphic(expr in arb_expr()) {
        let mut mgr = Bdd::new();
        let f = expr.build(&mut mgr);
        let identity: Vec<u32> = (0..NVARS as u32).collect();
        let (rebuilt, roots) = mgr.rebuild_with_order(&[f], &identity);
        prop_assert_eq!(rebuilt.size_many(&roots), mgr.size(f));
        for bits in 0u32..(1 << NVARS) {
            let env: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(rebuilt.eval(roots[0], &env), mgr.eval(f, &env));
        }
    }
}
