//! Render a [`Snapshot`] for humans and machines.
//!
//! Three formats, all pure string builders (callers decide where the
//! bytes go, so the library stays I/O-free):
//!
//! * [`tree`] — indented span tree plus counter/gauge tables, for
//!   `lpopt --report`.
//! * [`jsonl`] — one JSON object per line (`span` / `counter` / `gauge`
//!   records), for `lpopt --trace <file>`. Line-oriented so a consumer
//!   can validate or tail it without a full-document parser.
//! * [`metrics_json`] — a single aggregate document
//!   (schema `lpopt-metrics-v1`), for `lpopt --metrics-json <file>`.
//!
//! Durations are serialized as integer microseconds: coarse enough to be
//! stable JSON, fine enough for pass-level timing. All maps iterate in
//! sorted name order, so equal snapshots render byte-identically.

use std::fmt::Write as _;
use std::time::Duration;

use crate::metrics::{Snapshot, SpanRecord};

/// Schema tag written into [`metrics_json`] documents.
pub const METRICS_SCHEMA: &str = "lpopt-metrics-v1";

fn micros(d: Duration) -> u128 {
    d.as_micros()
}

/// Escape `s` as the body of a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` so the output is valid JSON (no `NaN`/`inf` tokens)
/// and round-trips typical gauge values.
pub fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{}", v)
    }
}

/// Human-readable report: span tree, then counters, then gauges.
pub fn tree(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans:\n");
        for span in &snap.spans {
            let depth = span.depth(&snap.spans);
            let dur = match span.duration {
                Some(d) => format!("{} us", micros(d)),
                None => "open".to_string(),
            };
            let _ = writeln!(out, "  {}{}  {}", "  ".repeat(depth), span.name, dur);
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name}  {value}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "  {name}  {}", format_f64(*value));
        }
    }
    out
}

fn span_line(index: usize, span: &SpanRecord) -> String {
    let parent = match span.parent {
        Some(p) => p.to_string(),
        None => "null".to_string(),
    };
    let duration = match span.duration {
        Some(d) => micros(d).to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"type\":\"span\",\"id\":{},\"name\":\"{}\",\"parent\":{},\"start_us\":{},\"duration_us\":{}}}",
        index,
        escape_json(&span.name),
        parent,
        micros(span.start),
        duration,
    )
}

/// JSONL trace: every span, counter and gauge as its own line.
///
/// Line schema (`type` discriminates):
/// * `span` — `id`, `name`, `parent` (id or null), `start_us`,
///   `duration_us` (null while open).
/// * `counter` — `name`, `value` (u64).
/// * `gauge` — `name`, `value` (f64 or null if non-finite).
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (index, span) in snap.spans.iter().enumerate() {
        out.push_str(&span_line(index, span));
        out.push('\n');
    }
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(name),
            value
        );
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            escape_json(name),
            format_f64(*value)
        );
    }
    out
}

/// Aggregate metrics document (schema [`METRICS_SCHEMA`]):
/// `{ "schema": ..., "counters": {..}, "gauges": {..}, "spans": [..] }`.
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{METRICS_SCHEMA}\",");

    out.push_str("  \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape_json(name), value);
    }
    if !snap.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape_json(name), format_f64(*value));
    }
    if !snap.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"spans\": [");
    for (index, span) in snap.spans.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}", span_line(index, span));
    }
    if !snap.spans.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::Obs;

    fn sample() -> Snapshot {
        let clock = ManualClock::new();
        let obs = Obs::with_clock(clock.clone());
        {
            let _outer = obs.span("run");
            clock.advance(Duration::from_micros(100));
            {
                let _inner = obs.span("tier.exact-bdd");
                clock.advance(Duration::from_micros(40));
            }
        }
        obs.add("bdd.cache_hits", 7);
        obs.add("bdd.cache_lookups", 9);
        obs.gauge_set("sim.par.shards", 4.0);
        obs.snapshot()
    }

    #[test]
    fn tree_renders_nesting_and_tables() {
        let text = tree(&sample());
        assert!(text.contains("run  140 us"));
        assert!(text.contains("    tier.exact-bdd  40 us"), "{text}");
        assert!(text.contains("bdd.cache_hits  7"));
        assert!(text.contains("sim.par.shards  4.0"));
    }

    #[test]
    fn jsonl_parses_line_by_line() {
        let trace = jsonl(&sample());
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 5, "{trace}");
        for line in &lines {
            let value = crate::json::parse(line).expect("valid JSON line");
            let ty = value.get("type").and_then(|v| v.as_str()).unwrap();
            assert!(matches!(ty, "span" | "counter" | "gauge"));
        }
        assert!(lines[1].contains("\"parent\":0"));
    }

    #[test]
    fn metrics_json_is_valid_and_tagged() {
        let doc = metrics_json(&sample());
        let value = crate::json::parse(&doc).expect("valid JSON");
        assert_eq!(
            value.get("schema").and_then(|v| v.as_str()),
            Some(METRICS_SCHEMA)
        );
        let counters = value.get("counters").unwrap();
        assert_eq!(
            counters.get("bdd.cache_hits").and_then(|v| v.as_u64()),
            Some(7)
        );
        let spans = value.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 2);
    }

    #[test]
    fn escaping_handles_controls_and_quotes() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_snapshot_renders_empty_collections() {
        let snap = Snapshot::default();
        assert_eq!(tree(&snap), "");
        assert_eq!(jsonl(&snap), "");
        let value = crate::json::parse(&metrics_json(&snap)).unwrap();
        assert!(value.get("spans").unwrap().as_array().unwrap().is_empty());
    }
}
