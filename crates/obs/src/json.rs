//! Minimal JSON parser for validating this crate's own output.
//!
//! The workspace has no serde; tests (and the golden suite) still need to
//! check that `--trace` lines and `metrics.json` are well-formed and carry
//! the right fields. This is a small recursive-descent parser covering
//! the JSON we emit — objects, arrays, strings with the common escapes,
//! numbers, booleans, null. It is a validator, not a general-purpose
//! deserializer: numbers keep both integer and float readings, and errors
//! are positions, not spans.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; integer readings are recovered via [`Value::as_u64`].
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is not preserved (sorted).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.trunc() == *n && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parse failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let end = start + 4;
                            if end > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our own
                            // output; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos = end - 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, null], "b": {"c": "x\ny"}, "ok": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert!(v.get("a").unwrap().as_array().unwrap()[2].is_null());
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn integer_reading_guards_fractions() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn unicode_escapes_resolve() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    }
}
