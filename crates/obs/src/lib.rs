//! Lightweight observability for the estimation stack.
//!
//! The survey's quantitative claims (switching power dominating total
//! power, glitches 10–40% of switching activity) are only credible if a
//! run can show *where* estimator time and activity went. This crate is
//! the substrate every other crate reports into:
//!
//! * **Spans** — hierarchical wall-clock timings read from an injectable
//!   [`clock::Clock`], so tests and golden files can pin every duration
//!   to zero with a [`clock::ManualClock`].
//! * **Counters** — named monotonic `u64` totals (atomic adds, flushed
//!   once per run by the hot loops, never per-event). Counter totals are
//!   defined to be **thread-count invariant**: the same work produces the
//!   same counts whether it ran on 1 shard or 16.
//! * **Gauges** — named `f64` last-value/max samples for quantities that
//!   legitimately depend on the environment (shard counts, utilization,
//!   peak table sizes). Golden tests normalize these away; counters they
//!   compare exactly.
//! * **Sinks** (feature `sink`, default on) — render a [`Snapshot`] as a
//!   human-readable tree, a JSONL trace, or an aggregate `metrics.json`.
//!
//! The whole crate follows one overhead rule, mirroring the budget crate's
//! amortization contract: a **disabled** handle ([`Obs::disabled`]) costs
//! one pointer-null check per call and allocates nothing, so instrumented
//! hot paths stay on the `bench_robust` <2% overhead budget; an **enabled**
//! handle is only ever touched at run boundaries (shard merge, tier
//! attempt, pass entry/exit), never inside per-event loops.
//!
//! ```
//! use obs::Obs;
//!
//! let obs = Obs::enabled();
//! {
//!     let _span = obs.span("estimate");
//!     obs.add("bdd.cache_hits", 3);
//!     obs.add("bdd.cache_lookups", 5);
//! }
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("bdd.cache_hits"), Some(3));
//! assert_eq!(snap.spans.len(), 1);
//! ```

pub mod clock;
mod metrics;

#[cfg(feature = "sink")]
pub mod json;
#[cfg(feature = "sink")]
pub mod sink;

pub use metrics::{Counter, Gauge, Obs, Snapshot, SpanGuard, SpanRecord};
