//! Injectable monotonic clocks.
//!
//! Spans read time through the [`Clock`] trait so that production code
//! gets a real monotonic clock while tests and golden files inject a
//! [`ManualClock`] and obtain bit-identical timings (usually all zero).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source measured from an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
}

/// The real monotonic clock; epoch is the moment of construction.
#[derive(Debug, Clone, Copy)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> SystemClock {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A clock that only moves when told to — the deterministic-test clock.
///
/// Clones share the same underlying time, so a test can hold one handle
/// and advance the copy it installed into an [`crate::Obs`].
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock pinned at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance the clock by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        let copy = c.clone();
        c.advance(Duration::from_millis(5));
        assert_eq!(copy.now(), Duration::from_millis(5), "clones share time");
    }
}
