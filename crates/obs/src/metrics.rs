//! The [`Obs`] handle: counters, gauges and hierarchical spans.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::clock::{Clock, SystemClock};

/// One timed region. Records are kept in creation order; `parent` indexes
/// into the same record vector, so a snapshot is a forest encoded flat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, dot-separated by convention (`tier.exact-bdd`).
    pub name: String,
    /// Index of the enclosing span in the record list, if any.
    pub parent: Option<usize>,
    /// Clock reading when the span opened.
    pub start: Duration,
    /// Elapsed time; `None` while the span is still open.
    pub duration: Option<Duration>,
}

impl SpanRecord {
    /// Nesting depth (root spans are 0). `records` must be the snapshot
    /// this record came from.
    pub fn depth(&self, records: &[SpanRecord]) -> usize {
        let mut depth = 0;
        let mut parent = self.parent;
        while let Some(p) = parent {
            depth += 1;
            parent = records[p].parent;
        }
        depth
    }
}

#[derive(Default)]
struct SpanLog {
    records: Vec<SpanRecord>,
    stack: Vec<usize>,
}

struct Inner {
    clock: Box<dyn Clock>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64::to_bits`; `set` overwrites, `max` keeps the
    /// largest sample.
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    spans: Mutex<SpanLog>,
}

/// A cheap, cloneable observability handle.
///
/// A disabled handle (the [`Default`]) makes every operation a no-op that
/// costs one null check; an enabled handle shares one collector between
/// all clones. Spans are intended for the driver thread; counters and
/// gauges may be flushed from worker threads (they are atomic).
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<Inner>>);

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "Obs(enabled)"
        } else {
            "Obs(disabled)"
        })
    }
}

impl Obs {
    /// A handle where every operation is a no-op.
    pub fn disabled() -> Obs {
        Obs(None)
    }

    /// An enabled handle reading the real monotonic clock.
    pub fn enabled() -> Obs {
        Obs::with_clock(SystemClock::new())
    }

    /// An enabled handle reading the given clock (tests inject a
    /// [`crate::clock::ManualClock`] here for zeroed, deterministic
    /// timings).
    pub fn with_clock(clock: impl Clock + 'static) -> Obs {
        Obs(Some(Arc::new(Inner {
            clock: Box::new(clock),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(SpanLog::default()),
        })))
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Current reading of the installed clock ([`Duration::ZERO`] when
    /// disabled).
    pub fn now(&self) -> Duration {
        match &self.0 {
            Some(inner) => inner.clock.now(),
            None => Duration::ZERO,
        }
    }

    fn slot(
        map: &Mutex<BTreeMap<String, Arc<AtomicU64>>>,
        name: &str,
        init: u64,
    ) -> Arc<AtomicU64> {
        let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(name) {
            Some(slot) => Arc::clone(slot),
            None => {
                let slot = Arc::new(AtomicU64::new(init));
                map.insert(name.to_string(), Arc::clone(&slot));
                slot
            }
        }
    }

    /// Resolve a counter handle once, outside any hot loop.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(
            self.0
                .as_ref()
                .map(|inner| Self::slot(&inner.counters, name, 0)),
        )
    }

    /// Add `n` to the named counter (resolve-and-add convenience for
    /// run-boundary flushes).
    pub fn add(&self, name: &str, n: u64) {
        if self.0.is_some() {
            self.counter(name).add(n);
        }
    }

    /// Resolve a gauge handle once, outside any hot loop.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(
            self.0
                .as_ref()
                .map(|inner| Self::slot(&inner.gauges, name, 0f64.to_bits())),
        )
    }

    /// Set the named gauge to `v` (last write wins).
    pub fn gauge_set(&self, name: &str, v: f64) {
        if self.0.is_some() {
            self.gauge(name).set(v);
        }
    }

    /// Raise the named gauge to `v` if `v` is larger (peak tracking).
    pub fn gauge_max(&self, name: &str, v: f64) {
        if self.0.is_some() {
            self.gauge(name).max(v);
        }
    }

    /// Open a span; it closes (and records its duration) when the guard
    /// drops. Spans nest by guard lifetime on the calling thread.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        let Some(inner) = &self.0 else {
            return SpanGuard {
                obs: Obs(None),
                index: 0,
            };
        };
        let start = inner.clock.now();
        let mut log = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
        let parent = log.stack.last().copied();
        let index = log.records.len();
        log.records.push(SpanRecord {
            name: name.into(),
            parent,
            start,
            duration: None,
        });
        log.stack.push(index);
        SpanGuard {
            obs: self.clone(),
            index,
        }
    }

    fn close_span(&self, index: usize) {
        let Some(inner) = &self.0 else { return };
        let now = inner.clock.now();
        let mut log = inner.spans.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(record) = log.records.get_mut(index) {
            if record.duration.is_none() {
                record.duration = Some(now.saturating_sub(record.start));
            }
        }
        if let Some(pos) = log.stack.iter().rposition(|&i| i == index) {
            log.stack.remove(pos);
        }
    }

    /// A consistent copy of everything recorded so far. Counters and
    /// gauges come out sorted by name; spans in creation order.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.0 else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, slot)| (name.clone(), slot.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, slot)| (name.clone(), f64::from_bits(slot.load(Ordering::Relaxed))))
            .collect();
        let spans = inner
            .spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            .clone();
        Snapshot {
            counters,
            gauges,
            spans,
        }
    }
}

/// Pre-resolved counter; adding is one atomic op (no-op when disabled).
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if let Some(slot) = &self.0 {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.load(Ordering::Relaxed))
    }
}

/// Pre-resolved gauge; stores an `f64` (no-op when disabled).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Overwrite the gauge value.
    pub fn set(&self, v: f64) {
        if let Some(slot) = &self.0 {
            slot.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if larger.
    pub fn max(&self, v: f64) {
        if let Some(slot) = &self.0 {
            let mut current = slot.load(Ordering::Relaxed);
            while v > f64::from_bits(current) {
                match slot.compare_exchange_weak(
                    current,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |s| f64::from_bits(s.load(Ordering::Relaxed)))
    }
}

/// Closes its span when dropped.
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    obs: Obs,
    index: usize,
}

impl SpanGuard {
    /// Close the span now (equivalent to dropping the guard).
    pub fn close(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.obs.close_span(self.index);
    }
}

/// A point-in-time copy of all recorded metrics.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, total)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Spans in creation order (see [`SpanRecord::parent`]).
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Look up a counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|&(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.add("x", 5);
        obs.gauge_set("g", 1.0);
        let _span = obs.span("nothing");
        let snap = obs.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(obs.now(), Duration::ZERO);
    }

    #[test]
    fn counters_accumulate_and_sort() {
        let obs = Obs::enabled();
        obs.add("b.two", 2);
        obs.add("a.one", 1);
        obs.add("b.two", 3);
        let c = obs.counter("a.one");
        c.add(10);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("a.one"), Some(11));
        assert_eq!(snap.counter("b.two"), Some(5));
        assert_eq!(snap.counters[0].0, "a.one", "sorted by name");
        assert_eq!(snap.counter_sum("b."), 5);
    }

    #[test]
    fn gauges_set_and_max() {
        let obs = Obs::enabled();
        obs.gauge_set("peak", 3.5);
        obs.gauge_max("peak", 2.0);
        assert_eq!(obs.snapshot().gauge("peak"), Some(3.5));
        obs.gauge_max("peak", 7.25);
        assert_eq!(obs.snapshot().gauge("peak"), Some(7.25));
    }

    #[test]
    fn spans_nest_by_guard_lifetime() {
        let clock = ManualClock::new();
        let obs = Obs::with_clock(clock.clone());
        {
            let _outer = obs.span("outer");
            clock.advance(Duration::from_millis(10));
            {
                let _inner = obs.span("inner");
                clock.advance(Duration::from_millis(5));
            }
            clock.advance(Duration::from_millis(1));
        }
        let snap = obs.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = &snap.spans[0];
        let inner = &snap.spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.duration, Some(Duration::from_millis(16)));
        assert_eq!(inner.parent, Some(0));
        assert_eq!(inner.duration, Some(Duration::from_millis(5)));
        assert_eq!(inner.depth(&snap.spans), 1);
    }

    #[test]
    fn manual_clock_pins_durations_to_zero() {
        let obs = Obs::with_clock(ManualClock::new());
        {
            let _span = obs.span("frozen");
        }
        assert_eq!(obs.snapshot().spans[0].duration, Some(Duration::ZERO));
    }

    #[test]
    fn counters_are_thread_safe() {
        let obs = Obs::enabled();
        let counter = obs.counter("parallel");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.add(1);
                    }
                });
            }
        });
        assert_eq!(obs.snapshot().counter("parallel"), Some(4000));
    }
}
