//! Criterion benchmarks of the framework's algorithmic kernels: the
//! substrate operations every experiment leans on. Sample counts are kept
//! small so `cargo bench --workspace` finishes quickly; the exp_* binaries
//! are the scientific harness, these benches track engineering regressions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_bdd(c: &mut Criterion) {
    use power::exact::circuit_bdds;
    let (adder, _) = netlist::gen::ripple_adder(12);
    c.bench_function("bdd/build_adder12", |b| {
        b.iter(|| black_box(circuit_bdds(&adder)).mgr.num_vars())
    });
    let bdds = circuit_bdds(&adder);
    let probs = vec![0.5; 24];
    c.bench_function("bdd/probabilities_adder12", |b| {
        b.iter(|| black_box(bdds.probabilities(&probs)))
    });
}

fn bench_sim(c: &mut Criterion) {
    use sim::comb::CombSim;
    use sim::event::{DelayModel, EventSim};
    use sim::stimulus::Stimulus;
    let (mult, _) = netlist::gen::array_multiplier(8);
    let patterns = Stimulus::uniform(16).patterns(256, 3);
    let comb = CombSim::new(&mult);
    c.bench_function("sim/bit_parallel_mult8_256cyc", |b| {
        b.iter(|| black_box(comb.activity(&patterns)).cycles)
    });
    let event = EventSim::new(&mult, &DelayModel::Unit);
    let short = Stimulus::uniform(16).patterns(64, 3);
    c.bench_function("sim/event_driven_mult8_64cyc", |b| {
        b.iter(|| black_box(event.activity(&short)).total.cycles)
    });
}

fn bench_par(c: &mut Criterion) {
    // Serial vs sharded-parallel simulation on the balanced generators
    // (Wallace tree, Kogge-Stone): the scaling workloads of BENCH_sim.json,
    // tracked here for regressions. `0` jobs = all host cores.
    use sim::comb::CombSim;
    use sim::event::{DelayModel, EventSim};
    use sim::stimulus::Stimulus;
    let (wallace, _) = netlist::gen::wallace_multiplier(8);
    let patterns = Stimulus::uniform(16).patterns(2048, 5);
    let comb = CombSim::new(&wallace);
    c.bench_function("par/comb_wallace8_serial", |b| {
        b.iter(|| black_box(comb.activity_jobs(&patterns, 1)).cycles)
    });
    c.bench_function("par/comb_wallace8_all_cores", |b| {
        b.iter(|| black_box(comb.activity_jobs(&patterns, 0)).cycles)
    });
    let (ks, _) = netlist::gen::kogge_stone_adder(16);
    let event = EventSim::new(&ks, &DelayModel::Unit);
    let short = Stimulus::uniform(32).patterns(256, 5);
    c.bench_function("par/event_ks16_serial", |b| {
        b.iter(|| black_box(event.activity_jobs(&short, 1)).total.cycles)
    });
    c.bench_function("par/event_ks16_all_cores", |b| {
        b.iter(|| black_box(event.activity_jobs(&short, 0)).total.cycles)
    });
}

fn bench_logicopt(c: &mut Criterion) {
    use logicopt::balance::balance_paths;
    use logicopt::mapping::{map, standard_library, MapObjective};
    let (mult, _) = netlist::gen::array_multiplier(6);
    c.bench_function("logicopt/balance_mult6", |b| {
        b.iter(|| black_box(balance_paths(&mult)).1.buffers_added)
    });
    let (adder, _) = netlist::gen::ripple_adder(8);
    let library = standard_library();
    let probs = vec![0.5; 16];
    c.bench_function("logicopt/map_power_adder8", |b| {
        b.iter(|| black_box(map(&adder, &library, MapObjective::Power, &probs)).cover.len())
    });
}

fn bench_seqopt(c: &mut Criterion) {
    use seqopt::encoding::encode_low_power;
    use seqopt::retime::correlator;
    use seqopt::stg::Stg;
    let stg = Stg::random(12, 2, 2, 7);
    let probs = vec![0.25; 4];
    c.bench_function("seqopt/encode_low_power_12_states", |b| {
        b.iter(|| black_box(encode_low_power(&stg, &probs)).len())
    });
    let g = correlator();
    c.bench_function("seqopt/min_period_retiming_correlator", |b| {
        b.iter(|| black_box(g.min_period_retiming()).0)
    });
}

fn bench_behav_soft(c: &mut Criterion) {
    use behav::dfg::fir;
    use behav::sched::{list_schedule, Resources};
    use soft::energy::CpuModel;
    use soft::schedule::{schedule_low_power, synthetic_workload};
    let g = fir(16, &[1; 16]);
    c.bench_function("behav/list_schedule_fir16", |b| {
        b.iter(|| {
            black_box(list_schedule(
                &g,
                Resources {
                    adders: 2,
                    multipliers: 2,
                },
            ))
            .length
        })
    });
    let workload = synthetic_workload(64);
    let dsp = CpuModel::dsp_core();
    c.bench_function("soft/schedule_512_instrs", |b| {
        b.iter_batched(
            || workload.clone(),
            |w| black_box(schedule_low_power(&w, &dsp)).0.len(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_bdd, bench_sim, bench_par, bench_logicopt, bench_seqopt, bench_behav_soft
}
criterion_main!(kernels);
