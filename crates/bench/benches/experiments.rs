//! Criterion wrappers around the exhibit regenerators: one bench per
//! table/figure so `cargo bench` exercises the full harness (time to
//! regenerate each exhibit). The printed rows themselves come from the
//! `exp_*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100))
}

fn bench_exhibits(c: &mut Criterion) {
    // The heavier exhibits (BDD-based E7, sweep-based E4/E6) are run once
    // per iteration like the rest; criterion's small sample budget keeps
    // total time bounded.
    for (id, _title, run) in bench::all_experiments() {
        c.bench_function(&format!("exhibit/{id}"), |b| {
            b.iter(|| black_box(run()).len())
        });
    }
}

criterion_group! {
    name = experiments;
    config = config();
    targets = bench_exhibits
}
criterion_main!(experiments);
