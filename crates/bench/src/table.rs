//! Tiny fixed-width table formatter for experiment reports.

/// A text table builder with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are any `Display`-ables pre-formatted).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "column count");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("  ");
            for i in 0..cols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str("  ");
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Shorthand for formatting a float cell.
pub fn f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Shorthand for a percentage cell.
pub fn pct(value: f64) -> String {
    format!("{:.1}%", 100.0 * value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), f(1.5, 2)]);
        t.row(&["long-name".into(), pct(0.25)]);
        let s = t.render();
        assert!(s.contains("long-name"));
        assert!(s.contains("25.0%"));
        assert!(s.contains("1.50"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
