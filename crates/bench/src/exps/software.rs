//! E17 and E18: software-level experiments.

use crate::table::{f, pct, Table};
use netlist::Rng64;
use soft::codegen::{compile_memory_stack, compile_registers, Expr};
use soft::energy::CpuModel;
use soft::isa::OpClass;
use soft::schedule::{compact_pairs, schedule_low_power, synthetic_workload};

fn random_expr(depth: usize, rng: &mut Rng64) -> Expr {
    if depth == 0 || rng.chance(0.25) {
        if rng.flip() {
            Expr::Var(rng.range(0, 16) as u16)
        } else {
            Expr::Const(rng.range(0, 64) as i64)
        }
    } else {
        let x = Box::new(random_expr(depth - 1, rng));
        let y = Box::new(random_expr(depth - 1, rng));
        match rng.range(0, 3) {
            0 => Expr::Add(x, y),
            1 => Expr::Sub(x, y),
            _ => Expr::Mul(x, y),
        }
    }
}

/// E17 — instruction-level energy: codegen and register allocation.
///
/// Paper claims (§V, \[45\]\[46\]): register operands are much cheaper than
/// memory operands; "faster code almost always implies lower energy code".
pub fn sw_energy() -> String {
    let mut rng = Rng64::new(41);
    let cpu = CpuModel::big_cpu();
    let mut t = Table::new(&[
        "expression",
        "mem-stack cycles",
        "reg cycles",
        "mem-stack nJ",
        "reg nJ",
        "energy saving",
    ]);
    let mut faster_cheaper = 0;
    let mut total = 0;
    for i in 0..8 {
        let expr = random_expr(4, &mut rng);
        let mem_code = compile_memory_stack(&expr, 64);
        let reg_code = compile_registers(&expr, 64);
        let em = cpu.program_energy(&mem_code);
        let er = cpu.program_energy(&reg_code);
        if mem_code.len() != reg_code.len() {
            total += 1;
            if (reg_code.len() < mem_code.len()) == (er < em) {
                faster_cheaper += 1;
            }
        }
        t.row(&[
            format!("expr-{i} ({} ops)", expr.ops()),
            mem_code.len().to_string(),
            reg_code.len().to_string(),
            f(em, 1),
            f(er, 1),
            pct(1.0 - er / em),
        ]);
    }
    // Algorithm choice ([49]): naive vs Horner polynomial evaluation.
    use soft::codegen::{polynomial_horner, polynomial_naive};
    let mut t2 = Table::new(&[
        "degree",
        "naive cycles",
        "Horner cycles",
        "naive nJ",
        "Horner nJ",
        "energy ratio",
    ]);
    for degree in [2usize, 4, 6, 8] {
        let naive = compile_registers(&polynomial_naive(degree, 0, 8), 64);
        let horner = compile_registers(&polynomial_horner(degree, 0, 8), 64);
        let en = cpu.program_energy(&naive);
        let eh = cpu.program_energy(&horner);
        t2.row(&[
            degree.to_string(),
            naive.len().to_string(),
            horner.len().to_string(),
            f(en, 1),
            f(eh, 1),
            format!("{:.2}x", en / eh),
        ]);
    }
    // Loop vs unrolled MAC kernel (dynamic streams; branches cost cycles
    // and energy every trip).
    use soft::programs::{dynamic_cycles, dynamic_energy, mac_loop, mac_unrolled};
    let dsp = CpuModel::dsp_core();
    let mut t3 = Table::new(&[
        "iterations",
        "loop cycles",
        "unrolled cycles",
        "loop nJ",
        "unrolled nJ",
        "code size ratio",
    ]);
    for n in [8i64, 32, 128] {
        let looped = mac_loop(n, 0);
        let unrolled = mac_unrolled(n, 0);
        t3.row(&[
            n.to_string(),
            dynamic_cycles(&looped).to_string(),
            dynamic_cycles(&unrolled).to_string(),
            f(dynamic_energy(&looped, &dsp), 1),
            f(dynamic_energy(&unrolled, &dsp), 1),
            format!("{:.1}x", unrolled.len() as f64 / looped.len() as f64),
        ]);
    }
    format!(
        "E17  Instruction-level energy: memory-stack vs register-allocated code\n\
         paper: register operands are much cheaper than memory operands;\n\
         faster code almost always implies lower energy code\n\n{}\n\
         'faster is cheaper' held on {faster_cheaper}/{total} differing pairs\n\n\
         algorithm choice ([49]): naive vs Horner polynomial evaluation\n\n{}\n\
         loop unrolling (DSP): control overhead vs code size\n\n{}",
        t.render(),
        t2.render(),
        t3.render()
    )
}

/// E18 — instruction scheduling and DSP compaction.
///
/// Paper claims (§V, \[40\]\[23\]\[46\]): reordering to reduce control-path
/// switching "may not be an important issue for large general purpose
/// CPUs", but "does have an impact in the case of a smaller DSP
/// processor"; pairing/compaction helps the DSP further.
pub fn sw_scheduling() -> String {
    let workload = synthetic_workload(128);
    let mut t = Table::new(&[
        "core",
        "overhead share (Mul<->Mem)",
        "baseline nJ",
        "scheduled nJ",
        "scheduling gain",
    ]);
    let mut gains = Vec::new();
    for cpu in [CpuModel::big_cpu(), CpuModel::dsp_core()] {
        let before = cpu.program_energy(&workload);
        let (scheduled, _) = schedule_low_power(&workload, &cpu);
        let after = cpu.program_energy(&scheduled);
        let gain = 1.0 - after / before;
        gains.push(gain);
        t.row(&[
            cpu.name.to_string(),
            pct(cpu.overhead_fraction(OpClass::Mul, OpClass::Mem)),
            f(before, 1),
            f(after, 1),
            pct(gain),
        ]);
    }
    // DSP pairing: compaction exploits adjacent ALU/Mem sites in program
    // order (the overhead-driven scheduler groups classes, destroying pair
    // sites, so the compiler applies compaction first and then schedules
    // the compacted stream).
    let dsp = CpuModel::dsp_core();
    let compacted = compact_pairs(&workload);
    let (pair_sched, _) = schedule_low_power(&compacted, &dsp);
    let e_base = dsp.program_energy(&workload);
    let e_pair = dsp.program_energy(&compacted);
    let e_pair_sched = dsp.program_energy(&pair_sched);
    format!(
        "E18  Low-power instruction scheduling: big CPU vs DSP\n\
         paper: reordering matters on the small DSP, is marginal on the big CPU;\n\
         pairing/compaction helps the DSP further ([23])\n\n{}\n\
         DSP pairing: {} -> {} instructions, {:.1} -> {:.1} nJ ({}); then\n\
         scheduling the paired stream: {:.1} nJ ({} total vs baseline)\n\
         big-CPU scheduling gain {} vs DSP {}\n",
        t.render(),
        workload.len(),
        compacted.len(),
        e_base,
        e_pair,
        pct(1.0 - e_pair / e_base),
        e_pair_sched,
        pct(1.0 - e_pair_sched / e_base),
        pct(gains[0]),
        pct(gains[1]),
    )
}
