//! E3, E4, E7, E8, E9: combinational logic-level experiments.

use crate::table::{f, pct, Table};
use logicopt::balance::balance_paths_with_threshold;
use logicopt::dontcare::{optimize_dontcares, Mode};
use logicopt::factor::{CostFn, Cube, Sop, SopNetwork};
use logicopt::mapping::{map, standard_library, MapObjective};
use lowpower::par;
use netlist::gen;
use netlist::Rng64;
use sim::event::{DelayModel, EventSim};
use sim::stimulus::Stimulus;

/// E3 — fraction of transitions that are spurious.
///
/// Paper claim (§III.A.2, \[16\]): "Spurious transitions account for between
/// 10% and 40% of the switching activity power in typical combinational
/// logic circuits" (array multipliers are the known extreme case, \[25\]).
pub fn glitch_fraction() -> String {
    let circuits: Vec<(netlist::Netlist, &str)> = vec![
        (gen::parity_tree(16), "balanced tree (best case)"),
        (gen::ripple_adder(8).0, "typical"),
        (gen::carry_select_adder(8, 2).0, "typical"),
        (gen::comparator_gt(8).0, "typical"),
        (gen::alu4(6), "typical"),
        (
            gen::random_dag(&gen::RandomDagConfig::default(), 7),
            "deep reconvergent (above range)",
        ),
        (gen::array_multiplier(6).0, "extreme (motivates [25])"),
    ];
    let mut t = Table::new(&["circuit", "class", "glitch fraction"]);
    let mut typical = Vec::new();
    // Each circuit's timing run is independent: fan them out across cores.
    let jobs = par::jobs_from_env();
    let fractions = par::par_map(&circuits, jobs, |_, (nl, _)| {
        let patterns = Stimulus::uniform(nl.num_inputs()).patterns(400, 11);
        EventSim::new(nl, &DelayModel::Unit).activity(&patterns).glitch_fraction()
    });
    for ((nl, class), fraction) in circuits.iter().zip(&fractions) {
        if *class == "typical" {
            typical.push(*fraction);
        }
        t.row(&[nl.name().to_string(), class.to_string(), pct(*fraction)]);
    }
    let lo = typical.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = typical.iter().cloned().fold(0.0f64, f64::max);
    // Architecture ablation: the same function implemented with balanced
    // structure glitches far less — the structural root cause the survey's
    // path-balancing section addresses.
    let mut t2 = Table::new(&["function", "structure", "depth", "glitch fraction"]);
    let pairs: Vec<(&str, netlist::Netlist)> = vec![
        ("8-bit add", gen::ripple_adder(8).0),
        ("8-bit add", gen::kogge_stone_adder(8).0),
        ("6x6 multiply", gen::array_multiplier(6).0),
        ("6x6 multiply", gen::wallace_multiplier(6).0),
    ];
    for (func, nl) in &pairs {
        let patterns = Stimulus::uniform(nl.num_inputs()).patterns(400, 11);
        let timing = EventSim::new(nl, &DelayModel::Unit).activity(&patterns);
        t2.row(&[
            func.to_string(),
            nl.name().to_string(),
            nl.depth().to_string(),
            pct(timing.glitch_fraction()),
        ]);
    }
    format!(
        "E3  Spurious-transition fraction under unit-delay timing simulation\n\
         paper: 10-40% of switching activity in typical combinational circuits\n\n{}\n\
         measured range over 'typical' circuits: {} .. {}\n\n\
         same function, different structure (balanced trees glitch less):\n\n{}",
        t.render(),
        pct(lo),
        pct(hi),
        t2.render()
    )
}

/// E4 — path balancing: glitch elimination vs buffer overhead.
///
/// Paper claims (§III.A.2, \[25\]): balancing delays eliminates spurious
/// transitions without hurting critical delay, but "the addition of
/// buffers increases capacitance which may offset the reduction".
pub fn path_balance() -> String {
    let (nl, _) = gen::array_multiplier(6);
    let patterns = Stimulus::uniform(12).patterns(300, 13);
    let mut t = Table::new(&[
        "skew threshold",
        "buffers",
        "glitch fraction",
        "switched cap (fF/cycle)",
        "depth",
    ]);
    let mut best: Option<(usize, f64)> = None;
    // The sweep points are independent balance+simulate runs; fan them out.
    let thresholds = [usize::MAX / 2, 8, 4, 2, 1, 0];
    let sweep = par::par_map(&thresholds, par::jobs_from_env(), |_, &threshold| {
        let (balanced, report) = balance_paths_with_threshold(&nl, threshold);
        let timing = EventSim::new(&balanced, &DelayModel::Unit).activity(&patterns);
        let cap = timing.total.switched_capacitance(&balanced);
        (report.buffers_added, timing.glitch_fraction(), cap, balanced.depth())
    });
    for (&threshold, &(buffers, glitch, cap, depth)) in thresholds.iter().zip(&sweep) {
        let label = if threshold > 1000 {
            "none".to_string()
        } else {
            threshold.to_string()
        };
        if best.map(|(_, c)| cap < c).unwrap_or(true) {
            best = Some((threshold, cap));
        }
        t.row(&[
            label,
            buffers.to_string(),
            pct(glitch),
            f(cap, 0),
            depth.to_string(),
        ]);
    }
    let (best_threshold, _) = best.expect("nonempty sweep");
    format!(
        "E4  Path balancing on a 6x6 array multiplier\n\
         paper: buffers kill glitches but add capacitance; insert a *minimal* number\n\n{}\n\
         lowest switched capacitance at threshold {}; glitch *transitions* fall\n\
         monotonically with the threshold while buffer capacitance rises — the\n\
         survey's \"may offset the reduction\" caveat, quantified\n",
        t.render(),
        if best_threshold > 1000 { "none".to_string() } else { best_threshold.to_string() }
    )
}

/// E7 — don't-care optimization for activity.
///
/// Paper claims (§III.A.1): \[38\] re-biases node probabilities inside the
/// don't-care set; \[19\] improves it by accounting for the transitive
/// fanout.
pub fn dontcare() -> String {
    let mut t = Table::new(&[
        "circuit",
        "mode",
        "nodes rewritten",
        "cap before",
        "cap after",
        "saving",
    ]);
    let mut rng = Rng64::new(3);
    for seed in 0..4u64 {
        let config = gen::RandomDagConfig {
            inputs: 7,
            gates: 40,
            outputs: 3,
            max_fanin: 3,
            window: 10,
        };
        let nl = gen::random_dag(&config, 100 + seed * 17 + rng.next_below(5));
        let probs = vec![0.5; 7];
        for (mode, label) in [(Mode::NodeLocal, "node-local [38]"), (Mode::FanoutAware, "fanout-aware [19]")] {
            let (_, report) = optimize_dontcares(&nl, &probs, mode, 5);
            t.row(&[
                nl.name().to_string(),
                label.to_string(),
                report.nodes_changed.to_string(),
                f(report.cap_before, 1),
                f(report.cap_after, 1),
                pct(1.0 - report.cap_after / report.cap_before),
            ]);
        }
    }
    format!(
        "E7  Don't-care-based node optimization (exact ODCs via BDDs)\n\
         paper: probabilities can be moved inside the DC set to cut activity;\n\
         the fanout-aware variant [19] never worsens the network\n\n{}",
        t.render()
    )
}

/// E8 — kernel extraction with area vs activity cost.
///
/// Paper claim (§III.A.3, \[35\]): "When targeting power dissipation, the
/// cost function is not literal count but switching activity."
pub fn factoring() -> String {
    // A network where the *quiet* kernel (skewed signals, vars 5..9) saves
    // more literals, while the *hot* kernel (uniform signals, vars 0..5)
    // saves more switching — so the two cost functions genuinely disagree
    // about what to extract first.
    let cube = |vars: &[usize]| -> Cube {
        vars.iter().fold(Cube::ONE, |acc, &v| {
            acc.and(Cube::literal(v, true)).expect("no clash")
        })
    };
    let build = || {
        // f1 = (a+b)(c+d) over hot vars 0..4.
        let f1 = Sop::new(vec![cube(&[0, 2]), cube(&[0, 3]), cube(&[1, 2]), cube(&[1, 3])]);
        // f2 = (e+f)(g+h+i) over quiet vars 5..10: bigger kernel, bigger
        // literal saving.
        let f2 = Sop::new(vec![
            cube(&[5, 7]),
            cube(&[5, 8]),
            cube(&[5, 9]),
            cube(&[6, 7]),
            cube(&[6, 8]),
            cube(&[6, 9]),
        ]);
        let probs = vec![0.5, 0.5, 0.5, 0.5, 0.5, 0.95, 0.95, 0.95, 0.95, 0.95];
        SopNetwork::new(10, probs, vec![f1, f2])
    };
    let kernel_name = |k: &Sop| -> String {
        // The hot kernel lives on vars 0..5, the quiet one on 5..10.
        let on_hot = k
            .cubes
            .iter()
            .all(|c| (c.pos | c.neg) & 0b11111 == (c.pos | c.neg));
        if on_hot {
            "hot (p=0.5 signals)".into()
        } else {
            "quiet (p=0.95 signals)".into()
        }
    };
    let mut t = Table::new(&[
        "cost function",
        "first kernel extracted",
        "gain (own metric)",
        "final literals",
        "final activity cost",
    ]);
    for (cost, label) in [
        (CostFn::Literals, "literal count [5]"),
        (CostFn::Activity, "switching activity [35]"),
    ] {
        let mut network = build();
        let first = network
            .extract_best_kernel(&cost)
            .expect("a kernel is profitable");
        network.extract_kernels(&cost);
        t.row(&[
            label.to_string(),
            kernel_name(&first.0),
            f(first.1, 3),
            network.literal_count().to_string(),
            f(network.cost(&CostFn::Activity), 3),
        ]);
    }
    let flat = build();
    format!(
        "E8  Kernel extraction: area-driven vs power-driven cost\n\
         paper: replace literal count with switching activity in the extractor —\n\
         the area extractor goes for the biggest literal saving (the quiet\n\
         kernel) while the power extractor goes for the hot logic first\n\n\
         flat network: {} literals, activity cost {:.3}\n\n{}",
        flat.literal_count(),
        flat.cost(&CostFn::Activity),
        t.render()
    )
}

/// E9 — technology mapping objectives.
///
/// Paper claims (§III.B, \[20\]\[43\]\[48\]): tree covering extends to a power
/// cost; each objective optimizes its own metric.
pub fn techmap() -> String {
    let library = standard_library();
    let mut t = Table::new(&["circuit", "objective", "area", "delay", "power (fF/cycle)"]);
    for (nl, probs) in [
        (gen::ripple_adder(6).0, vec![0.5; 12]),
        (gen::comparator_gt(6).0, vec![0.5; 12]),
        (gen::alu4(4), vec![0.5; 10]),
    ] {
        for objective in [MapObjective::Area, MapObjective::Delay, MapObjective::Power] {
            let result = map(&nl, &library, objective, &probs);
            t.row(&[
                nl.name().to_string(),
                format!("{objective:?}"),
                f(result.area, 1),
                f(result.delay, 1),
                f(result.power, 1),
            ]);
        }
    }
    format!(
        "E9  Tree-covering technology mapping (DAGON formulation)\n\
         paper: the graph-covering formulation extends from area/delay to power;\n\
         complex cells hide high-activity internal nets\n\n{}",
        t.render()
    )
}
