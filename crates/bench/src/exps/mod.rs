//! The experiment implementations, grouped by abstraction level.

pub mod ablations;
pub mod arch;
pub mod circuit_level;
pub mod foundation;
pub mod logic_comb;
pub mod logic_seq;
pub mod software;
