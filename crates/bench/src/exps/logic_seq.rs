//! E2, E10, E11, E12, E13, E19: sequential logic-level experiments.

use crate::table::{f, pct, Table};
use netlist::gen::comparator_gt;
use netlist::Rng64;
use seqopt::buscode::{
    count_transitions, random_stream, BusInvert, GrayCode, LimitedWeightCode, Unencoded,
};
use seqopt::clockgate::{gate_idle_registers, ClockPowerModel};
use seqopt::encoding::{encode_low_power, encode_one_hot, encode_random, encode_sequential, min_bits};
use seqopt::precompute::precompute;
use seqopt::residue::{binary_accumulate_transitions, OneHotResidue};
use seqopt::retime::correlator;
use seqopt::stg::{weighted_switching, Stg};
use sim::seq::SeqSim;
use sim::stimulus::Stimulus;

/// E2 — the Fig. 1 precomputation comparator.
///
/// Paper claims (§III.C.4, Fig. 1, \[1\]): `LE = C⟨n−1⟩ XNOR D⟨n−1⟩`; the
/// reduction is "a function of the probability that the XNOR gate
/// evaluates to a 0"; savings grow with the width n.
pub fn precomputation() -> String {
    let mut t = Table::new(&[
        "n",
        "P(disable)",
        "baseline cap (fF/cyc)",
        "precomputed cap",
        "saving",
    ]);
    for n in [4usize, 6, 8, 10] {
        let (comb, _) = comparator_gt(n);
        let probs = vec![0.5; 2 * n];
        let pre = precompute(&comb, &[n - 1, 2 * n - 1], &probs).expect("comparator precomputes");
        let patterns = Stimulus::uniform(2 * n).patterns(2000, 17);
        let base = SeqSim::new(&pre.baseline)
            .activity(&patterns)
            .profile
            .switched_capacitance(&pre.baseline);
        let opt = SeqSim::new(&pre.netlist)
            .activity(&patterns)
            .profile
            .switched_capacitance(&pre.netlist);
        t.row(&[
            n.to_string(),
            f(pre.disable_probability, 3),
            f(base, 0),
            f(opt, 0),
            pct(1.0 - opt / base),
        ]);
    }
    // Sweep the MSB statistics at fixed n: the saving follows P(disable).
    let n = 6;
    let mut t2 = Table::new(&["P(C_msb=1)", "P(D_msb=1)", "P(disable)", "saving"]);
    for (pc, pd) in [(0.5, 0.5), (0.7, 0.3), (0.9, 0.1), (0.98, 0.02)] {
        let (comb, _) = comparator_gt(n);
        let mut probs = vec![0.5; 2 * n];
        probs[n - 1] = pc;
        probs[2 * n - 1] = pd;
        let pre = precompute(&comb, &[n - 1, 2 * n - 1], &probs).expect("precomputes");
        let patterns = Stimulus::biased(probs).patterns(2000, 23);
        let base = SeqSim::new(&pre.baseline)
            .activity(&patterns)
            .profile
            .switched_capacitance(&pre.baseline);
        let opt = SeqSim::new(&pre.netlist)
            .activity(&patterns)
            .profile
            .switched_capacitance(&pre.netlist);
        t2.row(&[
            f(pc, 2),
            f(pd, 2),
            f(pre.disable_probability, 3),
            pct(1.0 - opt / base),
        ]);
    }
    format!(
        "E2  Precomputation comparator (Fig. 1): LE = C<n-1> XNOR D<n-1>\n\
         paper: registers for the remaining bits shut off when the MSBs differ;\n\
         reduction tracks P(XNOR = 0)\n\n{}\n\
         MSB-statistics sweep at n = {n}:\n\n{}",
        t.render(),
        t2.render()
    )
}

/// E10 — state assignment for low power.
///
/// Paper claim (§III.C.1, \[35\]\[47\]): give high-traffic state pairs
/// uni-distant codes to minimize flip-flop switching.
pub fn state_encoding() -> String {
    let mut t = Table::new(&[
        "machine",
        "binary",
        "random",
        "one-hot",
        "low-power",
        "vs binary",
    ]);
    let machines: Vec<(String, Stg, Vec<f64>)> = vec![
        ("counter-8".into(), Stg::counter(8), vec![0.5, 0.5]),
        ("counter-16".into(), Stg::counter(16), vec![0.5, 0.5]),
        ("random-8".into(), Stg::random(8, 2, 2, 5), vec![0.25; 4]),
        ("random-12".into(), Stg::random(12, 2, 2, 9), vec![0.25; 4]),
    ];
    for (name, stg, probs) in &machines {
        let n = stg.num_states();
        let weights = stg.edge_weights(probs, 300);
        let seq = weighted_switching(&weights, &encode_sequential(n));
        let rnd = weighted_switching(&weights, &encode_random(n, 3));
        let oh = weighted_switching(&weights, &encode_one_hot(n));
        let lp = weighted_switching(&weights, &encode_low_power(stg, probs));
        t.row(&[
            name.clone(),
            f(seq, 3),
            f(rnd, 3),
            f(oh, 3),
            f(lp, 3),
            pct(1.0 - lp / seq),
        ]);
    }
    format!(
        "E10  State encoding: weighted flip-flop switching per cycle\n\
         paper: high-probability transitions get uni-distant codes (one-hot\n\
         gives exactly 2 flips/change; low-power assignment adapts to traffic)\n\n{}",
        t.render()
    )
}

/// E11 — retiming for low power.
///
/// Paper claims (§III.C.2, \[24\]\[29\]): registers filter glitches, so the
/// activity at flip-flop outputs is lower than at their inputs; a
/// power-aware retiming places registers after glitchy nodes.
pub fn retiming() -> String {
    // Part 1: FF inputs vs outputs on a registered multiplier. The
    // product nets (register inputs) glitch heavily; the registers filter
    // those transitions, so their outputs toggle at most once per cycle.
    let (comb, nets) = netlist::gen::array_multiplier(5);
    let patterns = Stimulus::uniform(10).patterns(500, 7);
    let timing =
        sim::event::EventSim::new(&comb, &sim::event::DelayModel::Unit).activity(&patterns);
    let in_t: f64 = nets
        .product
        .iter()
        .map(|p| timing.total.toggles[p.index()])
        .sum();
    let out_t: f64 = nets
        .product
        .iter()
        .map(|p| timing.functional.toggles[p.index()])
        .sum();

    // Part 2: low-power retiming of the correlator graph with a glitchy
    // node.
    let mut g = correlator();
    g.glitch = vec![0.0, 1.0, 4.0, 1.0, 2.0, 0.5, 0.5];
    let zero = vec![0i64; g.len()];
    let (min_c, min_r) = g.min_period_retiming();
    let baseline_cost = g.power_cost(&zero, 0.2);
    let min_period_cost = g.power_cost(&min_r, 0.2);
    let (lp_r, lp_cost) = g.retime_low_power(min_c, 0.2).expect("feasible");

    let mut t = Table::new(&["retiming", "period", "power cost"]);
    t.row(&["original (r = 0)".into(), f(g.period(&zero), 1), f(baseline_cost, 2)]);
    t.row(&["min-period [24]".into(), f(g.period(&min_r), 1), f(min_period_cost, 2)]);
    t.row(&["low-power @ min period [29]".into(), f(g.period(&lp_r), 1), f(lp_cost, 2)]);
    format!(
        "E11  Retiming for low power\n\
         paper: FF outputs switch less than FF inputs (glitches filtered);\n\
         choose among min-period retimings the one filtering hot nodes\n\n\
         registered 5x5 multiplier product bits: {:.2} toggles/cycle arrive at the\n\
         FF inputs (with glitches) but only {:.2}/cycle leave the FF outputs\n\n{}",
        in_t, out_t,
        t.render()
    )
}

/// E12 — gated clocks.
///
/// Paper claims (§III.C.3, \[9\]; §III.C.4, \[4\]): gate the clock of
/// registers whose values need not change; savings scale with idleness.
pub fn clock_gating() -> String {
    let model = ClockPowerModel::default();
    let mut t = Table::new(&[
        "circuit",
        "avg load fraction",
        "clock cap ungated",
        "clock cap gated",
        "saving",
    ]);
    for bits in [4usize, 8, 12] {
        let nl = netlist::gen::counter(bits);
        let gated = gate_idle_registers(&nl).netlist;
        let patterns: Vec<Vec<bool>> = (0..2000).map(|_| vec![true]).collect();
        let activity = SeqSim::new(&gated).activity(&patterns);
        let avg_load: f64 = activity.ff_load_fraction.iter().sum::<f64>() / bits as f64;
        let before = model.ungated_cap(bits);
        let after = model.gated_cap(&activity.ff_load_fraction);
        t.row(&[
            format!("counter-{bits}"),
            f(avg_load, 3),
            f(before, 1),
            f(after, 1),
            pct(1.0 - after / before),
        ]);
    }
    // Self-loop gating on sticky FSMs.
    let mut t2 = Table::new(&["machine", "P(self-loop)", "measured load fraction"]);
    for seed in [21u64, 33, 55] {
        let stg = Stg::random(6, 2, 1, seed);
        let p_self = stg.self_loop_probability(&[0.25; 4], 300);
        let bits = min_bits(6);
        let codes = encode_low_power(&stg, &[0.25; 4]);
        let nl = stg.synthesize(&codes, bits, "sticky");
        let gated = seqopt::clockgate::gate_self_loops(&stg, &nl, &codes, bits).netlist;
        let activity = SeqSim::new(&gated).activity(&Stimulus::uniform(2).patterns(3000, seed));
        let load: f64 =
            activity.ff_load_fraction.iter().sum::<f64>() / activity.ff_load_fraction.len() as f64;
        t2.row(&[format!("random-6 (seed {seed})"), f(p_self, 3), f(load, 3)]);
    }
    format!(
        "E12  Gated clocks\n\
         paper: registers idle most cycles can have their clocks gated ([9]);\n\
         FSM self-loops give the gating condition directly ([4]):\n\
         load fraction ~= 1 - P(self-loop)\n\n{}\nFSM self-loop gating:\n\n{}",
        t.render(),
        t2.render()
    )
}

/// E13 — bus encodings.
///
/// Paper claims (§III.C.1, \[39\]): the invert line caps transitions at n/2
/// and cuts the average; limited-weight codes generalize the idea.
pub fn bus_coding() -> String {
    let width = 8;
    let mut t = Table::new(&[
        "stream",
        "codec",
        "wires",
        "avg transitions",
        "peak",
        "vs unencoded",
    ]);
    let streams: Vec<(&str, Vec<u64>)> = vec![
        ("random", random_stream(width, 20_000, 7)),
        ("addresses", (0..20_000u64).collect()),
        ("skewed", {
            let mut rng = Rng64::new(3);
            (0..20_000)
                .map(|_| {
                    let r = rng.next_f64();
                    ((r * r * r) * 255.0) as u64
                })
                .collect()
        }),
    ];
    for (name, stream) in &streams {
        let base = count_transitions(&mut Unencoded::new(width), stream);
        let mut add = |label: &str, stats: seqopt::buscode::BusStats| {
            t.row(&[
                name.to_string(),
                label.to_string(),
                stats.wires.to_string(),
                f(stats.per_transfer, 3),
                stats.peak.to_string(),
                pct(1.0 - stats.per_transfer / base.per_transfer),
            ]);
        };
        add("unencoded", base);
        add(
            "bus-invert [39]",
            count_transitions(&mut BusInvert::new(width), stream),
        );
        add(
            "limited-weight [39]",
            count_transitions(&mut LimitedWeightCode::new(width, 2), stream),
        );
        add("gray", count_transitions(&mut GrayCode::new(width), stream));
    }
    format!(
        "E13  Bus encodings ({width}-bit data, 20k transfers)\n\
         paper: bus-invert caps per-transfer transitions at n/2 (+E line) and\n\
         cuts the random-data average; Gray wins on sequential addresses\n\n{}",
        t.render()
    )
}

/// E19 — one-hot residue arithmetic.
///
/// Paper claim (§III.C.1, \[11\]): one-hot residue coding lowers the
/// switching activity of arithmetic at the price of wire count; each
/// one-hot digit flips ≤ 2 wires per addition.
pub fn residue() -> String {
    let mut t = Table::new(&[
        "system",
        "range",
        "wires",
        "transitions/add",
        "vs binary",
    ]);
    let configs: Vec<(Vec<u64>, usize)> = vec![
        (vec![3, 5, 7], 7),       // range 105 ≈ 7 bits
        (vec![15, 16], 8),        // range 240 ≈ 8 bits
        (vec![31, 32], 10),       // range 992 ≈ 10 bits
        (vec![29, 31, 32], 15),   // range 28768 ≈ 15 bits
    ];
    let mut rng = Rng64::new(5);
    for (moduli, bits) in &configs {
        let rns = OneHotResidue::new(moduli.clone());
        let range = rns.range();
        let stream: Vec<u64> = (0..4000).map(|_| rng.next_below(range)).collect();
        let rt = rns.accumulate_transitions(&stream) as f64 / stream.len() as f64;
        let bt = binary_accumulate_transitions(*bits, &stream) as f64 / stream.len() as f64;
        t.row(&[
            format!("RNS {moduli:?}"),
            range.to_string(),
            rns.wires().to_string(),
            f(rt, 2),
            pct(1.0 - rt / bt),
        ]);
        t.row(&[
            format!("binary {bits}-bit"),
            (1u64 << bits).to_string(),
            bits.to_string(),
            f(bt, 2),
            "-".into(),
        ]);
    }
    format!(
        "E19  One-hot residue accumulator vs two's-complement binary\n\
         paper: one-hot residue digits flip at most 2 wires per addition —\n\
         the win appears once the equivalent binary width exceeds ~4x the\n\
         digit count (large moduli), at a steep wire-count price\n\n{}",
        t.render()
    )
}
