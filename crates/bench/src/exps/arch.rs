//! E14, E15, E16: architecture/behavior-level experiments.

use crate::table::{f, pct, Table};
use behav::binding::{bind_low_power, bind_round_robin, binding_cost};
use behav::dfg::fir;
use behav::memory::{LoopNest, MemorySystem, Traversal};
use behav::modsel::{corner_lengths, select_modules, ModuleLibrary};
use behav::sched::{default_latency, list_schedule, Resources};
use behav::transform::{voltage_scaling_comparison, VoltageModel};
use netlist::Rng64;

/// E14 — concurrency transformations enable voltage scaling.
///
/// Paper claim (§IV.B, \[7\]): "Slower clocks can then be used for the same
/// throughput, enabling the use of lower supply voltages. The quadratic
/// decrease in power consumption can compensate for the additional
/// capacitance introduced."
pub fn voltage_scaling() -> String {
    let g = fir(8, &[3, -1, 4, 1, -5, 9, 2, -6]);
    let model = VoltageModel::default();
    let direct_sched = list_schedule(&g, Resources { adders: 2, multipliers: 2 });
    let period = direct_sched.length as f64 * model.step_time_ns * 1.02;
    let mut t = Table::new(&[
        "design",
        "Vdd (V)",
        "cap/sample (fF)",
        "energy/sample (fJ)",
        "vs direct",
    ]);
    let (direct, _) = voltage_scaling_comparison(
        &g,
        1,
        Resources { adders: 2, multipliers: 2 },
        Resources { adders: 2, multipliers: 2 },
        100.0,
        0.0,
        period,
    );
    let direct = direct.expect("direct feasible at reference supply");
    t.row(&[
        "direct".into(),
        f(direct.vdd, 2),
        f(direct.cap_per_sample, 0),
        f(direct.energy_per_sample, 0),
        "-".into(),
    ]);
    for k in [2usize, 4, 8] {
        let (_, transformed) = voltage_scaling_comparison(
            &g,
            k,
            Resources { adders: 2, multipliers: 2 },
            Resources { adders: 2 * k, multipliers: 2 * k },
            100.0,
            0.2,
            period,
        );
        match transformed {
            Some(point) => t.row(&[
                format!("{k}x unrolled (+20% cap)"),
                f(point.vdd, 2),
                f(point.cap_per_sample, 0),
                f(point.energy_per_sample, 0),
                pct(1.0 - point.energy_per_sample / direct.energy_per_sample),
            ]),
            None => t.row(&[
                format!("{k}x unrolled"),
                "-".into(),
                "-".into(),
                "infeasible".into(),
                "-".into(),
            ]),
        };
    }
    format!(
        "E14  Concurrency transformation + supply scaling at fixed throughput\n\
         paper: the V^2 win beats the transformation's capacitance overhead\n\
         (8-tap FIR, sample period fixed at the direct design's limit)\n\n{}",
        t.render()
    )
}

/// E15 — module selection and correlation-aware binding.
///
/// Paper claims (§IV.B, \[17\]\[33\]\[34\]): choosing among power/delay module
/// variants and binding with signal correlations in mind reduces switched
/// capacitance at the same performance.
pub fn binding() -> String {
    let g = fir(8, &[3, -1, 4, 1, -5, 9, 2, -6]);
    let lib = ModuleLibrary::default();
    let (fast_len, slow_len) = corner_lengths(&g, &lib);
    let mut t = Table::new(&["deadline (steps)", "module energy (fF)", "vs all-fast"]);
    let all_fast = select_modules(&g, &lib, fast_len).expect("feasible").energy;
    let mut deadlines = vec![fast_len, fast_len + 2, fast_len + 4, slow_len];
    deadlines.sort_unstable();
    deadlines.dedup();
    for deadline in deadlines {
        let sel = select_modules(&g, &lib, deadline).expect("feasible");
        t.row(&[
            deadline.to_string(),
            f(sel.energy, 0),
            pct(1.0 - sel.energy / all_fast),
        ]);
    }

    // Binding: two operand populations (smooth vs noisy).
    let schedule = list_schedule(&g, Resources { adders: 2, multipliers: 2 });
    let mut rng = Rng64::new(11);
    let stream: Vec<Vec<i64>> = (0..300)
        .map(|_| {
            (0..g.inputs().len())
                .map(|i| {
                    if i < 4 {
                        rng.next_below(16) as i64
                    } else {
                        (rng.next_u64() & 0xFFFF) as i64
                    }
                })
                .collect()
        })
        .collect();
    let traces = g.traces(&stream);
    let units = [2usize, 2usize];
    let rr = bind_round_robin(&g, &schedule, units);
    let lp = bind_low_power(&g, &schedule, units, &traces, &default_latency);
    let cost_rr = binding_cost(&g, &schedule, &rr, &traces);
    let cost_lp = binding_cost(&g, &schedule, &lp, &traces);
    let mut t2 = Table::new(&["binder", "operand toggles/iteration", "saving"]);
    t2.row(&["round-robin".into(), f(cost_rr, 1), "-".into()]);
    t2.row(&[
        "correlation-aware [33]".into(),
        f(cost_lp, 1),
        pct(1.0 - cost_lp / cost_rr),
    ]);
    format!(
        "E15  Module selection ([17]) and low-power binding ([33][34])\n\
         paper: slack buys cheap modules; similar operand streams share units\n\n\
         module selection (8-tap FIR):\n\n{}\nfunctional-unit binding:\n\n{}",
        t.render(),
        t2.render()
    )
}

/// E16 — memory traversal order.
///
/// Paper claims (§IV.B, \[14\]): off-chip accesses dominate; memory power
/// grows with size; loop reordering cuts the memory component.
pub fn memory() -> String {
    let mem = MemorySystem::default();
    let mut t = Table::new(&[
        "traversal",
        "accesses",
        "off-chip fills",
        "energy (pJ)",
        "vs row-major",
    ]);
    let nest = |order| LoopNest {
        rows: 64,
        cols: 64,
        order,
    };
    let row = mem.replay(&nest(Traversal::RowMajor).trace());
    for (label, order) in [
        ("row-major", Traversal::RowMajor),
        ("column-major", Traversal::ColumnMajor),
        ("tiled 4x4", Traversal::Tiled { tile: 4 }),
        ("tiled 8x8", Traversal::Tiled { tile: 8 }),
    ] {
        let report = mem.replay(&nest(order).trace());
        t.row(&[
            label.to_string(),
            report.accesses.to_string(),
            report.offchip.to_string(),
            f(report.energy, 0),
            format!("{:.2}x", report.energy / row.energy),
        ]);
    }
    let mut t2 = Table::new(&["array elements", "off-chip energy/access (pJ)"]);
    for log2 in [10usize, 12, 14, 16, 18] {
        t2.row(&[
            format!("2^{log2}"),
            f(mem.offchip_energy_for_size(1 << log2), 1),
        ]);
    }
    format!(
        "E16  Memory power: traversal order and memory size ([14])\n\
         paper: off-chip accesses dominate; larger memories switch more\n\
         capacitance per access; loop reordering minimizes the memory component\n\n{}\n\
         per-access energy vs memory size:\n\n{}",
        t.render(),
        t2.render()
    )
}
