//! E5 and E6: circuit-level experiments (transistor reordering, sizing).

use crate::table::{f, pct, Table};
use circuit::reorder::{InputSignal, Objective, SeriesStack};
use circuit::sizing::SizedCircuit;
use netlist::gen;
use netlist::Rng64;
use sim::comb::CombSim;
use sim::stimulus::Stimulus;

/// E5 — transistor reordering inside complex gates.
///
/// Paper claim (§II.A, \[32\]\[42\]): "Moderate improvements in power and
/// delay can be obtained by a judicious ordering of transistors within
/// individual complex gates."
pub fn reorder() -> String {
    let mut rng = Rng64::new(9);
    let mut t = Table::new(&[
        "stack",
        "delay (worst order)",
        "delay (opt)",
        "energy (worst order)",
        "energy (opt)",
        "power saving",
    ]);
    let mut savings = Vec::new();
    for fanin in [3usize, 4, 5, 6] {
        let inputs: Vec<InputSignal> = (0..fanin)
            .map(|_| InputSignal {
                probability: 0.05 + 0.9 * rng.next_f64(),
                arrival: 3.0 * rng.next_f64(),
                toggle: rng.next_f64() * 0.5,
            })
            .collect();
        let stack = SeriesStack::new(inputs);
        // Worst order: enumerate all permutations and take the maxima.
        let identity: Vec<usize> = (0..fanin).collect();
        let mut worst_delay = stack.cost(&identity).delay;
        let mut worst_energy = stack.cost(&identity).internal_energy;
        let mut order = identity.clone();
        permute(&mut order, 0, &mut |o: &Vec<usize>| {
            let c = stack.cost(o);
            worst_delay = worst_delay.max(c.delay);
            worst_energy = worst_energy.max(c.internal_energy);
        });
        let (_, best_delay) = stack.optimize(Objective::Delay);
        let (_, best_power) = stack.optimize(Objective::Power);
        let saving = 1.0 - best_power.internal_energy / worst_energy.max(1e-12);
        savings.push(saving);
        t.row(&[
            format!("NAND{fanin}"),
            f(worst_delay, 2),
            f(best_delay.delay, 2),
            f(worst_energy, 4),
            f(best_power.internal_energy, 4),
            pct(saving),
        ]);
    }
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    format!(
        "E5  Transistor reordering in series stacks\n\
         paper: moderate power and delay improvements from judicious ordering\n\n{}\n\
         average internal-node energy saving vs worst ordering: {}\n",
        t.render(),
        pct(avg)
    )
}

fn permute(order: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&Vec<usize>)) {
    if k == order.len() {
        visit(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permute(order, k + 1, visit);
        order.swap(k, i);
    }
}

/// E6 — slack-based transistor sizing under a delay constraint.
///
/// Paper claim (§II.B, \[42\]\[3\]): gates with slack are shrunk until slack
/// is zero or minimum size; power drops as the constraint loosens.
pub fn sizing() -> String {
    let (nl, _) = gen::array_multiplier(4);
    let activity =
        CombSim::new(&nl).activity(&Stimulus::uniform(8).patterns(512, 5));
    let fastest = SizedCircuit::new(&nl, 4.0).timing(1e9).critical;
    let full = SizedCircuit::new(&nl, 4.0).switched_capacitance(&activity);
    let mut t = Table::new(&[
        "delay constraint",
        "critical delay",
        "switched cap (fF/cycle)",
        "vs all-fast",
        "gates at min size",
    ]);
    for margin in [1.0f64, 1.02, 1.05, 1.1, 1.2, 1.5] {
        let constraint = fastest * margin;
        let mut c = SizedCircuit::new(&nl, 4.0);
        c.downsize_for_power(constraint);
        let cap = c.switched_capacitance(&activity);
        let at_min = c
            .sizes
            .iter()
            .filter(|&&s| (s - 1.0).abs() < 1e-9)
            .count();
        t.row(&[
            format!("{:.2}x", margin),
            f(c.timing(1e9).critical, 2),
            f(cap, 1),
            pct(cap / full - 1.0),
            format!("{at_min}/{}", c.sizes.len()),
        ]);
    }
    format!(
        "E6  Slack-based sizing of a 4x4 multiplier (start: all gates 4x)\n\
         paper: relax the delay constraint -> shrink off-critical gates -> less power\n\n{}",
        t.render()
    )
}
