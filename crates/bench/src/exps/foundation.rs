//! E1 and E20: the power model itself and architecture-level estimation.

use crate::table::{f, pct, Table};
use lowpower::par;
use netlist::gen;
use power::macro_model::{ActivationTrace, Architecture, ModuleClass};
use power::model::{PowerParams, PowerReport};
use sim::comb::CombSim;
use sim::stimulus::Stimulus;

/// E1 — decomposition of total power per Eqn. (1).
///
/// Paper claim (§I, \[8\]): "In VLSI circuits that use well-designed
/// logic-gates, switching activity power accounts for over 90% of the
/// total power dissipation."
pub fn power_breakdown() -> String {
    let params = PowerParams::default();
    let circuits = vec![
        gen::ripple_adder(8).0,
        gen::carry_select_adder(8, 3).0,
        gen::array_multiplier(6).0,
        gen::comparator_gt(8).0,
        gen::alu4(8),
        gen::parity_tree(16),
    ];
    let mut t = Table::new(&[
        "circuit",
        "switching",
        "short-circuit",
        "leakage",
        "switching share",
    ]);
    let mut min_share = 1.0f64;
    // Per-circuit simulation is independent; fan the six runs across cores.
    let reports = par::par_map(&circuits, par::jobs_from_env(), |_, nl| {
        let activity =
            CombSim::new(nl).activity(&Stimulus::uniform(nl.num_inputs()).patterns(1024, 3));
        PowerReport::from_activity(nl, &activity, &params)
    });
    for (nl, report) in circuits.iter().zip(&reports) {
        min_share = min_share.min(report.switching_fraction());
        t.row(&[
            nl.name().to_string(),
            format!("{:.3} mW", report.switching * 1e3),
            format!("{:.3} mW", report.short_circuit * 1e3),
            format!("{:.4} mW", report.leakage * 1e3),
            pct(report.switching_fraction()),
        ]);
    }
    format!(
        "E1  Power decomposition (Eqn. 1) at {} V / {} MHz\n\
         paper: switching > 90% of total for well-designed gates\n\n{}\n\
         measured minimum switching share: {}  (claim {})\n",
        params.vdd,
        params.freq / 1e6,
        t.render(),
        pct(min_share),
        if min_share > 0.9 { "HOLDS" } else { "VIOLATED" }
    )
}

/// E20 — architecture-level estimation styles vs a reference.
///
/// Paper claims (§IV.A): activity-aware macro-models (\[21\]\[22\]) beat both
/// fixed-capacitance PFA (\[15\]) and isolated-average accounting (\[36\],
/// which "ignores the correlations between the activities of different
/// modules").
pub fn arch_estimation() -> String {
    let mut arch = Architecture::new();
    let add = arch.add(ModuleClass::AdderRipple, 16, "adder");
    let mul = arch.add(ModuleClass::Multiplier, 16, "multiplier");
    let mem = arch.add(ModuleClass::MemoryOnChip, 16, "sram");

    // Workload: a filter that runs quiet data through the adder most of
    // the time and bursts the multiplier with noisy data.
    let mut trace: ActivationTrace = Vec::new();
    for k in 0..400 {
        let mut cycle = vec![(add, 0.08)];
        if k % 4 == 0 {
            cycle.push((mul, 0.5));
            cycle.push((mem, 0.4));
        }
        trace.push(cycle);
    }
    // Characterization workload: random data.
    let charac: ActivationTrace =
        vec![vec![(add, 0.5), (mul, 0.5), (mem, 0.5)]; 50];

    let reference = arch.reference(&trace);
    let pfa = arch.estimate_pfa(&trace);
    let isolated = arch.estimate_isolated(&charac, &trace);
    let weighted = arch.estimate_activity_weighted(&trace);

    let mut t = Table::new(&["estimator", "fF/cycle", "error vs reference"]);
    let err = |x: f64| pct((x - reference) / reference);
    t.row(&["reference (gate-level style)".into(), f(reference, 1), "-".into()]);
    t.row(&["activity-weighted [21][22]".into(), f(weighted, 1), err(weighted)]);
    t.row(&["isolated-average [36]".into(), f(isolated, 1), err(isolated)]);
    t.row(&["PFA fixed-cap [15]".into(), f(pfa, 1), err(pfa)]);
    format!(
        "E20  Architecture-level power estimation accuracy\n\
         paper: signal-statistics-aware models beat random-stream models;\n\
         isolated per-module averages ignore inter-module correlation\n\n{}",
        t.render()
    )
}
