//! EA — ablations of the framework's own design choices: how much each
//! heuristic ingredient contributes, and where the approximations sit
//! relative to exact references.

use crate::table::{f, pct, Table};
use netlist::gen;
use power::exact::circuit_bdds;
use power::prob::propagate;
use seqopt::buscode::{count_transitions, random_stream, BusInvert, Unencoded};
use seqopt::encoding::{encode_greedy, encode_low_power, encode_sequential};
use seqopt::precompute::precompute;
use seqopt::stg::{weighted_switching, Stg};

/// EA — the ablation suite (one table per design choice).
pub fn ablations() -> String {
    let mut sections = Vec::new();

    // ------------------------------------------------------------------
    // A1: encoding — greedy seed vs greedy + pairwise-swap polishing.
    // ------------------------------------------------------------------
    {
        let mut t = Table::new(&[
            "machine",
            "binary",
            "greedy only",
            "greedy+polish",
            "polish contribution",
        ]);
        for (name, stg, probs) in [
            ("counter-8", Stg::counter(8), vec![0.5, 0.5]),
            ("random-8", Stg::random(8, 2, 2, 5), vec![0.25; 4]),
            ("random-12", Stg::random(12, 2, 2, 9), vec![0.25; 4]),
        ] {
            let weights = stg.edge_weights(&probs, 300);
            let base = weighted_switching(&weights, &encode_sequential(stg.num_states()));
            let greedy = weighted_switching(&weights, &encode_greedy(&stg, &probs));
            let polished = weighted_switching(&weights, &encode_low_power(&stg, &probs));
            t.row(&[
                name.to_string(),
                f(base, 3),
                f(greedy, 3),
                f(polished, 3),
                pct(1.0 - polished / greedy.max(1e-12)),
            ]);
        }
        sections.push(format!(
            "A1  State-encoding heuristic (greedy seed + swap polishing)\n\n{}",
            t.render()
        ));
    }

    // ------------------------------------------------------------------
    // A2: precomputation — predictor subset size sweep on the comparator.
    // ------------------------------------------------------------------
    {
        let n = 6;
        let (comb, _) = gen::comparator_gt(n);
        let probs = vec![0.5; 2 * n];
        let mut t = Table::new(&["predictor", "size", "P(disable)", "precompute logic"]);
        let subsets: Vec<(String, Vec<usize>)> = vec![
            ("MSB pair".into(), vec![n - 1, 2 * n - 1]),
            (
                "top-2 MSB pairs".into(),
                vec![n - 2, n - 1, 2 * n - 2, 2 * n - 1],
            ),
            (
                "top-3 MSB pairs".into(),
                vec![n - 3, n - 2, n - 1, 2 * n - 3, 2 * n - 2, 2 * n - 1],
            ),
            ("LSB pair (bad)".into(), vec![0, n]),
        ];
        for (label, subset) in subsets {
            match precompute(&comb, &subset, &probs) {
                Some(pre) => {
                    // Count the precomputation logic gates (nets beyond the
                    // baseline's).
                    let overhead = pre.netlist.len() as i64 - pre.baseline.len() as i64;
                    t.row(&[
                        label,
                        subset.len().to_string(),
                        f(pre.disable_probability, 3),
                        format!("{overhead} extra nets"),
                    ]);
                }
                None => {
                    t.row(&[label, subset.len().to_string(), "0 (no power-down)".into(), "-".into()]);
                }
            }
        }
        sections.push(format!(
            "A2  Precomputation predictor choice (6-bit comparator)\n\
             bigger predictors disable more often but pay more logic;\n\
             the wrong subset (LSBs) buys nothing\n\n{}",
            t.render()
        ));
    }

    // ------------------------------------------------------------------
    // A3: estimator accuracy — correlation-free propagation vs exact BDDs.
    // ------------------------------------------------------------------
    {
        let mut t = Table::new(&[
            "circuit",
            "mean |p_prop - p_exact|",
            "max error",
            "worst-net note",
        ]);
        for nl in [
            gen::parity_tree(10),
            gen::ripple_adder(5).0,
            gen::comparator_gt(5).0,
            gen::array_multiplier(3).0,
        ] {
            let n = nl.num_inputs();
            let exact = circuit_bdds(&nl).probabilities(&vec![0.5; n]);
            let approx = propagate(&nl, &vec![0.5; n], 10, 1e-12).probability;
            let mut errors: Vec<f64> = nl
                .iter_nets()
                .map(|net| (exact[net.index()] - approx[net.index()]).abs())
                .collect();
            let mean = errors.iter().sum::<f64>() / errors.len() as f64;
            errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let max = *errors.last().expect("nonempty");
            let note = if max < 1e-9 {
                "exact (fanout-free)"
            } else {
                "reconvergence error"
            };
            t.row(&[nl.name().to_string(), f(mean, 4), f(max, 4), note.into()]);
        }
        sections.push(format!(
            "A3  Probability estimator: correlation-free propagation vs exact BDDs\n\
             (the fast estimator drives the mapping/factoring cost functions;\n\
             exact BDDs drive don't-cares and precomputation)\n\n{}",
            t.render()
        ));
    }

    // ------------------------------------------------------------------
    // A4: BDD variable order — natural vs sifted node counts.
    // ------------------------------------------------------------------
    {
        let mut t = Table::new(&["function", "natural order", "after sifting", "reduction"]);
        // Interleaved chain: the textbook exponential/linear gap.
        let mut mgr = bdd::Bdd::new();
        let mut chain = bdd::Ref::FALSE;
        for (a, b) in [(0u32, 3u32), (1, 4), (2, 5)] {
            let va = mgr.var(a);
            let vb = mgr.var(b);
            let and = mgr.and(va, vb);
            chain = mgr.or(chain, and);
        }
        let before = mgr.size(chain);
        let (sifted, roots, _) = mgr.sift(&[chain], 6);
        let after = sifted.size_many(&roots);
        t.row(&[
            "x0x3 + x1x4 + x2x5".into(),
            before.to_string(),
            after.to_string(),
            pct(1.0 - after as f64 / before as f64),
        ]);
        // Comparator output: the MSB-first order is better than LSB-first.
        let (cmp, nets) = gen::comparator_gt(5);
        let bdds = circuit_bdds(&cmp);
        let froot = bdds.func(nets.gt);
        let before = bdds.mgr.size(froot);
        let (sifted, roots, _) = bdds.mgr.sift(&[froot], bdds.mgr.num_vars());
        let after = sifted.size_many(&roots);
        t.row(&[
            "comparator_gt_5".into(),
            before.to_string(),
            after.to_string(),
            pct(1.0 - after as f64 / before as f64),
        ]);
        sections.push(format!(
            "A4  BDD variable reordering (greedy sifting)\n\n{}",
            t.render()
        ));
    }

    // ------------------------------------------------------------------
    // A5: bus-invert width sweep — the saving shrinks with bus width.
    // ------------------------------------------------------------------
    {
        let mut t = Table::new(&["width", "plain (tr/transfer)", "bus-invert", "saving"]);
        for width in [4usize, 8, 16, 32] {
            let stream = random_stream(width, 20_000, 7);
            let plain = count_transitions(&mut Unencoded::new(width), &stream);
            let coded = count_transitions(&mut BusInvert::new(width), &stream);
            t.row(&[
                width.to_string(),
                f(plain.per_transfer, 3),
                f(coded.per_transfer, 3),
                pct(1.0 - coded.per_transfer / plain.per_transfer),
            ]);
        }
        sections.push(format!(
            "A5  Bus-invert saving vs bus width (random data)\n\
             the binomial distribution concentrates around n/2 as n grows, so\n\
             one invert line helps less — [39]'s motivation for partitioned and\n\
             limited-weight codes on wide buses\n\n{}",
            t.render()
        ));
    }

    format!(
        "EA  Ablations of the framework's design choices\n\n{}",
        sections.join("\n")
    )
}
