//! Regenerates exhibit E13: bus encodings.
fn main() {
    println!("{}", bench::exps::logic_seq::bus_coding());
}
