//! Regenerates exhibit E19: one-hot residue arithmetic.
fn main() {
    println!("{}", bench::exps::logic_seq::residue());
}
