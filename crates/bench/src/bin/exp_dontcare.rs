//! Regenerates exhibit E7: don't-care optimization.
fn main() {
    println!("{}", bench::exps::logic_comb::dontcare());
}
