//! Regenerates exhibit E9: technology mapping objectives.
fn main() {
    println!("{}", bench::exps::logic_comb::techmap());
}
