//! Regenerates exhibit E18: instruction scheduling.
fn main() {
    println!("{}", bench::exps::software::sw_scheduling());
}
