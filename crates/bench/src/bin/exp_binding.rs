//! Regenerates exhibit E15: module selection and binding.
fn main() {
    println!("{}", bench::exps::arch::binding());
}
