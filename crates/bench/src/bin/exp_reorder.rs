//! Regenerates exhibit E5: transistor reordering.
fn main() {
    println!("{}", bench::exps::circuit_level::reorder());
}
