//! `bench_incr` — incremental-evaluation regression harness.
//!
//! Times the three optimization inner loops that the incremental engines
//! accelerate, from-scratch vs incremental, on the golden circuits:
//!
//! * **balance-sweep** (`mult4`): tighten the skew threshold from the
//!   circuit depth down to 0, measuring glitch activity after every step.
//!   From-scratch rebalances and re-simulates the whole netlist per
//!   threshold; the incremental sweep applies `tighten_balance_delta`
//!   against one resident [`IncrementalEventSim`].
//! * **sizing-loop** (`mult4`): `downsize_for_power` with a full static
//!   timing analysis per shrink trial vs the [`StaCache`] that re-times
//!   only the resized gate's cone.
//! * **dontcare-pass** (`rand40`, a seeded random DAG with genuine
//!   observability don't-cares — the arithmetic goldens have none): the
//!   simulation-driven don't-care driver judging every rewrite on a
//!   resident [`IncrementalSim`] vs the reference driver that
//!   re-simulates the edited netlist from scratch.
//!
//! Emits `BENCH_incr.json` (override with the first non-flag argument).
//!
//! ```text
//! cargo run --release -p bench --bin bench_incr [out.json] [--check]
//! ```
//!
//! With `--check` the harness exits nonzero unless the balance and sizing
//! loops hold their headline win: work ratio (incremental evaluations per
//! from-scratch evaluation) at most 1/3, or wall-clock at least 3x
//! faster. The work ratios are the primary criterion — they are
//! deterministic, so the check is meaningful on a noisy CI box where
//! timings are not. Result identity (bitwise sizes, bitwise capacitance,
//! glitch totals to 1e-9) is always enforced.

use std::fmt::Write as _;
use std::time::Instant;

use circuit::sizing::SizedCircuit;
use logicopt::balance::{balance_delta, balance_paths_with_threshold, tighten_balance_delta};
use logicopt::dontcare::{optimize_dontcares_sim, optimize_dontcares_sim_reference};
use netlist::blif::parse_text;
use netlist::Netlist;
use sim::event::{DelayModel, EventSim};
use sim::incr::IncrementalEventSim;
use sim::stimulus::{PackedPatterns, Stimulus};

const CYCLES: usize = 256;
const SEED: u64 = 42;

struct Section {
    name: &'static str,
    circuit: &'static str,
    scratch_seconds: f64,
    incr_seconds: f64,
    speedup: f64,
    /// Incremental work per from-scratch work (lower is better;
    /// deterministic, unlike wall time).
    work_ratio: f64,
    /// What the work ratio counts.
    work_unit: &'static str,
    identical: bool,
}

fn golden(name: &str) -> Netlist {
    let path = format!(
        "{}/../../tests/golden/{name}.blif",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_text(&text).expect("golden BLIF parses")
}

/// Best-of-5 seconds per run; each rep batches enough runs for ~50ms so
/// the small circuits don't time the clock instead of the loop.
fn time_it(mut f: impl FnMut()) -> f64 {
    let mut runs = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..runs {
            f();
        }
        if start.elapsed().as_secs_f64() > 0.05 {
            break;
        }
        runs *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..runs {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / runs as f64);
    }
    best
}

/// From-scratch balance sweep: rebalance and fully re-simulate per
/// threshold. Returns the glitch totals the incremental sweep must match.
fn balance_scratch(nl: &Netlist, patterns: &sim::stimulus::PatternSet, sweep: &[usize]) -> Vec<f64> {
    sweep
        .iter()
        .map(|&t| {
            let (balanced, _) = balance_paths_with_threshold(nl, t);
            EventSim::new(&balanced, &DelayModel::Unit)
                .activity(patterns)
                .total_glitches_per_cycle()
        })
        .collect()
}

/// Incremental balance sweep: one resident engine, deltas only. Also
/// returns the total nets re-evaluated (dirty-cone replays + the initial
/// full build counted as one whole-netlist evaluation).
fn balance_incr(nl: &Netlist, packed: &PackedPatterns, sweep: &[usize]) -> (Vec<f64>, u64) {
    let levels = nl.levels().expect("acyclic");
    let mut engine = IncrementalEventSim::from_full_eval(nl, &DelayModel::Unit, packed);
    let mut current = nl.clone();
    let mut from = usize::MAX;
    let glitches = sweep
        .iter()
        .map(|&t| {
            let (delta, _) = if from == usize::MAX {
                balance_delta(nl, &levels, t)
            } else {
                tighten_balance_delta(&current, nl.len(), &levels, from, t)
            };
            from = t;
            if !delta.is_empty() {
                delta.apply_to(&mut current);
                engine.apply_delta(&delta);
            }
            engine.activity().total_glitches_per_cycle()
        })
        .collect();
    (glitches, engine.stats().nets_reevaluated + nl.len() as u64)
}

fn bench_balance() -> Section {
    let nl = golden("mult4");
    let patterns = Stimulus::uniform(nl.num_inputs()).patterns(CYCLES, SEED);
    let packed = PackedPatterns::pack(&patterns);
    let sweep: Vec<usize> = (0..=nl.depth()).rev().collect();

    let scratch = balance_scratch(&nl, &patterns, &sweep);
    let (incr, reevaluated) = balance_incr(&nl, &packed, &sweep);
    // The tightened netlist is isomorphic (not id-identical) to the
    // one-shot result, so glitch totals match to rounding, not bits.
    let identical = scratch
        .iter()
        .zip(&incr)
        .all(|(a, b)| (a - b).abs() < 1e-9);

    // From-scratch evaluates every net at every threshold (plus buffers,
    // uncounted — the ratio is conservative).
    let scratch_evals = (sweep.len() * nl.len()) as u64;
    let scratch_seconds = time_it(|| {
        std::hint::black_box(balance_scratch(&nl, &patterns, &sweep));
    });
    let incr_seconds = time_it(|| {
        std::hint::black_box(balance_incr(&nl, &packed, &sweep));
    });
    Section {
        name: "balance-sweep",
        circuit: "mult4",
        scratch_seconds,
        incr_seconds,
        speedup: scratch_seconds / incr_seconds,
        work_ratio: reevaluated as f64 / scratch_evals as f64,
        work_unit: "net evaluations",
        identical,
    }
}

fn bench_sizing() -> Section {
    let nl = golden("mult4");
    let fastest = SizedCircuit::new(&nl, 4.0).timing(1e9).critical;
    let constraint = fastest * 1.15;

    let mut reference = SizedCircuit::new(&nl, 4.0);
    reference.downsize_for_power_reference(constraint);
    let mut incremental = SizedCircuit::new(&nl, 4.0);
    let mut sta = incremental.sta_cache();
    incremental.downsize_for_power_with(constraint, &mut sta);
    let identical = reference
        .sizes
        .iter()
        .zip(&incremental.sizes)
        .all(|(a, b)| a.to_bits() == b.to_bits());

    // The reference re-times every net per shrink trial; the cache only
    // touches the resized gate's fanout cone.
    let full_evals = sta.trials * nl.len() as u64;
    let scratch_seconds = time_it(|| {
        let mut c = SizedCircuit::new(&nl, 4.0);
        std::hint::black_box(c.downsize_for_power_reference(constraint));
    });
    let incr_seconds = time_it(|| {
        let mut c = SizedCircuit::new(&nl, 4.0);
        std::hint::black_box(c.downsize_for_power(constraint));
    });
    Section {
        name: "sizing-loop",
        circuit: "mult4",
        scratch_seconds,
        incr_seconds,
        speedup: scratch_seconds / incr_seconds,
        work_ratio: sta.arrival_evals as f64 / full_evals as f64,
        work_unit: "arrival-time evaluations",
        identical,
    }
}

fn bench_dontcare() -> Section {
    // The arithmetic goldens are don't-care-free; a seeded random DAG
    // exercises the accept/revert loop for real (12 candidates, 8
    // accepted at this seed).
    let config = netlist::gen::RandomDagConfig {
        inputs: 6,
        gates: 40,
        outputs: 3,
        max_fanin: 3,
        window: 10,
    };
    let nl = netlist::gen::random_dag(&config, 21);
    let probs = vec![0.5; nl.num_inputs()];
    let packed = Stimulus::uniform(nl.num_inputs()).packed(CYCLES, SEED);

    let (incr_nl, incr_report) = optimize_dontcares_sim(&nl, &probs, 5, &packed);
    let (ref_nl, ref_report) = optimize_dontcares_sim_reference(&nl, &probs, 5, &packed);
    let identical = incr_report.cap_after.to_bits() == ref_report.cap_after.to_bits()
        && incr_report.nodes_changed == ref_report.nodes_changed
        && incr_nl.len() == ref_nl.len()
        && incr_nl
            .iter_nets()
            .all(|n| incr_nl.kind(n) == ref_nl.kind(n) && incr_nl.fanins(n) == ref_nl.fanins(n));

    // Each candidate rewrite costs the reference a whole-netlist
    // re-simulation; the engine replays the rewrite's fanout cone.
    let scratch_evals = ref_report.nets_reevaluated.max(1);
    let scratch_seconds = time_it(|| {
        std::hint::black_box(optimize_dontcares_sim_reference(&nl, &probs, 5, &packed));
    });
    let incr_seconds = time_it(|| {
        std::hint::black_box(optimize_dontcares_sim(&nl, &probs, 5, &packed));
    });
    Section {
        name: "dontcare-pass",
        circuit: "rand40",
        scratch_seconds,
        incr_seconds,
        speedup: scratch_seconds / incr_seconds,
        work_ratio: incr_report.nets_reevaluated as f64 / scratch_evals as f64,
        work_unit: "net evaluations",
        identical,
    }
}

fn to_json(sections: &[Section]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"incr\",\n");
    out.push_str(
        "  \"baseline\": \"from-scratch re-simulation / full STA per candidate edit\",\n",
    );
    out.push_str("  \"sections\": [\n");
    for (i, s) in sections.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
        let _ = writeln!(out, "      \"circuit\": \"{}\",", s.circuit);
        let _ = writeln!(out, "      \"scratch_seconds\": {:.3e},", s.scratch_seconds);
        let _ = writeln!(out, "      \"incr_seconds\": {:.3e},", s.incr_seconds);
        let _ = writeln!(out, "      \"speedup\": {:.3},", s.speedup);
        let _ = writeln!(out, "      \"work_ratio\": {:.4},", s.work_ratio);
        let _ = writeln!(out, "      \"work_unit\": \"{}\",", s.work_unit);
        let _ = writeln!(out, "      \"identical\": {}", s.identical);
        out.push_str(if i + 1 < sections.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_incr.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }

    let sections = vec![bench_balance(), bench_sizing(), bench_dontcare()];
    std::fs::write(&out_path, to_json(&sections)).expect("write benchmark JSON");

    println!("wrote {out_path}");
    for s in &sections {
        println!(
            "  {:<14} {:<8} scratch {:>9.3e} s  incr {:>9.3e} s ({:.2}x faster)  \
             work {:.1}% of scratch  identical: {}",
            s.name,
            s.circuit,
            s.scratch_seconds,
            s.incr_seconds,
            s.speedup,
            s.work_ratio * 100.0,
            s.identical,
        );
    }

    if check {
        let mut ok = true;
        for s in &sections {
            if !s.identical {
                eprintln!("check FAILED: {} results diverged from from-scratch", s.name);
                ok = false;
            }
        }
        for s in sections.iter().filter(|s| s.name != "dontcare-pass") {
            // Deterministic work ratio is primary; wall clock rescues a
            // run on a machine with different constant factors.
            if s.work_ratio > 1.0 / 3.0 && s.speedup < 3.0 {
                eprintln!(
                    "check FAILED: {} work ratio {:.3} > 0.333 and speedup {:.2}x < 3.0x",
                    s.name, s.work_ratio, s.speedup
                );
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check ok: incremental engines hold their win");
    }
}
