//! `bench_incr` — incremental-evaluation regression harness.
//!
//! Times the three optimization inner loops that the incremental engines
//! accelerate, from-scratch vs incremental, on the golden circuits:
//!
//! * **balance-sweep** (`mult4`): tighten the skew threshold from the
//!   circuit depth down to 0, measuring glitch activity after every step.
//!   From-scratch rebalances and re-simulates the whole netlist per
//!   threshold; the incremental sweep applies `tighten_balance_delta`
//!   against one resident [`IncrementalEventSim`].
//! * **sizing-loop** (`mult4`): `downsize_for_power` with a full static
//!   timing analysis per shrink trial vs the [`StaCache`] that re-times
//!   only the resized gate's cone.
//! * **dontcare-pass** (`rand40`, a seeded random DAG with genuine
//!   observability don't-cares — the arithmetic goldens have none): the
//!   simulation-driven don't-care driver judging every rewrite on a
//!   resident [`IncrementalSim`] vs the reference driver that
//!   re-simulates the edited netlist from scratch.
//! * **rewrite-search** (`rand200`, a larger seeded random DAG, and
//!   `wallace8`, the 8-bit Wallace-tree multiplier): the activity-driven
//!   rewriting search on its resident incremental engine vs its
//!   `force_full` twin that makes identical decisions while re-evaluating
//!   the whole netlist per speculative move.
//! * **rewrite-flow** (same circuits): the combined rewriting pass
//!   (rewrite → balance → size) against the sequential pipeline
//!   (balance → don't-cares → size), both sized to one shared delay
//!   constraint, compared on glitch-aware switched capacitance.
//!
//! Emits `BENCH_incr.json` (override with the first non-flag argument).
//!
//! ```text
//! cargo run --release -p bench --bin bench_incr [out.json] [--check]
//! ```
//!
//! With `--check` the harness exits nonzero unless the balance, sizing
//! and rewrite-search loops hold their headline win: work ratio
//! (incremental evaluations per from-scratch evaluation) at most 1/3, or
//! wall-clock at least 3x faster. The work ratios are the primary
//! criterion — they are deterministic, so the check is meaningful on a
//! noisy CI box where timings are not. Result identity (bitwise sizes,
//! bitwise capacitance, glitch totals to 1e-9, node-for-node netlists
//! from the rewrite twins) is always enforced, as is the rewrite-flow
//! criterion: combined switched capacitance no worse than the sequential
//! pipeline's at the shared delay constraint.

use std::fmt::Write as _;
use std::time::Instant;

use circuit::sizing::SizedCircuit;
use logicopt::balance::{balance_delta, balance_paths_with_threshold, tighten_balance_delta};
use logicopt::dontcare::{optimize_dontcares_sim, optimize_dontcares_sim_reference};
use logicopt::rewrite::{rewrite_sim, RewriteConfig};
use netlist::blif::parse_text;
use netlist::Netlist;
use sim::event::{DelayModel, EventSim};
use sim::incr::IncrementalEventSim;
use sim::stimulus::{PackedPatterns, Stimulus};

const CYCLES: usize = 256;
const SEED: u64 = 42;

struct Section {
    name: &'static str,
    circuit: &'static str,
    scratch_seconds: f64,
    incr_seconds: f64,
    speedup: f64,
    /// Incremental work per from-scratch work (lower is better;
    /// deterministic, unlike wall time).
    work_ratio: f64,
    /// What the work ratio counts.
    work_unit: &'static str,
    identical: bool,
}

fn golden(name: &str) -> Netlist {
    let path = format!(
        "{}/../../tests/golden/{name}.blif",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_text(&text).expect("golden BLIF parses")
}

/// Best-of-5 seconds per run; each rep batches enough runs for ~50ms so
/// the small circuits don't time the clock instead of the loop.
fn time_it(mut f: impl FnMut()) -> f64 {
    let mut runs = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..runs {
            f();
        }
        if start.elapsed().as_secs_f64() > 0.05 {
            break;
        }
        runs *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..runs {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / runs as f64);
    }
    best
}

/// From-scratch balance sweep: rebalance and fully re-simulate per
/// threshold. Returns the glitch totals the incremental sweep must match.
fn balance_scratch(nl: &Netlist, patterns: &sim::stimulus::PatternSet, sweep: &[usize]) -> Vec<f64> {
    sweep
        .iter()
        .map(|&t| {
            let (balanced, _) = balance_paths_with_threshold(nl, t);
            EventSim::new(&balanced, &DelayModel::Unit)
                .activity(patterns)
                .total_glitches_per_cycle()
        })
        .collect()
}

/// Incremental balance sweep: one resident engine, deltas only. Also
/// returns the total nets re-evaluated (dirty-cone replays + the initial
/// full build counted as one whole-netlist evaluation).
fn balance_incr(nl: &Netlist, packed: &PackedPatterns, sweep: &[usize]) -> (Vec<f64>, u64) {
    let levels = nl.levels().expect("acyclic");
    let mut engine = IncrementalEventSim::from_full_eval(nl, &DelayModel::Unit, packed);
    let mut current = nl.clone();
    let mut from = usize::MAX;
    let glitches = sweep
        .iter()
        .map(|&t| {
            let (delta, _) = if from == usize::MAX {
                balance_delta(nl, &levels, t)
            } else {
                tighten_balance_delta(&current, nl.len(), &levels, from, t)
            };
            from = t;
            if !delta.is_empty() {
                delta.apply_to(&mut current);
                engine.apply_delta(&delta);
            }
            engine.activity().total_glitches_per_cycle()
        })
        .collect();
    (glitches, engine.stats().nets_reevaluated + nl.len() as u64)
}

fn bench_balance() -> Section {
    let nl = golden("mult4");
    let patterns = Stimulus::uniform(nl.num_inputs()).patterns(CYCLES, SEED);
    let packed = PackedPatterns::pack(&patterns);
    let sweep: Vec<usize> = (0..=nl.depth()).rev().collect();

    let scratch = balance_scratch(&nl, &patterns, &sweep);
    let (incr, reevaluated) = balance_incr(&nl, &packed, &sweep);
    // The tightened netlist is isomorphic (not id-identical) to the
    // one-shot result, so glitch totals match to rounding, not bits.
    let identical = scratch
        .iter()
        .zip(&incr)
        .all(|(a, b)| (a - b).abs() < 1e-9);

    // From-scratch evaluates every net at every threshold (plus buffers,
    // uncounted — the ratio is conservative).
    let scratch_evals = (sweep.len() * nl.len()) as u64;
    let scratch_seconds = time_it(|| {
        std::hint::black_box(balance_scratch(&nl, &patterns, &sweep));
    });
    let incr_seconds = time_it(|| {
        std::hint::black_box(balance_incr(&nl, &packed, &sweep));
    });
    Section {
        name: "balance-sweep",
        circuit: "mult4",
        scratch_seconds,
        incr_seconds,
        speedup: scratch_seconds / incr_seconds,
        work_ratio: reevaluated as f64 / scratch_evals as f64,
        work_unit: "net evaluations",
        identical,
    }
}

fn bench_sizing() -> Section {
    let nl = golden("mult4");
    let fastest = SizedCircuit::new(&nl, 4.0).timing(1e9).critical;
    let constraint = fastest * 1.15;

    let mut reference = SizedCircuit::new(&nl, 4.0);
    reference.downsize_for_power_reference(constraint);
    let mut incremental = SizedCircuit::new(&nl, 4.0);
    let mut sta = incremental.sta_cache();
    incremental.downsize_for_power_with(constraint, &mut sta);
    let identical = reference
        .sizes
        .iter()
        .zip(&incremental.sizes)
        .all(|(a, b)| a.to_bits() == b.to_bits());

    // The reference re-times every net per shrink trial; the cache only
    // touches the resized gate's fanout cone.
    let full_evals = sta.trials * nl.len() as u64;
    let scratch_seconds = time_it(|| {
        let mut c = SizedCircuit::new(&nl, 4.0);
        std::hint::black_box(c.downsize_for_power_reference(constraint));
    });
    let incr_seconds = time_it(|| {
        let mut c = SizedCircuit::new(&nl, 4.0);
        std::hint::black_box(c.downsize_for_power(constraint));
    });
    Section {
        name: "sizing-loop",
        circuit: "mult4",
        scratch_seconds,
        incr_seconds,
        speedup: scratch_seconds / incr_seconds,
        work_ratio: sta.arrival_evals as f64 / full_evals as f64,
        work_unit: "arrival-time evaluations",
        identical,
    }
}

fn bench_dontcare() -> Section {
    // The arithmetic goldens are don't-care-free; a seeded random DAG
    // exercises the accept/revert loop for real (12 candidates, 8
    // accepted at this seed).
    let config = netlist::gen::RandomDagConfig {
        inputs: 6,
        gates: 40,
        outputs: 3,
        max_fanin: 3,
        window: 10,
    };
    let nl = netlist::gen::random_dag(&config, 21);
    let probs = vec![0.5; nl.num_inputs()];
    let packed = Stimulus::uniform(nl.num_inputs()).packed(CYCLES, SEED);

    let (incr_nl, incr_report) = optimize_dontcares_sim(&nl, &probs, 5, &packed);
    let (ref_nl, ref_report) = optimize_dontcares_sim_reference(&nl, &probs, 5, &packed);
    let identical = incr_report.cap_after.to_bits() == ref_report.cap_after.to_bits()
        && incr_report.nodes_changed == ref_report.nodes_changed
        && incr_nl.len() == ref_nl.len()
        && incr_nl
            .iter_nets()
            .all(|n| incr_nl.kind(n) == ref_nl.kind(n) && incr_nl.fanins(n) == ref_nl.fanins(n));

    // Each candidate rewrite costs the reference a whole-netlist
    // re-simulation; the engine replays the rewrite's fanout cone.
    let scratch_evals = ref_report.nets_reevaluated.max(1);
    let scratch_seconds = time_it(|| {
        std::hint::black_box(optimize_dontcares_sim_reference(&nl, &probs, 5, &packed));
    });
    let incr_seconds = time_it(|| {
        std::hint::black_box(optimize_dontcares_sim(&nl, &probs, 5, &packed));
    });
    Section {
        name: "dontcare-pass",
        circuit: "rand40",
        scratch_seconds,
        incr_seconds,
        speedup: scratch_seconds / incr_seconds,
        work_ratio: incr_report.nets_reevaluated as f64 / scratch_evals as f64,
        work_unit: "net evaluations",
        identical,
    }
}

/// The larger random DAG the search sections run on: enough gates that
/// search-phase wins clear timer noise, wide enough (16 inputs, window
/// 24) that edit cones stay local instead of sweeping the whole DAG.
fn rand200() -> Netlist {
    let config = netlist::gen::RandomDagConfig {
        inputs: 16,
        gates: 200,
        outputs: 8,
        max_fanin: 3,
        window: 24,
    };
    netlist::gen::random_dag(&config, 7)
}

fn search_config() -> RewriteConfig {
    RewriteConfig {
        max_fanin: 5,
        ..RewriteConfig::default()
    }
}

/// Rewriting search on the resident incremental engine vs the
/// `force_full` twin: same moves, same decisions, whole-netlist
/// re-evaluation per speculative apply.
fn bench_rewrite_search(circuit: &'static str, nl: &Netlist) -> Section {
    let probs = vec![0.5; nl.num_inputs()];
    let packed = Stimulus::uniform(nl.num_inputs()).packed(CYCLES, SEED);
    let cfg = search_config();
    let full_cfg = RewriteConfig {
        force_full: true,
        ..cfg.clone()
    };

    let (incr_nl, incr_report) = rewrite_sim(nl, &probs, &packed, &cfg);
    let (full_nl, full_report) = rewrite_sim(nl, &probs, &packed, &full_cfg);
    let identical = incr_report.cap_after.to_bits() == full_report.cap_after.to_bits()
        && incr_report.chains_accepted == full_report.chains_accepted
        && incr_nl.len() == full_nl.len()
        && incr_nl
            .iter_nets()
            .all(|n| incr_nl.kind(n) == full_nl.kind(n) && incr_nl.fanins(n) == full_nl.fanins(n));

    let scratch_seconds = time_it(|| {
        std::hint::black_box(rewrite_sim(nl, &probs, &packed, &full_cfg));
    });
    let incr_seconds = time_it(|| {
        std::hint::black_box(rewrite_sim(nl, &probs, &packed, &cfg));
    });
    Section {
        name: "rewrite-search",
        circuit,
        scratch_seconds,
        incr_seconds,
        speedup: scratch_seconds / incr_seconds,
        work_ratio: incr_report.nets_reevaluated as f64 / full_report.nets_reevaluated.max(1) as f64,
        work_unit: "net evaluations",
        identical,
    }
}

/// One combined-vs-sequential quality comparison at a shared delay
/// constraint.
struct FlowSection {
    circuit: &'static str,
    /// Shared timing constraint both variants are sized to (1.15x the
    /// slower variant's fastest achievable critical path at max size).
    constraint: f64,
    /// Glitch-aware switched capacitance, balance → don't-cares → size.
    sequential_cap: f64,
    /// Glitch-aware switched capacitance, rewrite → balance → size.
    combined_cap: f64,
    /// Single-run pipeline seconds (the flow runs once; speed claims live
    /// in the rewrite-search section).
    sequential_seconds: f64,
    combined_seconds: f64,
    /// Both sized variants meet the shared constraint.
    meets_constraint: bool,
}

/// Size `nl` for minimum power at `constraint` and report its switched
/// capacitance under unit-delay event activity (glitches included).
fn sized_cap(nl: &Netlist, patterns: &sim::stimulus::PatternSet, constraint: f64) -> (f64, bool) {
    let mut sized = SizedCircuit::new(nl, 4.0);
    sized.downsize_for_power(constraint);
    let activity = EventSim::new(nl, &DelayModel::Unit).activity(patterns).total;
    (
        sized.switched_capacitance(&activity),
        sized.timing(constraint).critical <= constraint + 1e-9,
    )
}

fn bench_rewrite_flow(circuit: &'static str, nl: &Netlist) -> FlowSection {
    let probs = vec![0.5; nl.num_inputs()];
    let patterns = Stimulus::uniform(nl.num_inputs()).patterns(CYCLES, SEED);
    let packed = PackedPatterns::pack(&patterns);

    let start = Instant::now();
    let (balanced, _) = balance_paths_with_threshold(nl, 0);
    let (seq_nl, _) = optimize_dontcares_sim(&balanced, &probs, 5, &packed);
    let sequential_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let (rewritten, _) = rewrite_sim(nl, &probs, &packed, &search_config());
    let (comb_nl, _) = balance_paths_with_threshold(&rewritten, 0);
    let combined_seconds = start.elapsed().as_secs_f64();

    // Equal delay: one constraint, derived from whichever variant is
    // slower at maximum drive, with the sizing benches' usual 15% margin.
    let fastest = |n: &Netlist| SizedCircuit::new(n, 4.0).timing(1e9).critical;
    let constraint = 1.15 * fastest(&seq_nl).max(fastest(&comb_nl));
    let (sequential_cap, seq_ok) = sized_cap(&seq_nl, &patterns, constraint);
    let (combined_cap, comb_ok) = sized_cap(&comb_nl, &patterns, constraint);
    FlowSection {
        circuit,
        constraint,
        sequential_cap,
        combined_cap,
        sequential_seconds,
        combined_seconds,
        meets_constraint: seq_ok && comb_ok,
    }
}

fn to_json(sections: &[Section], flows: &[FlowSection]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"incr\",\n");
    out.push_str(
        "  \"baseline\": \"from-scratch re-simulation / full STA per candidate edit\",\n",
    );
    out.push_str("  \"sections\": [\n");
    for (i, s) in sections.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
        let _ = writeln!(out, "      \"circuit\": \"{}\",", s.circuit);
        let _ = writeln!(out, "      \"scratch_seconds\": {:.3e},", s.scratch_seconds);
        let _ = writeln!(out, "      \"incr_seconds\": {:.3e},", s.incr_seconds);
        let _ = writeln!(out, "      \"speedup\": {:.3},", s.speedup);
        let _ = writeln!(out, "      \"work_ratio\": {:.4},", s.work_ratio);
        let _ = writeln!(out, "      \"work_unit\": \"{}\",", s.work_unit);
        let _ = writeln!(out, "      \"identical\": {}", s.identical);
        out.push_str(if i + 1 < sections.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"flow_sections\": [\n");
    for (i, f) in flows.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"rewrite-flow\",");
        let _ = writeln!(out, "      \"circuit\": \"{}\",", f.circuit);
        let _ = writeln!(out, "      \"constraint\": {:.4},", f.constraint);
        let _ = writeln!(out, "      \"sequential_cap\": {:.4},", f.sequential_cap);
        let _ = writeln!(out, "      \"combined_cap\": {:.4},", f.combined_cap);
        let _ = writeln!(
            out,
            "      \"sequential_seconds\": {:.3e},",
            f.sequential_seconds
        );
        let _ = writeln!(out, "      \"combined_seconds\": {:.3e},", f.combined_seconds);
        let _ = writeln!(out, "      \"meets_constraint\": {}", f.meets_constraint);
        out.push_str(if i + 1 < flows.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_incr.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }

    let rand = rand200();
    let (wallace, _) = netlist::gen::wallace_multiplier(8);
    let sections = vec![
        bench_balance(),
        bench_sizing(),
        bench_dontcare(),
        bench_rewrite_search("rand200", &rand),
        bench_rewrite_search("wallace8", &wallace),
    ];
    let flows = vec![
        bench_rewrite_flow("rand200", &rand),
        bench_rewrite_flow("wallace8", &wallace),
    ];
    std::fs::write(&out_path, to_json(&sections, &flows)).expect("write benchmark JSON");

    println!("wrote {out_path}");
    for s in &sections {
        println!(
            "  {:<14} {:<8} scratch {:>9.3e} s  incr {:>9.3e} s ({:.2}x faster)  \
             work {:.1}% of scratch  identical: {}",
            s.name,
            s.circuit,
            s.scratch_seconds,
            s.incr_seconds,
            s.speedup,
            s.work_ratio * 100.0,
            s.identical,
        );
    }
    for f in &flows {
        println!(
            "  {:<14} {:<8} sequential {:>8.1} fF/cycle  combined {:>8.1} fF/cycle \
             ({:+.1}%) at delay {:.1}  meets constraint: {}",
            "rewrite-flow",
            f.circuit,
            f.sequential_cap,
            f.combined_cap,
            100.0 * (f.combined_cap - f.sequential_cap) / f.sequential_cap,
            f.constraint,
            f.meets_constraint,
        );
    }

    if check {
        let mut ok = true;
        for s in &sections {
            if !s.identical {
                eprintln!(
                    "check FAILED: {} ({}) results diverged from from-scratch",
                    s.name, s.circuit
                );
                ok = false;
            }
        }
        for s in sections.iter().filter(|s| s.name != "dontcare-pass") {
            // Deterministic work ratio is primary; wall clock rescues a
            // run on a machine with different constant factors.
            if s.work_ratio > 1.0 / 3.0 && s.speedup < 3.0 {
                eprintln!(
                    "check FAILED: {} ({}) work ratio {:.3} > 0.333 and speedup {:.2}x < 3.0x",
                    s.name, s.circuit, s.work_ratio, s.speedup
                );
                ok = false;
            }
        }
        for f in &flows {
            // The combined pass must hold the ROADMAP's quality bar:
            // no worse than the sequential pipeline on switched
            // capacitance at the shared delay constraint. Both inputs
            // are deterministic, so equality-with-epsilon is stable.
            if !f.meets_constraint {
                eprintln!(
                    "check FAILED: rewrite-flow ({}) missed the shared delay constraint",
                    f.circuit
                );
                ok = false;
            }
            if f.combined_cap > f.sequential_cap + 1e-9 {
                eprintln!(
                    "check FAILED: rewrite-flow ({}) combined cap {:.4} exceeds sequential {:.4}",
                    f.circuit, f.combined_cap, f.sequential_cap
                );
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check ok: incremental engines hold their win");
    }
}
