//! `bench_bdd` — BDD-kernel regression harness on the golden circuits.
//!
//! Builds the circuit BDDs of the golden BLIF netlists with the current
//! kernel and compares its ITE-call count, computed-table miss count, and
//! wall-clock build time against the numbers recorded for the pre-rewrite
//! kernel (separate chaining + `std` SipHash tables, no complement
//! edges). Emits `BENCH_bdd.json` (override with the first non-flag
//! argument).
//!
//! ```text
//! cargo run --release -p bench --bin bench_bdd [out.json] [--check]
//! ```
//!
//! With `--check` the harness exits nonzero unless the rewrite still
//! holds its headline win on `mult4`: computed-table misses at most half
//! the old kernel's, or wall-clock at least 1.5x faster. Misses are the
//! primary criterion — they are deterministic, so the check is meaningful
//! on a noisy CI box where timings are not.
//!
//! A second section exercises dynamic variable ordering on an 8×8 array
//! multiplier under a committed node budget sized between the sifted
//! peak and the natural-order peak: the fixed-order build must exhaust
//! the budget while the reorder-enabled build completes the exact tier.
//! `--check` enforces that separation too — both halves are
//! deterministic node counts, immune to CI timing noise.

use std::fmt::Write as _;
use std::time::Instant;

use budget::ResourceBudget;
use netlist::blif::parse_text;
use netlist::Netlist;
use power::exact::{try_circuit_bdds, try_circuit_bdds_reorder};
use power::order::ReorderConfig;

/// Pre-rewrite kernel numbers, captured on the same golden circuits with
/// the same build-everything workload (wall-clock: best of 5 on the
/// reference machine — indicative only, re-time on your own hardware).
struct Baseline {
    name: &'static str,
    ite_calls: u64,
    cache_misses: u64,
    seconds: f64,
}

const BASELINES: [Baseline; 3] = [
    Baseline {
        name: "adder4",
        ite_calls: 390,
        cache_misses: 167,
        seconds: 3.365e-5,
    },
    Baseline {
        name: "parity8",
        ite_calls: 110,
        cache_misses: 41,
        seconds: 8.246e-6,
    },
    Baseline {
        name: "mult4",
        ite_calls: 1982,
        cache_misses: 891,
        seconds: 1.402e-4,
    },
];

struct Measured {
    name: &'static str,
    ite_calls: u64,
    cache_misses: u64,
    nodes_created: u64,
    peak_live_nodes: u64,
    seconds: f64,
    miss_ratio: f64,
    speedup: f64,
}

fn golden(name: &str) -> Netlist {
    let path = format!(
        "{}/../../tests/golden/{name}.blif",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_text(&text).expect("golden BLIF parses")
}

/// Best-of-5 seconds per build; each rep batches enough builds for ~50ms
/// so the tiny circuits don't time the clock instead of the kernel.
fn time_build(nl: &Netlist) -> f64 {
    let budget = ResourceBudget::unlimited();
    let mut builds = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..builds {
            let _ = try_circuit_bdds(nl, &budget).expect("unlimited build");
        }
        if start.elapsed().as_secs_f64() > 0.05 {
            break;
        }
        builds *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..builds {
            let _ = try_circuit_bdds(nl, &budget).expect("unlimited build");
        }
        best = best.min(start.elapsed().as_secs_f64() / builds as f64);
    }
    best
}

fn measure(base: &Baseline) -> Measured {
    let nl = golden(base.name);
    let bdds = try_circuit_bdds(&nl, &ResourceBudget::unlimited()).expect("unlimited build");
    let counts = bdds.mgr.op_counts();
    let misses = counts.cache_lookups - counts.cache_hits;
    let seconds = time_build(&nl);
    Measured {
        name: base.name,
        ite_calls: counts.ite_calls,
        cache_misses: misses,
        nodes_created: counts.nodes_created,
        peak_live_nodes: bdds.mgr.peak_live_nodes() as u64,
        seconds,
        miss_ratio: base.cache_misses as f64 / misses.max(1) as f64,
        speedup: base.seconds / seconds,
    }
}

/// The reorder exhibit's ordering policy and the committed node budget.
/// 40k sits between the `dfs+threshold:256` sifted peak (36 339 live
/// nodes, measured) and the natural-order peak (52 412): the margin is
/// ~10% on one side and ~30% on the other, so an ordering regression in
/// either direction trips the gate before it halves the win.
const REORDER_SPEC: &str = "dfs+threshold:256";
const REORDER_NODE_BUDGET: u64 = 40_000;

struct ReorderMeasured {
    fixed_peak: u64,
    reordered_peak: u64,
    reorder_runs: u64,
    reorder_swaps: u64,
    seconds: f64,
    /// The natural order must blow the committed budget…
    fixed_exhausts_budget: bool,
    /// …and sifting must finish the exact tier under the same budget.
    reordered_completes_budget: bool,
}

fn measure_reorder() -> ReorderMeasured {
    let (nl, _) = netlist::gen::array_multiplier(8);
    let unlimited = ResourceBudget::unlimited();
    let nobs = lowpower::obs::Obs::disabled();
    let cfg = ReorderConfig::parse(REORDER_SPEC).expect("committed reorder spec parses");
    let fixed = try_circuit_bdds(&nl, &unlimited).expect("unlimited fixed-order build");
    let start = Instant::now();
    let reordered =
        try_circuit_bdds_reorder(&nl, &unlimited, &cfg, &nobs).expect("unlimited sifted build");
    let seconds = start.elapsed().as_secs_f64();
    let counts = reordered.mgr.op_counts();
    let budget = ResourceBudget::unlimited().with_max_bdd_nodes(REORDER_NODE_BUDGET);
    ReorderMeasured {
        fixed_peak: fixed.mgr.peak_live_nodes() as u64,
        reordered_peak: reordered.mgr.peak_live_nodes() as u64,
        reorder_runs: counts.reorder_runs,
        reorder_swaps: counts.reorder_swaps,
        seconds,
        fixed_exhausts_budget: try_circuit_bdds(&nl, &budget).is_err(),
        reordered_completes_budget: try_circuit_bdds_reorder(&nl, &budget, &cfg, &nobs).is_ok(),
    }
}

fn reorder_json(r: &ReorderMeasured) -> String {
    let mut out = String::new();
    out.push_str("  \"reorder\": {\n");
    let _ = writeln!(out, "    \"circuit\": \"mult8 (8x8 array multiplier)\",");
    let _ = writeln!(out, "    \"spec\": \"{REORDER_SPEC}\",");
    let _ = writeln!(out, "    \"node_budget\": {REORDER_NODE_BUDGET},");
    let _ = writeln!(out, "    \"fixed_peak_live_nodes\": {},", r.fixed_peak);
    let _ = writeln!(out, "    \"reordered_peak_live_nodes\": {},", r.reordered_peak);
    let _ = writeln!(out, "    \"reorder_runs\": {},", r.reorder_runs);
    let _ = writeln!(out, "    \"reorder_swaps\": {},", r.reorder_swaps);
    let _ = writeln!(out, "    \"seconds\": {:.3e},", r.seconds);
    let _ = writeln!(out, "    \"fixed_exhausts_budget\": {},", r.fixed_exhausts_budget);
    let _ = writeln!(
        out,
        "    \"reordered_completes_budget\": {}",
        r.reordered_completes_budget
    );
    out.push_str("  }\n");
    out
}

fn to_json(results: &[Measured], reorder: &ReorderMeasured) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"bdd\",\n");
    out.push_str(
        "  \"baseline\": \"pre-rewrite kernel (no complement edges, std HashMap tables)\",\n",
    );
    out.push_str("  \"circuits\": [\n");
    for (i, (m, b)) in results.iter().zip(BASELINES.iter()).enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", m.name);
        let _ = writeln!(
            out,
            "      \"before\": {{\"ite_calls\": {}, \"cache_misses\": {}, \"seconds\": {:.3e}}},",
            b.ite_calls, b.cache_misses, b.seconds
        );
        let _ = writeln!(
            out,
            "      \"after\": {{\"ite_calls\": {}, \"cache_misses\": {}, \
             \"nodes_created\": {}, \"peak_live_nodes\": {}, \"seconds\": {:.3e}}},",
            m.ite_calls, m.cache_misses, m.nodes_created, m.peak_live_nodes, m.seconds
        );
        let _ = writeln!(
            out,
            "      \"miss_reduction\": {:.3},\n      \"speedup\": {:.3}",
            m.miss_ratio, m.speedup
        );
        out.push_str(if i + 1 < results.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&reorder_json(reorder));
    out.push_str("}\n");
    out
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_bdd.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }

    let results: Vec<Measured> = BASELINES.iter().map(measure).collect();
    let reorder = measure_reorder();
    std::fs::write(&out_path, to_json(&results, &reorder)).expect("write benchmark JSON");

    println!("wrote {out_path}");
    for m in &results {
        println!(
            "  {:<8} ite {:>5}  misses {:>4} ({:.2}x fewer)  {:>9.3e} s/build ({:.2}x faster)",
            m.name, m.ite_calls, m.cache_misses, m.miss_ratio, m.seconds, m.speedup
        );
    }
    println!(
        "  mult8    peak {} -> {} under {REORDER_SPEC} ({} runs, {} swaps); \
         budget {REORDER_NODE_BUDGET}: fixed {}, reordered {}",
        reorder.fixed_peak,
        reorder.reordered_peak,
        reorder.reorder_runs,
        reorder.reorder_swaps,
        if reorder.fixed_exhausts_budget { "exhausts" } else { "COMPLETES" },
        if reorder.reordered_completes_budget { "completes" } else { "EXHAUSTS" },
    );

    if check {
        let mult4 = results
            .iter()
            .find(|m| m.name == "mult4")
            .expect("mult4 measured");
        let ok = mult4.miss_ratio >= 2.0 || mult4.speedup >= 1.5;
        if !ok {
            eprintln!(
                "check FAILED: mult4 miss reduction {:.2}x < 2.0x and speedup {:.2}x < 1.5x",
                mult4.miss_ratio, mult4.speedup
            );
            std::process::exit(1);
        }
        println!(
            "check ok: mult4 miss reduction {:.2}x, speedup {:.2}x",
            mult4.miss_ratio, mult4.speedup
        );
        if !reorder.fixed_exhausts_budget || !reorder.reordered_completes_budget {
            eprintln!(
                "check FAILED: mult8 under {} nodes — fixed order {} the budget \
                 (want exhaust), {REORDER_SPEC} {} (want complete); peaks {} vs {}",
                REORDER_NODE_BUDGET,
                if reorder.fixed_exhausts_budget { "exhausts" } else { "survives" },
                if reorder.reordered_completes_budget { "completes" } else { "exhausts" },
                reorder.fixed_peak,
                reorder.reordered_peak,
            );
            std::process::exit(1);
        }
        println!(
            "check ok: mult8 exact tier completes under {REORDER_NODE_BUDGET} nodes \
             only with {REORDER_SPEC} (peak {} vs fixed {})",
            reorder.reordered_peak, reorder.fixed_peak
        );
    }
}
