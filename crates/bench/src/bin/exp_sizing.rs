//! Regenerates exhibit E6: slack-based transistor sizing.
fn main() {
    println!("{}", bench::exps::circuit_level::sizing());
}
