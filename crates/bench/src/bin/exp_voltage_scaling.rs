//! Regenerates exhibit E14: transformations + voltage scaling.
fn main() {
    println!("{}", bench::exps::arch::voltage_scaling());
}
