//! Regenerates exhibit E11: retiming for low power.
fn main() {
    println!("{}", bench::exps::logic_seq::retiming());
}
