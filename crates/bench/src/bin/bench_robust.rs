//! `bench_robust` — cost of the resource-budget machinery.
//!
//! Emits `BENCH_robust.json` (override with the first argument) with two
//! sections:
//!
//! * **overhead** — each hot simulation path timed twice over the same
//!   workload: the infallible entry point versus the budget-guarded one
//!   with generous (never-tripping) limits, so the delta is purely the
//!   cost of the checks. The robustness contract targets < 3%.
//! * **tiers** — per circuit, the latency of each estimation tier of the
//!   degradation chain answering alone, plus a degraded end-to-end run
//!   (node-capped, so the exact tier fails first) to show what a fallback
//!   actually costs.
//! * **obs_overhead** — the same hot paths with the default (disabled)
//!   observability handle versus a fully enabled one collecting counters
//!   and shard gauges. The obs contract targets < 2%: instrumentation
//!   only ever runs at shard-merge boundaries, never per event.
//!
//! ```text
//! cargo run --release -p bench --bin bench_robust [out.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use lowpower::budget::ResourceBudget;
use lowpower::netlist::gen;
use lowpower::obs::Obs;
use lowpower::netlist::Netlist;
use lowpower::power::chain::{estimate_activity, ChainConfig, Tier};
use lowpower::sim::comb::CombSim;
use lowpower::sim::event::{DelayModel, EventSim};
use lowpower::sim::seq::SeqSim;
use lowpower::sim::stimulus::Stimulus;

/// Timed repetitions per point; the median is reported.
const REPS: usize = 9;
/// Untimed runs before measuring, so caches/allocators settle first.
const WARMUPS: usize = 2;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Median-of-N timing. The earlier min-of-5 scheme reported whichever run
/// caught the quietest scheduler moment, which made paired measurements
/// (guarded vs unguarded) non-comparable and produced nonsense negative
/// overhead percentages; the median is stable against both tail stalls and
/// lucky floors.
fn best(f: impl Fn()) -> f64 {
    for _ in 0..WARMUPS {
        f();
    }
    let mut samples = [0.0f64; REPS];
    for s in &mut samples {
        let start = Instant::now();
        f();
        *s = start.elapsed().as_secs_f64();
    }
    median(&mut samples)
}

/// Interleaved median-of-N for an overhead comparison: reps of `a` and `b`
/// alternate so clock ramps, cache state, and background load drift hit
/// both sides equally. Timing the two sides in separate back-to-back
/// blocks systematically favors whichever ran second (warmer), which is
/// where the old negative "overhead" numbers came from.
fn paired(a: impl Fn(), b: impl Fn()) -> (f64, f64) {
    for _ in 0..WARMUPS {
        a();
        b();
    }
    let mut sa = [0.0f64; REPS];
    let mut sb = [0.0f64; REPS];
    for i in 0..REPS {
        let start = Instant::now();
        a();
        sa[i] = start.elapsed().as_secs_f64();
        let start = Instant::now();
        b();
        sb[i] = start.elapsed().as_secs_f64();
    }
    (median(&mut sa), median(&mut sb))
}

/// Every limit set, none reachable: the checks run, the branches never
/// take, which is exactly the hot-path configuration the overhead target
/// is about.
fn generous() -> ResourceBudget {
    ResourceBudget::unlimited()
        .with_max_bdd_nodes(u64::MAX / 2)
        .with_max_event_queue(u64::MAX / 2)
        .with_max_sim_steps(u64::MAX / 2)
        .with_deadline_ms(3_600_000)
}

struct Overhead {
    name: &'static str,
    unguarded_secs: f64,
    guarded_secs: f64,
}

impl Overhead {
    fn percent(&self) -> f64 {
        100.0 * (self.guarded_secs - self.unguarded_secs) / self.unguarded_secs
    }
}

fn overheads() -> Vec<Overhead> {
    let budget = generous();
    let (wallace, _) = gen::wallace_multiplier(8);
    let (mult, _) = gen::array_multiplier(6);
    let pipe = gen::pipelined_multiplier(4);
    let wallace_pat = Stimulus::uniform(wallace.num_inputs()).patterns(4096, 5);
    let mult_pat = Stimulus::uniform(mult.num_inputs()).patterns(1024, 5);
    let pipe_pat = Stimulus::uniform(pipe.num_inputs()).patterns(2048, 5);

    let comb = CombSim::new(&wallace);
    // Analytic delays keep both runs on the event-queue engine: with a
    // uniform (unit) delay model the unguarded run takes the dense 64-lane
    // path that finite step/queue budgets are excluded from by design, and
    // the comparison would measure engine choice, not check cost.
    let event = EventSim::new(&mult, &DelayModel::Analytic { resolution: 4 });
    let seq = SeqSim::new(&pipe);

    let (comb_un, comb_g) = paired(
        || {
            comb.activity_jobs(&wallace_pat, 1);
        },
        || {
            comb.try_activity_jobs(&wallace_pat, 1, &budget).unwrap();
        },
    );
    let (event_un, event_g) = paired(
        || {
            event.activity_jobs(&mult_pat, 1);
        },
        || {
            event.try_activity_jobs(&mult_pat, 1, &budget).unwrap();
        },
    );
    let (seq_un, seq_g) = paired(
        || {
            seq.activity_jobs(&pipe_pat, 1);
        },
        || {
            seq.try_activity_jobs(&pipe_pat, 1, &budget).unwrap();
        },
    );
    vec![
        Overhead {
            name: "comb/wallace_multiplier_8",
            unguarded_secs: comb_un,
            guarded_secs: comb_g,
        },
        Overhead {
            name: "event/array_multiplier_6",
            unguarded_secs: event_un,
            guarded_secs: event_g,
        },
        Overhead {
            name: "seq/pipelined_multiplier_4",
            unguarded_secs: seq_un,
            guarded_secs: seq_g,
        },
    ]
}

struct ObsOverhead {
    name: &'static str,
    disabled_secs: f64,
    enabled_secs: f64,
}

impl ObsOverhead {
    fn percent(&self) -> f64 {
        100.0 * (self.enabled_secs - self.disabled_secs) / self.disabled_secs
    }
}

/// The cost of observability on the unguarded hot paths: the default
/// handle (one null check per boundary) versus an enabled handle feeding
/// counters and gauges every run.
fn obs_overheads() -> Vec<ObsOverhead> {
    let (wallace, _) = gen::wallace_multiplier(8);
    let (mult, _) = gen::array_multiplier(6);
    let pipe = gen::pipelined_multiplier(4);
    let wallace_pat = Stimulus::uniform(wallace.num_inputs()).patterns(4096, 5);
    let mult_pat = Stimulus::uniform(mult.num_inputs()).patterns(1024, 5);
    let pipe_pat = Stimulus::uniform(pipe.num_inputs()).patterns(2048, 5);

    let obs = Obs::enabled();
    let comb = CombSim::new(&wallace);
    let comb_obs = CombSim::new(&wallace).with_obs(obs.clone());
    let event = EventSim::new(&mult, &DelayModel::Unit);
    let event_obs = EventSim::new(&mult, &DelayModel::Unit).with_obs(obs.clone());
    let seq = SeqSim::new(&pipe);
    let seq_obs = SeqSim::new(&pipe).with_obs(obs);

    let (comb_off, comb_on) = paired(
        || {
            comb.activity_jobs(&wallace_pat, 1);
        },
        || {
            comb_obs.activity_jobs(&wallace_pat, 1);
        },
    );
    let (event_off, event_on) = paired(
        || {
            event.activity_jobs(&mult_pat, 1);
        },
        || {
            event_obs.activity_jobs(&mult_pat, 1);
        },
    );
    let (seq_off, seq_on) = paired(
        || {
            seq.activity_jobs(&pipe_pat, 1);
        },
        || {
            seq_obs.activity_jobs(&pipe_pat, 1);
        },
    );
    vec![
        ObsOverhead {
            name: "comb/wallace_multiplier_8",
            disabled_secs: comb_off,
            enabled_secs: comb_on,
        },
        ObsOverhead {
            name: "event/array_multiplier_6",
            disabled_secs: event_off,
            enabled_secs: event_on,
        },
        ObsOverhead {
            name: "seq/pipelined_multiplier_4",
            disabled_secs: seq_off,
            enabled_secs: seq_on,
        },
    ]
}

struct TierLatency {
    circuit: &'static str,
    exact_secs: f64,
    prob_secs: f64,
    sampled_secs: f64,
    /// End-to-end with a 256-node cap: exact fails, the chain degrades.
    degraded_secs: f64,
    degraded_tier: &'static str,
}

fn tier_cfg(tiers: Vec<Tier>) -> ChainConfig {
    ChainConfig {
        tiers,
        sample_cycles: 1024,
        ..ChainConfig::default()
    }
}

fn tier_latency(circuit: &'static str, nl: &Netlist) -> TierLatency {
    let unlimited = ResourceBudget::unlimited();
    let capped = ResourceBudget::unlimited().with_max_bdd_nodes(256);
    let degraded_tier = estimate_activity(nl, &capped, &tier_cfg(vec![
        Tier::ExactBdd,
        Tier::Probabilistic,
        Tier::SampledSim,
    ]))
    .map(|est| est.tier.name())
    .unwrap_or("exhausted");
    TierLatency {
        circuit,
        exact_secs: best(|| {
            let _ = estimate_activity(nl, &unlimited, &tier_cfg(vec![Tier::ExactBdd]));
        }),
        prob_secs: best(|| {
            let _ = estimate_activity(nl, &unlimited, &tier_cfg(vec![Tier::Probabilistic]));
        }),
        sampled_secs: best(|| {
            let _ = estimate_activity(nl, &unlimited, &tier_cfg(vec![Tier::SampledSim]));
        }),
        degraded_secs: best(|| {
            let _ = estimate_activity(nl, &capped, &tier_cfg(vec![
                Tier::ExactBdd,
                Tier::Probabilistic,
                Tier::SampledSim,
            ]));
        }),
        degraded_tier,
    }
}

fn tiers() -> Vec<TierLatency> {
    let (adder, _) = gen::ripple_adder(8);
    let (mult, _) = gen::array_multiplier(6);
    let parity = gen::parity_tree(12);
    vec![
        tier_latency("ripple_adder_8", &adder),
        tier_latency("array_multiplier_6", &mult),
        tier_latency("parity_tree_12", &parity),
    ]
}

fn to_json(loads: &[Overhead], obs_loads: &[ObsOverhead], lats: &[TierLatency]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"robust\",\n  \"overhead_target_percent\": 3.0,\n");
    out.push_str("  \"obs_overhead_target_percent\": 2.0,\n");
    out.push_str("  \"overhead\": [\n");
    for (i, o) in loads.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"unguarded_seconds\": {:.6}, \"guarded_seconds\": {:.6}, \
             \"overhead_percent\": {:.2}}}",
            o.name, o.unguarded_secs, o.guarded_secs, o.percent()
        );
        out.push_str(if i + 1 < loads.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"obs_overhead\": [\n");
    for (i, o) in obs_loads.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"disabled_seconds\": {:.6}, \"enabled_seconds\": {:.6}, \
             \"obs_overhead_percent\": {:.2}}}",
            o.name, o.disabled_secs, o.enabled_secs, o.percent()
        );
        out.push_str(if i + 1 < obs_loads.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"fallback_tiers\": [\n");
    for (i, t) in lats.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"circuit\": \"{}\", \"exact_bdd_seconds\": {:.6}, \
             \"probabilistic_seconds\": {:.6}, \"sampled_sim_seconds\": {:.6}, \
             \"degraded_seconds\": {:.6}, \"degraded_answering_tier\": \"{}\"}}",
            t.circuit, t.exact_secs, t.prob_secs, t.sampled_secs, t.degraded_secs,
            t.degraded_tier
        );
        out.push_str(if i + 1 < lats.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_robust.json".into());
    let loads = overheads();
    let obs_loads = obs_overheads();
    let lats = tiers();
    let json = to_json(&loads, &obs_loads, &lats);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("wrote {out_path}");
    for o in &loads {
        println!(
            "  {:<28} unguarded {:.3} ms, guarded {:.3} ms, overhead {:+.2}%",
            o.name,
            1e3 * o.unguarded_secs,
            1e3 * o.guarded_secs,
            o.percent()
        );
    }
    for o in &obs_loads {
        println!(
            "  {:<28} obs off {:.3} ms, obs on {:.3} ms, overhead {:+.2}%",
            o.name,
            1e3 * o.disabled_secs,
            1e3 * o.enabled_secs,
            o.percent()
        );
    }
    for t in &lats {
        println!(
            "  {:<20} exact {:.3} ms | prob {:.3} ms | sampled {:.3} ms | degraded {:.3} ms -> {}",
            t.circuit,
            1e3 * t.exact_secs,
            1e3 * t.prob_secs,
            1e3 * t.sampled_secs,
            1e3 * t.degraded_secs,
            t.degraded_tier
        );
    }
}
