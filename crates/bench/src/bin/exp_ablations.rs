//! Regenerates exhibit EA: ablations of the framework's design choices.
fn main() {
    println!("{}", bench::exps::ablations::ablations());
}
