//! `bench_json` — machine-readable serial-vs-parallel throughput harness.
//!
//! Emits `BENCH_sim.json` (override with the first non-flag argument): for
//! each simulator workload, the wall-clock seconds, patterns/second, and
//! speedup-vs-serial at several worker-thread counts, plus a bit-identity
//! check of the parallel activity profiles against the serial run. The
//! host core count is recorded and every run notes whether it was
//! oversubscribed (`jobs > host_cores`), so a single-core CI run is
//! self-describing — speedups above 1x only appear when the host actually
//! has the cores.
//!
//! The event workloads also record the engine's obs counters from a
//! serial run. Their **work ratio** — events actually processed per unit
//! of event work the pre-calendar-queue engine would have enqueued
//! (`processed / (processed + coalesced)`) — is deterministic: it depends
//! only on the netlist and pattern stream, never on machine speed.
//!
//! ```text
//! cargo run --release -p bench --bin bench_json [out.json] [--check]
//! ```
//!
//! With `--check` the harness exits nonzero if any parallel run diverges
//! bitwise from serial, if an event counter invariant breaks
//! (`processed == enqueued`, `cancelled <= processed`), or if the event
//! engine loses its rewrite win: work ratio above [`MAX_WORK_RATIO`]
//! without the wall-clock rescue of [`RESCUE_PATTERNS_PER_SEC`]. The
//! deterministic ratio is the primary criterion — it is meaningful on a
//! noisy CI box where timings are not. The comb workloads also time a
//! serial run with the scalar `u64` reference path
//! (`with_scalar_reference(true)`): the wide/scalar throughput **ratio**
//! compares two runs on the same machine in the same process, so like the
//! work ratio it survives slow CI hardware, and on the primary wallace
//! workload it must clear [`MIN_WIDE_RATIO`] (wall-clock rescue:
//! [`WIDE_RESCUE_PATTERNS_PER_SEC`]). The `--jobs 4` speedup gate
//! [`MIN_SPEEDUP_4CORE`] fires only when that run actually had 4 cores to
//! itself (`oversubscribed: false`).

use std::fmt::Write as _;
use std::time::Instant;

use lowpower::netlist::gen;
use lowpower::obs::Obs;
use lowpower::sim::comb::CombSim;
use lowpower::sim::event::{DelayModel, EventSim};
use lowpower::sim::seq::SeqSim;
use lowpower::sim::stimulus::{PatternSet, Stimulus};
use lowpower::sim::ActivityProfile;

/// Thread counts swept per workload (independent of the host core count:
/// oversubscribed runs still complete and stay bit-identical).
const JOBS: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per point; the minimum is reported.
const REPS: usize = 3;

/// `--check`: highest acceptable event work ratio. Measured ~0.59 on the
/// glitch workload and ~0.57 on the balanced adder (the calendar queue's
/// coalescing + no-change suppression absorb the rest of the old engine's
/// event traffic); 0.75 leaves headroom without letting the win erode to
/// nothing.
const MAX_WORK_RATIO: f64 = 0.75;

/// `--check`: wall-clock rescue for a work-ratio miss — the ROADMAP bar is
/// >=10x the pre-rewrite engine's ~38k patterns/s on the glitch workload.
const RESCUE_PATTERNS_PER_SEC: f64 = 380_000.0;

/// `--check`: required `--jobs 4` speedup, enforced only when the 4-job
/// run was not oversubscribed (an oversubscribed sweep says nothing
/// about sharding).
const MIN_SPEEDUP_4CORE: f64 = 1.5;

/// `--check`: required serial wide/scalar throughput ratio on the
/// primary comb workload (`comb/wallace_multiplier_8`). The 256-bit path
/// evaluates four blocks per sweep; 2x leaves room for memory-bound
/// netlists while still proving the lanes are engaged. Ratio of two runs
/// in the same process, so it is robust to slow CI hardware.
const MIN_WIDE_RATIO: f64 = 2.0;

/// `--check`: wall-clock rescue for a wide-ratio miss — 2.5x the
/// pre-wide committed wallace baseline of ~15.2M patterns/s. A host fast
/// enough to clear this absolute bar has nothing to prove about lanes.
const WIDE_RESCUE_PATTERNS_PER_SEC: f64 = 38_000_000.0;

/// Workload gated by [`MIN_WIDE_RATIO`].
const WIDE_PRIMARY_WORKLOAD: &str = "comb/wallace_multiplier_8";

struct Run {
    jobs: usize,
    seconds: f64,
    patterns_per_sec: f64,
    speedup: f64,
    bit_identical: bool,
    /// More workers than host cores: timing reflects oversubscription,
    /// not sharding quality.
    oversubscribed: bool,
}

/// Serial-run obs counters for an event workload.
struct EventStats {
    processed: u64,
    enqueued: u64,
    cancelled: u64,
    coalesced: u64,
    /// `processed / (processed + coalesced)`: events carried per event the
    /// old heap engine would have enqueued. Deterministic.
    work_ratio: f64,
}

/// Serial wide-vs-scalar comparison for a comb workload.
struct WideStats {
    /// Serial throughput with the scalar `u64` reference path forced.
    scalar_patterns_per_sec: f64,
    /// Serial wide throughput / scalar throughput (same process, same
    /// machine — robust to absolute host speed).
    ratio: f64,
}

struct Workload {
    name: &'static str,
    patterns: usize,
    runs: Vec<Run>,
    events: Option<EventStats>,
    wide: Option<WideStats>,
}

/// Exact bit pattern of a profile: the determinism contract is that these
/// match for every thread count, not merely agree to within epsilon.
fn profile_bits(p: &ActivityProfile) -> Vec<u64> {
    p.toggles
        .iter()
        .chain(p.probability.iter())
        .map(|x| x.to_bits())
        .collect()
}

/// Warm up once, then report (best-of-REPS seconds, last profile).
fn time(f: impl Fn() -> ActivityProfile) -> (f64, ActivityProfile) {
    let mut profile = f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        profile = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, profile)
}

fn measure(
    name: &'static str,
    patterns: usize,
    host_cores: usize,
    f: impl Fn(usize) -> ActivityProfile,
) -> Workload {
    let (serial_secs, serial_profile) = time(|| f(1));
    let serial_bits = profile_bits(&serial_profile);
    let runs = JOBS
        .iter()
        .map(|&jobs| {
            let (seconds, profile) = if jobs == 1 {
                (serial_secs, serial_profile.clone())
            } else {
                time(|| f(jobs))
            };
            Run {
                jobs,
                seconds,
                patterns_per_sec: patterns as f64 / seconds,
                speedup: serial_secs / seconds,
                bit_identical: profile_bits(&profile) == serial_bits,
                oversubscribed: jobs > host_cores,
            }
        })
        .collect();
    Workload { name, patterns, runs, events: None, wide: None }
}

/// One serial obs-enabled run to collect the event engine's counters.
fn event_stats(nl: &lowpower::netlist::Netlist, patterns: &PatternSet) -> EventStats {
    let obs = Obs::enabled();
    let sim = EventSim::new(nl, &DelayModel::Unit).with_obs(obs.clone());
    let _ = sim.activity_jobs(patterns, 1);
    let snap = obs.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let (processed, coalesced) = (counter("sim.event.processed"), counter("sim.event.coalesced"));
    EventStats {
        processed,
        enqueued: counter("sim.event.enqueued"),
        cancelled: counter("sim.event.cancelled"),
        coalesced,
        work_ratio: processed as f64 / (processed + coalesced).max(1) as f64,
    }
}

fn workloads(host_cores: usize) -> Vec<Workload> {
    let cycles = 4096;
    let (wallace, _) = gen::wallace_multiplier(8);
    let (ks, _) = gen::kogge_stone_adder(16);
    let (mult, _) = gen::array_multiplier(6);
    let pipe = gen::pipelined_multiplier(4);

    let wallace_pat = Stimulus::uniform(wallace.num_inputs()).patterns(cycles, 5);
    let ks_pat = Stimulus::uniform(ks.num_inputs()).patterns(cycles, 5);
    let glitch_pat = Stimulus::uniform(mult.num_inputs()).patterns(cycles / 4, 5);
    let event_ks_pat = Stimulus::uniform(ks.num_inputs()).patterns(cycles / 4, 5);
    let seq_pat = Stimulus::uniform(pipe.num_inputs()).patterns(cycles / 2, 5);

    let comb_wallace = CombSim::new(&wallace);
    let comb_ks = CombSim::new(&ks);
    let event_mult = EventSim::new(&mult, &DelayModel::Unit);
    let event_ks = EventSim::new(&ks, &DelayModel::Unit);
    let seq_pipe = SeqSim::new(&pipe);

    let mut loads = vec![
        measure("comb/wallace_multiplier_8", wallace_pat.len(), host_cores, |jobs| {
            comb_wallace.activity_jobs(&wallace_pat, jobs)
        }),
        measure("comb/kogge_stone_adder_16", ks_pat.len(), host_cores, |jobs| {
            comb_ks.activity_jobs(&ks_pat, jobs)
        }),
        // The glitch workload: event-driven timing simulation of an
        // unbalanced array multiplier, where most events are spurious.
        measure("event_glitch/array_multiplier_6", glitch_pat.len(), host_cores, |jobs| {
            event_mult.activity_jobs(&glitch_pat, jobs).total
        }),
        measure("event/kogge_stone_adder_16", event_ks_pat.len(), host_cores, |jobs| {
            event_ks.activity_jobs(&event_ks_pat, jobs).total
        }),
        measure("seq/pipelined_multiplier_4", seq_pat.len(), host_cores, |jobs| {
            seq_pipe.activity_jobs(&seq_pat, jobs).profile
        }),
    ];
    for wl in &mut loads {
        match wl.name {
            "event_glitch/array_multiplier_6" => wl.events = Some(event_stats(&mult, &glitch_pat)),
            "event/kogge_stone_adder_16" => wl.events = Some(event_stats(&ks, &event_ks_pat)),
            _ => {}
        }
    }
    // Serial wide-vs-scalar ratio on the comb workloads: same netlist,
    // same stream, scalar `u64` reference path forced in-process. The two
    // sides are timed interleaved, back to back, best-of-many — a comb
    // rep is sub-millisecond, so measuring the sides minutes apart (as
    // reusing the main sweep's serial time would) lets box-level drift
    // pollute the ratio the gate rides on.
    let scalar_wallace = CombSim::new(&wallace).with_scalar_reference(true);
    let scalar_ks = CombSim::new(&ks).with_scalar_reference(true);
    for (name, scalar_sim, wide_sim, pat) in [
        ("comb/wallace_multiplier_8", &scalar_wallace, &comb_wallace, &wallace_pat),
        ("comb/kogge_stone_adder_16", &scalar_ks, &comb_ks, &ks_pat),
    ] {
        // Pre-pack once: pattern packing costs the same on both sides and
        // would only dilute the evaluation ratio the gate is about.
        let packed = lowpower::sim::stimulus::PackedPatterns::pack(pat);
        let _ = (scalar_sim.activity_packed(&packed), wide_sim.activity_packed(&packed));
        let (mut wide_secs, mut scalar_secs) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..4 * REPS {
            let start = Instant::now();
            let _ = wide_sim.activity_packed(&packed);
            wide_secs = wide_secs.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            let _ = scalar_sim.activity_packed(&packed);
            scalar_secs = scalar_secs.min(start.elapsed().as_secs_f64());
        }
        let scalar_pps = pat.len() as f64 / scalar_secs;
        if let Some(wl) = loads.iter_mut().find(|wl| wl.name == name) {
            wl.wide = Some(WideStats {
                scalar_patterns_per_sec: scalar_pps,
                ratio: scalar_secs / wide_secs,
            });
        }
    }
    loads
}

fn to_json(host_cores: usize, loads: &[Workload]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"sim\",");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        out,
        "  \"jobs_swept\": [{}],",
        JOBS.map(|j| j.to_string()).join(",")
    );
    out.push_str("  \"workloads\": [\n");
    for (w, wl) in loads.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", wl.name);
        let _ = writeln!(out, "      \"patterns\": {},", wl.patterns);
        if let Some(ev) = &wl.events {
            let _ = writeln!(
                out,
                "      \"events\": {{\"processed\": {}, \"enqueued\": {}, \"cancelled\": {}, \
                 \"coalesced\": {}, \"work_ratio\": {:.4}}},",
                ev.processed, ev.enqueued, ev.cancelled, ev.coalesced, ev.work_ratio
            );
        }
        if let Some(w) = &wl.wide {
            let _ = writeln!(
                out,
                "      \"wide\": {{\"scalar_patterns_per_sec\": {:.1}, \"ratio\": {:.3}}},",
                w.scalar_patterns_per_sec, w.ratio
            );
        }
        out.push_str("      \"runs\": [\n");
        for (r, run) in wl.runs.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"jobs\": {}, \"seconds\": {:.6}, \"patterns_per_sec\": {:.1}, \
                 \"speedup\": {:.3}, \"bit_identical\": {}, \"oversubscribed\": {}}}",
                run.jobs,
                run.seconds,
                run.patterns_per_sec,
                run.speedup,
                run.bit_identical,
                run.oversubscribed
            );
            out.push_str(if r + 1 < wl.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if w + 1 < loads.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_sim.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let loads = workloads(host_cores);
    let json = to_json(host_cores, &loads);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("wrote {out_path} (host cores: {host_cores})");
    for wl in &loads {
        let serial = wl.runs[0].patterns_per_sec;
        let best = wl
            .runs
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .expect("runs nonempty");
        let deterministic = wl.runs.iter().all(|r| r.bit_identical);
        println!(
            "  {:<36} {:>10.0} pat/s serial, best {:.2}x at {} jobs, bit-identical: {}",
            wl.name, serial, best.speedup, best.jobs, deterministic
        );
        if let Some(ev) = &wl.events {
            println!(
                "  {:<36} {:>10} events processed, work ratio {:.3}",
                "", ev.processed, ev.work_ratio
            );
        }
        if let Some(w) = &wl.wide {
            println!(
                "  {:<36} {:>10.0} pat/s scalar reference, wide ratio {:.2}x",
                "", w.scalar_patterns_per_sec, w.ratio
            );
        }
    }

    if check {
        let mut ok = true;
        for wl in &loads {
            for run in &wl.runs {
                if !run.bit_identical {
                    eprintln!(
                        "check FAILED: {} at {} jobs diverged bitwise from serial",
                        wl.name, run.jobs
                    );
                    ok = false;
                }
            }
            if let Some(ev) = &wl.events {
                if ev.processed != ev.enqueued {
                    eprintln!(
                        "check FAILED: {} processed {} != enqueued {}",
                        wl.name, ev.processed, ev.enqueued
                    );
                    ok = false;
                }
                if ev.cancelled > ev.processed {
                    eprintln!(
                        "check FAILED: {} cancelled {} > processed {}",
                        wl.name, ev.cancelled, ev.processed
                    );
                    ok = false;
                }
                // Deterministic work ratio is primary; wall clock rescues
                // a run on a machine with different constant factors.
                let serial = wl.runs[0].patterns_per_sec;
                if ev.work_ratio > MAX_WORK_RATIO && serial < RESCUE_PATTERNS_PER_SEC {
                    eprintln!(
                        "check FAILED: {} work ratio {:.3} > {MAX_WORK_RATIO} and serial \
                         {serial:.0} pat/s < {RESCUE_PATTERNS_PER_SEC:.0}",
                        wl.name, ev.work_ratio
                    );
                    ok = false;
                }
            }
            if let Some(w) = &wl.wide {
                // Like the work ratio, the wide ratio compares two runs
                // on the same host, so it is the primary criterion; the
                // absolute bar rescues machines whose memory system (not
                // ALU width) bounds the packed sweep.
                let serial = wl.runs[0].patterns_per_sec;
                if wl.name == WIDE_PRIMARY_WORKLOAD
                    && w.ratio < MIN_WIDE_RATIO
                    && serial < WIDE_RESCUE_PATTERNS_PER_SEC
                {
                    eprintln!(
                        "check FAILED: {} wide/scalar ratio {:.2}x < {MIN_WIDE_RATIO}x and \
                         serial {serial:.0} pat/s < {WIDE_RESCUE_PATTERNS_PER_SEC:.0}",
                        wl.name, w.ratio
                    );
                    ok = false;
                }
            }
            // Only a non-oversubscribed 4-job run says anything about
            // sharding quality; on smaller hosts the run still executes
            // (bit-identity above) but its timing is not gated.
            if let Some(run4) = wl.runs.iter().find(|r| r.jobs == 4 && !r.oversubscribed) {
                if run4.speedup < MIN_SPEEDUP_4CORE {
                    eprintln!(
                        "check FAILED: {} speedup {:.2}x at 4 jobs < {MIN_SPEEDUP_4CORE}x \
                         on a {host_cores}-core host",
                        wl.name, run4.speedup
                    );
                    ok = false;
                }
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "check ok: event rewrite holds its win, wide lanes engaged, shards stay bit-identical"
        );
    }
}
