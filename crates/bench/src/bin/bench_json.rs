//! `bench_json` — machine-readable serial-vs-parallel throughput harness.
//!
//! Emits `BENCH_sim.json` (override with the first argument): for each
//! simulator workload, the wall-clock seconds, patterns/second, and
//! speedup-vs-serial at several worker-thread counts, plus a bit-identity
//! check of the parallel activity profiles against the serial run. The
//! host core count is recorded so a single-core CI run is self-describing
//! — speedups above 1x only appear when the host actually has the cores.
//!
//! ```text
//! cargo run --release -p bench --bin bench_json [out.json]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use lowpower::netlist::gen;
use lowpower::sim::comb::CombSim;
use lowpower::sim::event::{DelayModel, EventSim};
use lowpower::sim::seq::SeqSim;
use lowpower::sim::stimulus::Stimulus;
use lowpower::sim::ActivityProfile;

/// Thread counts swept per workload (independent of the host core count:
/// oversubscribed runs still complete and stay bit-identical).
const JOBS: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per point; the minimum is reported.
const REPS: usize = 3;

struct Run {
    jobs: usize,
    seconds: f64,
    patterns_per_sec: f64,
    speedup: f64,
    bit_identical: bool,
}

struct Workload {
    name: &'static str,
    patterns: usize,
    runs: Vec<Run>,
}

/// Exact bit pattern of a profile: the determinism contract is that these
/// match for every thread count, not merely agree to within epsilon.
fn profile_bits(p: &ActivityProfile) -> Vec<u64> {
    p.toggles
        .iter()
        .chain(p.probability.iter())
        .map(|x| x.to_bits())
        .collect()
}

/// Warm up once, then report (best-of-REPS seconds, last profile).
fn time(f: impl Fn() -> ActivityProfile) -> (f64, ActivityProfile) {
    let mut profile = f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        profile = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, profile)
}

fn measure(name: &'static str, patterns: usize, f: impl Fn(usize) -> ActivityProfile) -> Workload {
    let (serial_secs, serial_profile) = time(|| f(1));
    let serial_bits = profile_bits(&serial_profile);
    let runs = JOBS
        .iter()
        .map(|&jobs| {
            let (seconds, profile) = if jobs == 1 {
                (serial_secs, serial_profile.clone())
            } else {
                time(|| f(jobs))
            };
            Run {
                jobs,
                seconds,
                patterns_per_sec: patterns as f64 / seconds,
                speedup: serial_secs / seconds,
                bit_identical: profile_bits(&profile) == serial_bits,
            }
        })
        .collect();
    Workload { name, patterns, runs }
}

fn workloads() -> Vec<Workload> {
    let cycles = 4096;
    let (wallace, _) = gen::wallace_multiplier(8);
    let (ks, _) = gen::kogge_stone_adder(16);
    let (mult, _) = gen::array_multiplier(6);
    let pipe = gen::pipelined_multiplier(4);

    let wallace_pat = Stimulus::uniform(wallace.num_inputs()).patterns(cycles, 5);
    let ks_pat = Stimulus::uniform(ks.num_inputs()).patterns(cycles, 5);
    let glitch_pat = Stimulus::uniform(mult.num_inputs()).patterns(cycles / 4, 5);
    let event_ks_pat = Stimulus::uniform(ks.num_inputs()).patterns(cycles / 4, 5);
    let seq_pat = Stimulus::uniform(pipe.num_inputs()).patterns(cycles / 2, 5);

    let comb_wallace = CombSim::new(&wallace);
    let comb_ks = CombSim::new(&ks);
    let event_mult = EventSim::new(&mult, &DelayModel::Unit);
    let event_ks = EventSim::new(&ks, &DelayModel::Unit);
    let seq_pipe = SeqSim::new(&pipe);

    vec![
        measure("comb/wallace_multiplier_8", wallace_pat.len(), |jobs| {
            comb_wallace.activity_jobs(&wallace_pat, jobs)
        }),
        measure("comb/kogge_stone_adder_16", ks_pat.len(), |jobs| {
            comb_ks.activity_jobs(&ks_pat, jobs)
        }),
        // The glitch workload: event-driven timing simulation of an
        // unbalanced array multiplier, where most events are spurious.
        measure("event_glitch/array_multiplier_6", glitch_pat.len(), |jobs| {
            event_mult.activity_jobs(&glitch_pat, jobs).total
        }),
        measure("event/kogge_stone_adder_16", event_ks_pat.len(), |jobs| {
            event_ks.activity_jobs(&event_ks_pat, jobs).total
        }),
        measure("seq/pipelined_multiplier_4", seq_pat.len(), |jobs| {
            seq_pipe.activity_jobs(&seq_pat, jobs).profile
        }),
    ]
}

fn to_json(host_cores: usize, loads: &[Workload]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"sim\",");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        out,
        "  \"jobs_swept\": [{}],",
        JOBS.map(|j| j.to_string()).join(",")
    );
    out.push_str("  \"workloads\": [\n");
    for (w, wl) in loads.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", wl.name);
        let _ = writeln!(out, "      \"patterns\": {},", wl.patterns);
        out.push_str("      \"runs\": [\n");
        for (r, run) in wl.runs.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"jobs\": {}, \"seconds\": {:.6}, \"patterns_per_sec\": {:.1}, \
                 \"speedup\": {:.3}, \"bit_identical\": {}}}",
                run.jobs, run.seconds, run.patterns_per_sec, run.speedup, run.bit_identical
            );
            out.push_str(if r + 1 < wl.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if w + 1 < loads.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_sim.json".into());
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let loads = workloads();
    let json = to_json(host_cores, &loads);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("wrote {out_path} (host cores: {host_cores})");
    for wl in &loads {
        let serial = wl.runs[0].patterns_per_sec;
        let best = wl
            .runs
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .expect("runs nonempty");
        let deterministic = wl.runs.iter().all(|r| r.bit_identical);
        println!(
            "  {:<36} {:>10.0} pat/s serial, best {:.2}x at {} jobs, bit-identical: {}",
            wl.name, serial, best.speedup, best.jobs, deterministic
        );
    }
}
