//! `bench_json` — machine-readable serial-vs-parallel throughput harness.
//!
//! Emits `BENCH_sim.json` (override with the first non-flag argument): for
//! each simulator workload, the wall-clock seconds, patterns/second, and
//! speedup-vs-serial at several worker-thread counts, plus a bit-identity
//! check of the parallel activity profiles against the serial run. The
//! host core count is recorded and every run notes whether it was
//! oversubscribed (`jobs > host_cores`), so a single-core CI run is
//! self-describing — speedups above 1x only appear when the host actually
//! has the cores.
//!
//! The event workloads also record the engine's obs counters from a
//! serial run. Their **work ratio** — events actually processed per unit
//! of event work the pre-calendar-queue engine would have enqueued
//! (`processed / (processed + coalesced)`) — is deterministic: it depends
//! only on the netlist and pattern stream, never on machine speed.
//!
//! ```text
//! cargo run --release -p bench --bin bench_json [out.json] [--check]
//! ```
//!
//! With `--check` the harness exits nonzero if any parallel run diverges
//! bitwise from serial, if an event counter invariant breaks
//! (`processed == enqueued`, `cancelled <= processed`), or if the event
//! engine loses its rewrite win: work ratio above [`MAX_WORK_RATIO`]
//! without the wall-clock rescue of [`RESCUE_PATTERNS_PER_SEC`]. The
//! deterministic ratio is the primary criterion — it is meaningful on a
//! noisy CI box where timings are not. On hosts with 4+ cores the
//! `--jobs 4` speedup must also clear [`MIN_SPEEDUP_4CORE`].

use std::fmt::Write as _;
use std::time::Instant;

use lowpower::netlist::gen;
use lowpower::obs::Obs;
use lowpower::sim::comb::CombSim;
use lowpower::sim::event::{DelayModel, EventSim};
use lowpower::sim::seq::SeqSim;
use lowpower::sim::stimulus::{PatternSet, Stimulus};
use lowpower::sim::ActivityProfile;

/// Thread counts swept per workload (independent of the host core count:
/// oversubscribed runs still complete and stay bit-identical).
const JOBS: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per point; the minimum is reported.
const REPS: usize = 3;

/// `--check`: highest acceptable event work ratio. Measured ~0.59 on the
/// glitch workload and ~0.57 on the balanced adder (the calendar queue's
/// coalescing + no-change suppression absorb the rest of the old engine's
/// event traffic); 0.75 leaves headroom without letting the win erode to
/// nothing.
const MAX_WORK_RATIO: f64 = 0.75;

/// `--check`: wall-clock rescue for a work-ratio miss — the ROADMAP bar is
/// >=10x the pre-rewrite engine's ~38k patterns/s on the glitch workload.
const RESCUE_PATTERNS_PER_SEC: f64 = 380_000.0;

/// `--check`: required `--jobs 4` speedup, enforced only when the host
/// has at least 4 cores (an oversubscribed sweep says nothing about
/// sharding).
const MIN_SPEEDUP_4CORE: f64 = 1.5;

struct Run {
    jobs: usize,
    seconds: f64,
    patterns_per_sec: f64,
    speedup: f64,
    bit_identical: bool,
    /// More workers than host cores: timing reflects oversubscription,
    /// not sharding quality.
    oversubscribed: bool,
}

/// Serial-run obs counters for an event workload.
struct EventStats {
    processed: u64,
    enqueued: u64,
    cancelled: u64,
    coalesced: u64,
    /// `processed / (processed + coalesced)`: events carried per event the
    /// old heap engine would have enqueued. Deterministic.
    work_ratio: f64,
}

struct Workload {
    name: &'static str,
    patterns: usize,
    runs: Vec<Run>,
    events: Option<EventStats>,
}

/// Exact bit pattern of a profile: the determinism contract is that these
/// match for every thread count, not merely agree to within epsilon.
fn profile_bits(p: &ActivityProfile) -> Vec<u64> {
    p.toggles
        .iter()
        .chain(p.probability.iter())
        .map(|x| x.to_bits())
        .collect()
}

/// Warm up once, then report (best-of-REPS seconds, last profile).
fn time(f: impl Fn() -> ActivityProfile) -> (f64, ActivityProfile) {
    let mut profile = f();
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        profile = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, profile)
}

fn measure(
    name: &'static str,
    patterns: usize,
    host_cores: usize,
    f: impl Fn(usize) -> ActivityProfile,
) -> Workload {
    let (serial_secs, serial_profile) = time(|| f(1));
    let serial_bits = profile_bits(&serial_profile);
    let runs = JOBS
        .iter()
        .map(|&jobs| {
            let (seconds, profile) = if jobs == 1 {
                (serial_secs, serial_profile.clone())
            } else {
                time(|| f(jobs))
            };
            Run {
                jobs,
                seconds,
                patterns_per_sec: patterns as f64 / seconds,
                speedup: serial_secs / seconds,
                bit_identical: profile_bits(&profile) == serial_bits,
                oversubscribed: jobs > host_cores,
            }
        })
        .collect();
    Workload { name, patterns, runs, events: None }
}

/// One serial obs-enabled run to collect the event engine's counters.
fn event_stats(nl: &lowpower::netlist::Netlist, patterns: &PatternSet) -> EventStats {
    let obs = Obs::enabled();
    let sim = EventSim::new(nl, &DelayModel::Unit).with_obs(obs.clone());
    let _ = sim.activity_jobs(patterns, 1);
    let snap = obs.snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let (processed, coalesced) = (counter("sim.event.processed"), counter("sim.event.coalesced"));
    EventStats {
        processed,
        enqueued: counter("sim.event.enqueued"),
        cancelled: counter("sim.event.cancelled"),
        coalesced,
        work_ratio: processed as f64 / (processed + coalesced).max(1) as f64,
    }
}

fn workloads(host_cores: usize) -> Vec<Workload> {
    let cycles = 4096;
    let (wallace, _) = gen::wallace_multiplier(8);
    let (ks, _) = gen::kogge_stone_adder(16);
    let (mult, _) = gen::array_multiplier(6);
    let pipe = gen::pipelined_multiplier(4);

    let wallace_pat = Stimulus::uniform(wallace.num_inputs()).patterns(cycles, 5);
    let ks_pat = Stimulus::uniform(ks.num_inputs()).patterns(cycles, 5);
    let glitch_pat = Stimulus::uniform(mult.num_inputs()).patterns(cycles / 4, 5);
    let event_ks_pat = Stimulus::uniform(ks.num_inputs()).patterns(cycles / 4, 5);
    let seq_pat = Stimulus::uniform(pipe.num_inputs()).patterns(cycles / 2, 5);

    let comb_wallace = CombSim::new(&wallace);
    let comb_ks = CombSim::new(&ks);
    let event_mult = EventSim::new(&mult, &DelayModel::Unit);
    let event_ks = EventSim::new(&ks, &DelayModel::Unit);
    let seq_pipe = SeqSim::new(&pipe);

    let mut loads = vec![
        measure("comb/wallace_multiplier_8", wallace_pat.len(), host_cores, |jobs| {
            comb_wallace.activity_jobs(&wallace_pat, jobs)
        }),
        measure("comb/kogge_stone_adder_16", ks_pat.len(), host_cores, |jobs| {
            comb_ks.activity_jobs(&ks_pat, jobs)
        }),
        // The glitch workload: event-driven timing simulation of an
        // unbalanced array multiplier, where most events are spurious.
        measure("event_glitch/array_multiplier_6", glitch_pat.len(), host_cores, |jobs| {
            event_mult.activity_jobs(&glitch_pat, jobs).total
        }),
        measure("event/kogge_stone_adder_16", event_ks_pat.len(), host_cores, |jobs| {
            event_ks.activity_jobs(&event_ks_pat, jobs).total
        }),
        measure("seq/pipelined_multiplier_4", seq_pat.len(), host_cores, |jobs| {
            seq_pipe.activity_jobs(&seq_pat, jobs).profile
        }),
    ];
    for wl in &mut loads {
        match wl.name {
            "event_glitch/array_multiplier_6" => wl.events = Some(event_stats(&mult, &glitch_pat)),
            "event/kogge_stone_adder_16" => wl.events = Some(event_stats(&ks, &event_ks_pat)),
            _ => {}
        }
    }
    loads
}

fn to_json(host_cores: usize, loads: &[Workload]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"sim\",");
    let _ = writeln!(out, "  \"host_cores\": {host_cores},");
    let _ = writeln!(
        out,
        "  \"jobs_swept\": [{}],",
        JOBS.map(|j| j.to_string()).join(",")
    );
    out.push_str("  \"workloads\": [\n");
    for (w, wl) in loads.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", wl.name);
        let _ = writeln!(out, "      \"patterns\": {},", wl.patterns);
        if let Some(ev) = &wl.events {
            let _ = writeln!(
                out,
                "      \"events\": {{\"processed\": {}, \"enqueued\": {}, \"cancelled\": {}, \
                 \"coalesced\": {}, \"work_ratio\": {:.4}}},",
                ev.processed, ev.enqueued, ev.cancelled, ev.coalesced, ev.work_ratio
            );
        }
        out.push_str("      \"runs\": [\n");
        for (r, run) in wl.runs.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"jobs\": {}, \"seconds\": {:.6}, \"patterns_per_sec\": {:.1}, \
                 \"speedup\": {:.3}, \"bit_identical\": {}, \"oversubscribed\": {}}}",
                run.jobs,
                run.seconds,
                run.patterns_per_sec,
                run.speedup,
                run.bit_identical,
                run.oversubscribed
            );
            out.push_str(if r + 1 < wl.runs.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if w + 1 < loads.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut check = false;
    let mut out_path = String::from("BENCH_sim.json");
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let loads = workloads(host_cores);
    let json = to_json(host_cores, &loads);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("wrote {out_path} (host cores: {host_cores})");
    for wl in &loads {
        let serial = wl.runs[0].patterns_per_sec;
        let best = wl
            .runs
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .expect("runs nonempty");
        let deterministic = wl.runs.iter().all(|r| r.bit_identical);
        println!(
            "  {:<36} {:>10.0} pat/s serial, best {:.2}x at {} jobs, bit-identical: {}",
            wl.name, serial, best.speedup, best.jobs, deterministic
        );
        if let Some(ev) = &wl.events {
            println!(
                "  {:<36} {:>10} events processed, work ratio {:.3}",
                "", ev.processed, ev.work_ratio
            );
        }
    }

    if check {
        let mut ok = true;
        for wl in &loads {
            for run in &wl.runs {
                if !run.bit_identical {
                    eprintln!(
                        "check FAILED: {} at {} jobs diverged bitwise from serial",
                        wl.name, run.jobs
                    );
                    ok = false;
                }
            }
            if let Some(ev) = &wl.events {
                if ev.processed != ev.enqueued {
                    eprintln!(
                        "check FAILED: {} processed {} != enqueued {}",
                        wl.name, ev.processed, ev.enqueued
                    );
                    ok = false;
                }
                if ev.cancelled > ev.processed {
                    eprintln!(
                        "check FAILED: {} cancelled {} > processed {}",
                        wl.name, ev.cancelled, ev.processed
                    );
                    ok = false;
                }
                // Deterministic work ratio is primary; wall clock rescues
                // a run on a machine with different constant factors.
                let serial = wl.runs[0].patterns_per_sec;
                if ev.work_ratio > MAX_WORK_RATIO && serial < RESCUE_PATTERNS_PER_SEC {
                    eprintln!(
                        "check FAILED: {} work ratio {:.3} > {MAX_WORK_RATIO} and serial \
                         {serial:.0} pat/s < {RESCUE_PATTERNS_PER_SEC:.0}",
                        wl.name, ev.work_ratio
                    );
                    ok = false;
                }
            }
            if host_cores >= 4 {
                if let Some(run4) = wl.runs.iter().find(|r| r.jobs == 4) {
                    if run4.speedup < MIN_SPEEDUP_4CORE {
                        eprintln!(
                            "check FAILED: {} speedup {:.2}x at 4 jobs < {MIN_SPEEDUP_4CORE}x \
                             on a {host_cores}-core host",
                            wl.name, run4.speedup
                        );
                        ok = false;
                    }
                }
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("check ok: event rewrite holds its win, shards stay bit-identical");
    }
}
