//! Regenerates exhibit E3: spurious-transition fraction.
fn main() {
    println!("{}", bench::exps::logic_comb::glitch_fraction());
}
