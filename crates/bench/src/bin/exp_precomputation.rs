//! Regenerates exhibit E2: precomputation comparator (Fig. 1).
fn main() {
    println!("{}", bench::exps::logic_seq::precomputation());
}
