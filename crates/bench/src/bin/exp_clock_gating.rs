//! Regenerates exhibit E12: gated clocks.
fn main() {
    println!("{}", bench::exps::logic_seq::clock_gating());
}
