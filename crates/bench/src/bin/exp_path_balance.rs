//! Regenerates exhibit E4: path balancing tradeoff.
fn main() {
    println!("{}", bench::exps::logic_comb::path_balance());
}
