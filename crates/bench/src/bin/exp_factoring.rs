//! Regenerates exhibit E8: power-aware kernel extraction.
fn main() {
    println!("{}", bench::exps::logic_comb::factoring());
}
