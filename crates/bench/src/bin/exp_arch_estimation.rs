//! Regenerates exhibit E20: architecture-level estimation.
fn main() {
    println!("{}", bench::exps::foundation::arch_estimation());
}
