//! Runs every exhibit (E1-E20) in sequence, printing the full report —
//! the data source for EXPERIMENTS.md.
fn main() {
    for (id, title, run) in bench::all_experiments() {
        println!("==================================================================");
        println!("{id}: {title}");
        println!("==================================================================");
        println!("{}", run());
    }
}
