//! `bench_serve` — soak harness for the resident optimization service.
//!
//! Drives three phases against real [`Server`] instances and emits
//! `BENCH_serve.json` (override with the first non-flag argument):
//!
//! * **soak** — ≥1000 mixed jobs (valid power/stats/dontcare/fsm over a
//!   circuit pool, malformed payloads, injected panics, budget-starved
//!   and deadline-expired requests) through a fault-injecting server.
//!   Audited invariants: the daemon never crashes, every failure carries
//!   a typed class, panics are isolated to exactly the poison jobs, and
//!   a deterministic sample of successful answers is bit-identical to
//!   cold single-process runs of the same specs (zero cross-job
//!   interference).
//! * **restart** — the first server is killed abruptly mid-soak
//!   (periodic checkpoints only, like a real crash); a second server
//!   warm-starts from the snapshot directory and replays the rest of the
//!   stream. Gate: snapshots load and the warm cache hit rate recovers.
//! * **corruption** — a snapshot file is bit-flipped on disk; the next
//!   server must reject it (checksum), keep serving, and rebuild a valid
//!   snapshot at drain.
//!
//! ```text
//! cargo run --release -p bench --bin bench_serve [out.json] [--check]
//! ```
//!
//! With `--check` the harness exits nonzero unless every deterministic
//! gate holds (typed-only failures, zero identity mismatches, zero stray
//! panics, warm-start recovery, corruption rejection) plus a generous
//! sustained-throughput floor that only a hung daemon could miss.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use lowpower::netlist::blif::write_text;
use lowpower::netlist::{gen, Rng64};
use lowpower::serve::snapshot::read_valid_snapshots;
use lowpower::serve::worker::{cold_run, ExecPolicy};
use lowpower::serve::{JobError, JobKind, JobSpec, PendingJob, ServeConfig, Server};

const SOAK_JOBS: usize = 1000;
/// Jobs left in flight when the first server is killed.
const DROP_BURST: usize = 50;
/// Every Nth deterministic success is re-run cold and compared.
const IDENTITY_SAMPLE: usize = 17;

const KISS_RING: &str = "0 s0 s0 0\n1 s0 s1 0\n0 s1 s1 0\n1 s1 s2 0\n0 s2 s2 1\n1 s2 s0 1\n";
const KISS_TOGGLE: &str = "0 a a 0\n1 a b 1\n0 b b 1\n1 b a 0\n";

fn payload_pool() -> Vec<String> {
    vec![
        write_text(&gen::ripple_adder(4).0),
        write_text(&gen::ripple_adder(8).0),
        write_text(&gen::kogge_stone_adder(4).0),
        write_text(&gen::array_multiplier(4).0),
        write_text(&gen::array_multiplier(5).0),
        write_text(&gen::comparator_gt(6).0),
        write_text(&gen::parity_tree(8)),
        write_text(&gen::parity_tree(12)),
    ]
}

struct PlannedJob {
    spec: JobSpec,
    /// Eligible for the cold bit-identity audit (no wall clock involved).
    deterministic: bool,
    injected_panic: bool,
}

/// The deterministic mixed stream: mostly honest work with hostile
/// payloads, poison, starvation, and dead-on-arrival deadlines mixed in.
fn plan_job(rng: &mut Rng64, blifs: &[String]) -> PlannedJob {
    let roll = rng.range(0, 100);
    let mut spec = if roll < 5 {
        // Poison: the worker must catch the panic and keep its pool.
        JobSpec::new(JobKind::InjectPanic, "boom".to_string())
    } else if roll < 13 {
        // Malformed: token soup or a truncated netlist.
        let payload = if rng.chance(0.5) {
            "HELO not a netlist\n".to_string()
        } else {
            let full = &blifs[rng.range(0, blifs.len())];
            full[..full.len() / 2].to_string()
        };
        JobSpec::new(JobKind::Power, payload)
    } else if roll < 20 {
        JobSpec::new(
            if rng.chance(0.5) { JobKind::Fsm } else { JobKind::Stats },
            if rng.chance(0.5) { KISS_RING } else { KISS_TOGGLE },
        )
    } else if roll < 30 {
        JobSpec::new(JobKind::Dontcare, blifs[rng.range(0, blifs.len())].clone())
    } else if roll < 45 {
        JobSpec::new(JobKind::Stats, blifs[rng.range(0, blifs.len())].clone())
    } else {
        JobSpec::new(JobKind::Power, blifs[rng.range(0, blifs.len())].clone())
    };
    spec.cycles = 1 << rng.range(5, 9);
    spec.seed = rng.next_u64();
    if rng.chance(0.08) {
        // Starved: both the exact and the sampled tier must trip, so the
        // failure class is `budget`, not a silent degrade.
        spec.max_bdd_nodes = Some(16);
        spec.max_sim_steps = Some(16);
    }
    let mut deterministic = true;
    if rng.chance(0.05) {
        // Dead on arrival: refused with the deadline class, zero attempts.
        spec.deadline_ms = Some(0);
        deterministic = false;
    }
    // An FSM payload under the Stats kind (and vice versa) fails typed;
    // that is part of the point, so no kind/payload consistency fix-up.
    PlannedJob {
        injected_panic: spec.kind == JobKind::InjectPanic && spec.deadline_ms.is_none(),
        deterministic,
        spec,
    }
}

/// Submit with backpressure: a full queue is a typed refusal, so admission
/// spins politely instead of dropping work.
fn admit(server: &Server, spec: &JobSpec) -> PendingJob {
    loop {
        match server.submit(spec.clone()) {
            Ok(p) => return p,
            Err(JobError::QueueFull { .. }) => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("soak admission refused: {e}"),
        }
    }
}

#[derive(Default)]
struct Audit {
    completed: u64,
    failed: u64,
    failed_by_class: BTreeMap<String, u64>,
    panics_isolated: u64,
    stray_panics: u64,
    identity_sampled: u64,
    identity_mismatches: u64,
    dropped_by_kill: u64,
}

impl Audit {
    /// Fold one response in; `job` is the plan that produced it.
    fn absorb(&mut self, job: &PlannedJob, result: &Result<lowpower::serve::JobOutput, JobError>) {
        match result {
            Ok(output) => {
                self.completed += 1;
                if job.deterministic
                    && (self.completed + self.failed).is_multiple_of(IDENTITY_SAMPLE as u64)
                {
                    self.identity_sampled += 1;
                    let (cold, _) = cold_run(&job.spec, &ExecPolicy::default());
                    if cold.as_ref() != Ok(output) {
                        self.identity_mismatches += 1;
                    }
                }
            }
            Err(e) => {
                self.failed += 1;
                *self.failed_by_class.entry(e.class().to_string()).or_insert(0) += 1;
                match e {
                    JobError::Panicked(_) if job.injected_panic => self.panics_isolated += 1,
                    JobError::Panicked(_) => self.stray_panics += 1,
                    JobError::Shutdown => self.dropped_by_kill += 1,
                    _ => {}
                }
            }
        }
    }
}

/// Run `jobs` against `server`, wait for every answer, fold into `audit`.
fn run_stream(server: &Server, jobs: &[PlannedJob], audit: &mut Audit) {
    // Admit in chunks so backpressure engages without serializing the pool.
    for chunk in jobs.chunks(128) {
        let pending: Vec<_> = chunk.iter().map(|j| admit(server, &j.spec)).collect();
        for (job, p) in chunk.iter().zip(pending) {
            let response = p.wait();
            audit.absorb(job, &response.result);
        }
    }
}

fn corrupt_one_snapshot(dir: &Path) -> PathBuf {
    let victim = std::fs::read_dir(dir)
        .expect("snapshot dir readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "lpc"))
        .expect("a checkpoint must exist to corrupt");
    let mut bytes = std::fs::read(&victim).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&victim, bytes).expect("write corrupted checkpoint");
    victim
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut check = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
        } else {
            out_path = arg;
        }
    }

    let snapshot_dir = std::env::temp_dir().join(format!("bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    std::fs::create_dir_all(&snapshot_dir).expect("create snapshot dir");
    let cfg = ServeConfig {
        workers: 4,
        queue_capacity: 256,
        snapshot_dir: Some(snapshot_dir.clone()),
        checkpoint_every: 8,
        fault_injection: true,
        retry_backoff_ms: 0,
        ..ServeConfig::default()
    };

    let blifs = payload_pool();
    let mut rng = Rng64::new(0x50AC_BEEF);
    let jobs: Vec<PlannedJob> = (0..SOAK_JOBS).map(|_| plan_job(&mut rng, &blifs)).collect();
    let half = SOAK_JOBS / 2;
    let mut audit = Audit::default();

    // ---- Phase 1: first half of the soak, then an abrupt kill with a
    // burst still in flight (periodic checkpoints only, like a crash).
    let soak_started = Instant::now();
    let server = Server::start(cfg.clone());
    run_stream(&server, &jobs[..half - DROP_BURST], &mut audit);
    let burst: Vec<_> = jobs[half - DROP_BURST..half]
        .iter()
        .map(|j| admit(&server, &j.spec))
        .collect();
    let killed_stats = server.shutdown_abort();
    for (job, p) in jobs[half - DROP_BURST..half].iter().zip(burst) {
        audit.absorb(job, &p.wait().result);
    }
    assert!(
        killed_stats.checkpoints > 0,
        "the kill must land after periodic checkpoints exist"
    );

    // ---- Phase 2: restart from whatever the crash left behind, finish
    // the stream (re-running the dropped burst — a crash loses no *work*,
    // only in-flight requests, which came back typed).
    let server = Server::start(cfg.clone());
    let restart_scan = server.snapshot_scan();
    run_stream(&server, &jobs[half - DROP_BURST..], &mut audit);
    let restart_stats = server.shutdown_drain();
    let soak_secs = soak_started.elapsed().as_secs_f64();
    let total_answered = audit.completed + audit.failed;

    // ---- Phase 3: corrupt a checkpoint; the next server must reject it,
    // keep serving, and leave a valid snapshot behind at drain.
    corrupt_one_snapshot(&snapshot_dir);
    let server = Server::start(cfg);
    let corruption_scan = server.snapshot_scan();
    let probe = server.run(JobSpec::new(JobKind::Power, blifs[0].clone()));
    let served_after_rejection = probe.result.is_ok();
    server.shutdown_drain();
    let (rebuilt, rebuilt_scan) = read_valid_snapshots(&snapshot_dir);
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    let jobs_per_sec = total_answered as f64 / soak_secs.max(1e-3);
    let hit_rate_after_restart = restart_stats.cache_hit_rate();

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"serve\",\n  \"soak\": {\n");
    let _ = write!(
        json,
        "    \"jobs\": {},\n    \"answered\": {},\n    \"completed\": {},\n    \"failed\": {},\n",
        SOAK_JOBS + DROP_BURST,
        total_answered,
        audit.completed,
        audit.failed
    );
    json.push_str("    \"failed_by_class\": {");
    for (i, (class, n)) in audit.failed_by_class.iter().enumerate() {
        let _ = write!(json, "{}\"{class}\": {n}", if i == 0 { "" } else { ", " });
    }
    json.push_str("},\n");
    let _ = write!(
        json,
        "    \"panics_isolated\": {},\n    \"stray_panics\": {},\n    \
         \"dropped_by_kill\": {},\n    \"identity_sampled\": {},\n    \
         \"identity_mismatches\": {},\n    \"jobs_per_sec\": {:.2}\n  }},\n",
        audit.panics_isolated,
        audit.stray_panics,
        audit.dropped_by_kill,
        audit.identity_sampled,
        audit.identity_mismatches,
        jobs_per_sec
    );
    let _ = write!(
        json,
        "  \"restart\": {{\n    \"snapshots_loaded\": {},\n    \"snapshots_rejected\": {},\n    \
         \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"hit_rate_after_restart\": {:.4}\n  }},\n",
        restart_scan.files_valid,
        restart_scan.files_rejected,
        restart_stats.cache_hits,
        restart_stats.cache_misses,
        hit_rate_after_restart
    );
    let _ = write!(
        json,
        "  \"corruption\": {{\n    \"files_rejected\": {},\n    \"served_after_rejection\": {},\n    \
         \"valid_snapshots_after_drain\": {},\n    \"rejected_after_drain\": {}\n  }}\n}}\n",
        corruption_scan.files_rejected,
        served_after_rejection,
        rebuilt.len(),
        rebuilt_scan.files_rejected
    );
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    println!("wrote {out_path}");
    println!(
        "  soak: {}/{} answered ({} ok, {} typed failures, {:.1} jobs/sec)",
        total_answered,
        SOAK_JOBS + DROP_BURST,
        audit.completed,
        audit.failed,
        jobs_per_sec
    );
    println!(
        "  isolation: {} injected panics caught, {} stray, {} identity samples, {} mismatches",
        audit.panics_isolated, audit.stray_panics, audit.identity_sampled, audit.identity_mismatches
    );
    println!(
        "  restart: {} snapshot file(s) loaded, hit rate {:.1}% ({} hits / {} misses)",
        restart_scan.files_valid,
        100.0 * hit_rate_after_restart,
        restart_stats.cache_hits,
        restart_stats.cache_misses
    );
    println!(
        "  corruption: {} file(s) rejected, served after rejection: {}, {} valid snapshot(s) rebuilt",
        corruption_scan.files_rejected,
        served_after_rejection,
        rebuilt.len()
    );

    if check {
        let mut failures = Vec::new();
        if total_answered != (SOAK_JOBS + DROP_BURST) as u64 {
            failures.push(format!(
                "answered {total_answered} of {} jobs — the daemon lost work",
                SOAK_JOBS + DROP_BURST
            ));
        }
        if audit.stray_panics > 0 {
            failures.push(format!(
                "{} panic(s) escaped from non-poison jobs",
                audit.stray_panics
            ));
        }
        if audit.panics_isolated == 0 {
            failures.push("the stream never exercised panic isolation".to_string());
        }
        if audit.identity_sampled == 0 {
            failures.push("the identity audit sampled nothing".to_string());
        }
        if audit.identity_mismatches > 0 {
            failures.push(format!(
                "{} warm answer(s) diverged from cold runs — cross-job interference",
                audit.identity_mismatches
            ));
        }
        if restart_scan.files_valid == 0 {
            failures.push("restart found no usable checkpoint".to_string());
        }
        if hit_rate_after_restart < 0.5 {
            failures.push(format!(
                "warm-start hit rate {:.2} below 0.5 — the snapshot did not help",
                hit_rate_after_restart
            ));
        }
        if corruption_scan.files_rejected == 0 {
            failures.push("the corrupted checkpoint was not rejected".to_string());
        }
        if !served_after_rejection {
            failures.push("the daemon failed to serve after rejecting corruption".to_string());
        }
        if rebuilt.is_empty() || rebuilt_scan.files_rejected > 0 {
            failures.push("no valid snapshot was rebuilt after the corruption".to_string());
        }
        // Throughput floor: deliberately far below any healthy run; only a
        // hung or thrashing daemon can miss it on a shared CI box.
        if jobs_per_sec < 1.0 {
            failures.push(format!("jobs/sec {jobs_per_sec:.2} below the 1.0 floor"));
        }
        if !failures.is_empty() {
            eprintln!("bench_serve --check FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        println!("  --check: all serve gates hold");
    }
}
