//! Regenerates exhibit E16: memory traversal power.
fn main() {
    println!("{}", bench::exps::arch::memory());
}
