//! Regenerates exhibit E17: instruction-level energy.
fn main() {
    println!("{}", bench::exps::software::sw_energy());
}
