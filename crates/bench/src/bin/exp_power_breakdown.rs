//! Regenerates exhibit E1: power decomposition.
fn main() {
    println!("{}", bench::exps::foundation::power_breakdown());
}
