//! Regenerates exhibit E10: low-power state encoding.
fn main() {
    println!("{}", bench::exps::logic_seq::state_encoding());
}
