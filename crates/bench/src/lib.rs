//! Experiment harness regenerating every quantitative exhibit (E1–E20) of
//! the survey reproduction. Each experiment is a pure function returning
//! its report as text; the `exp_*` binaries print them, `exp_all` runs the
//! full suite, and `EXPERIMENTS.md` records the measured numbers against
//! the paper's claims.

// Index-based loops are idiomatic for the parallel-array structures used
// throughout this EDA codebase.
#![allow(clippy::needless_range_loop)]

pub mod exps;
pub mod table;

/// One registered experiment: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// All experiments, in exhibit order.
pub fn all_experiments() -> Vec<Experiment> {
    use exps::*;
    vec![
        ("E1", "Power decomposition: switching > 90%", foundation::power_breakdown),
        ("E2", "Precomputation comparator (Fig. 1)", logic_seq::precomputation),
        ("E3", "Spurious-transition fraction (10-40%)", logic_comb::glitch_fraction),
        ("E4", "Path balancing buffer/glitch tradeoff", logic_comb::path_balance),
        ("E5", "Transistor reordering", circuit_level::reorder),
        ("E6", "Slack-based transistor sizing", circuit_level::sizing),
        ("E7", "Don't-care optimization", logic_comb::dontcare),
        ("E8", "Power-aware kernel extraction", logic_comb::factoring),
        ("E9", "Technology mapping objectives", logic_comb::techmap),
        ("E10", "Low-power state encoding", logic_seq::state_encoding),
        ("E11", "Retiming for low power", logic_seq::retiming),
        ("E12", "Gated clocks / guarded evaluation", logic_seq::clock_gating),
        ("E13", "Bus-invert and limited-weight codes", logic_seq::bus_coding),
        ("E14", "Transformations + voltage scaling", arch::voltage_scaling),
        ("E15", "Module selection & binding", arch::binding),
        ("E16", "Memory traversal power", arch::memory),
        ("E17", "Instruction-level energy: codegen", software::sw_energy),
        ("E18", "Instruction scheduling: DSP vs CPU", software::sw_scheduling),
        ("E19", "One-hot residue arithmetic", logic_seq::residue),
        ("E20", "Architecture-level estimation accuracy", foundation::arch_estimation),
        ("EA", "Ablations of framework design choices", ablations::ablations),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_experiment_runs_and_reports() {
        for (id, title, run) in super::all_experiments() {
            let report = run();
            assert!(!report.trim().is_empty(), "{id} {title}: empty report");
            assert!(report.contains(id), "{id}: report should carry its id");
        }
    }
}
