//! Netlist summary statistics: gate counts, transistor counts, area proxy,
//! capacitance totals and depth.

use std::collections::BTreeMap;
use std::fmt;

use crate::gate::GateKind;
use crate::graph::Netlist;

/// Aggregate statistics of a netlist.
///
/// ```
/// use netlist::{gen::ripple_adder, NetlistStats};
/// let (nl, _) = ripple_adder(8);
/// let stats = NetlistStats::of(&nl);
/// assert_eq!(stats.inputs, 16);
/// assert!(stats.transistors > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Combinational gate count (excluding inputs, constants and flip-flops).
    pub gates: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Total transistor count (gates + flip-flops).
    pub transistors: usize,
    /// Total node capacitance in fF (intrinsic + fanout input pins).
    pub total_cap: f64,
    /// Maximum combinational depth in levels.
    pub depth: usize,
    /// Gate count per kind mnemonic.
    pub by_kind: BTreeMap<&'static str, usize>,
}

impl NetlistStats {
    /// Compute statistics for `nl`.
    pub fn of(nl: &Netlist) -> NetlistStats {
        let mut gates = 0;
        let mut transistors = 0;
        let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        let fanout = nl.fanout_counts();
        let mut total_cap = 0.0;
        for net in nl.iter_nets() {
            let kind = nl.kind(net);
            let fanin = nl.fanins(net).len();
            transistors += kind.transistor_count(fanin);
            if !kind.is_source() && kind != GateKind::Dff {
                gates += 1;
            }
            if !kind.is_source() {
                *by_kind.entry(kind.mnemonic()).or_insert(0) += 1;
            }
            // Output node capacitance: the gate's own drain cap plus one pin
            // cap per fanout (the sink kind is approximated as uniform).
            total_cap += kind.intrinsic_cap(fanin) + 2.0 * fanout[net.index()] as f64;
        }
        NetlistStats {
            inputs: nl.num_inputs(),
            outputs: nl.num_outputs(),
            gates,
            dffs: nl.num_dffs(),
            transistors,
            total_cap,
            depth: nl.depth(),
            by_kind,
        }
    }

    /// A rough area proxy: transistor count.
    pub fn area(&self) -> f64 {
        self.transistors as f64
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in / {} out / {} gates / {} dffs / {} transistors / depth {} / {:.1} fF",
            self.inputs,
            self.outputs,
            self.gates,
            self.dffs,
            self.transistors,
            self.depth,
            self.total_cap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{array_multiplier, counter, ripple_adder};

    #[test]
    fn adder_stats() {
        let (nl, _) = ripple_adder(4);
        let stats = NetlistStats::of(&nl);
        assert_eq!(stats.inputs, 8);
        assert_eq!(stats.outputs, 5);
        assert_eq!(stats.dffs, 0);
        // 4 full adders, 5 gates each.
        assert_eq!(stats.gates, 20);
        assert!(stats.depth >= 4, "carry chain depth, got {}", stats.depth);
        assert!(stats.total_cap > 0.0);
    }

    #[test]
    fn multiplier_bigger_than_adder() {
        let (add, _) = ripple_adder(8);
        let (mul, _) = array_multiplier(8);
        let sa = NetlistStats::of(&add);
        let sm = NetlistStats::of(&mul);
        assert!(sm.gates > 4 * sa.gates);
        assert!(sm.transistors > sa.transistors);
        assert!(sm.area() > sa.area());
    }

    #[test]
    fn sequential_stats_count_dffs() {
        let nl = counter(6);
        let stats = NetlistStats::of(&nl);
        assert_eq!(stats.dffs, 6);
        assert_eq!(stats.by_kind["dff"], 6);
    }

    #[test]
    fn display_is_nonempty() {
        let (nl, _) = ripple_adder(2);
        let s = format!("{}", NetlistStats::of(&nl));
        assert!(s.contains("transistors"));
    }
}
