//! Arithmetic circuit generators: adders, multipliers, comparators, ALU.

use crate::gate::GateKind;
use crate::graph::{NetId, Netlist};

/// Handles into a generated adder.
#[derive(Debug, Clone)]
pub struct AdderNets {
    /// Operand A input nets, LSB first.
    pub a: Vec<NetId>,
    /// Operand B input nets, LSB first.
    pub b: Vec<NetId>,
    /// Sum output nets, LSB first.
    pub sum: Vec<NetId>,
    /// Carry-out net.
    pub carry_out: NetId,
}

/// Handles into a generated multiplier.
#[derive(Debug, Clone)]
pub struct MultiplierNets {
    /// Operand A input nets, LSB first.
    pub a: Vec<NetId>,
    /// Operand B input nets, LSB first.
    pub b: Vec<NetId>,
    /// Product output nets, LSB first (width `2n`).
    pub product: Vec<NetId>,
}

/// Handles into a generated comparator.
#[derive(Debug, Clone)]
pub struct ComparatorNets {
    /// Operand C input nets, LSB first.
    pub c: Vec<NetId>,
    /// Operand D input nets, LSB first.
    pub d: Vec<NetId>,
    /// The `C > D` output net.
    pub gt: NetId,
}

fn full_adder(nl: &mut Netlist, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
    let axb = nl.add_gate(GateKind::Xor, &[a, b]);
    let sum = nl.add_gate(GateKind::Xor, &[axb, cin]);
    let ab = nl.add_gate(GateKind::And, &[a, b]);
    let c_axb = nl.add_gate(GateKind::And, &[axb, cin]);
    let cout = nl.add_gate(GateKind::Or, &[ab, c_axb]);
    (sum, cout)
}

/// Build an `n`-bit ripple-carry adder `sum = a + b`.
///
/// The carry chain makes arrival times skewed — the canonical source of the
/// spurious transitions §III.A.2 discusses.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// use netlist::gen::ripple_adder;
/// let (nl, nets) = ripple_adder(4);
/// // 3 + 5 = 8
/// let mut pattern = vec![false; 8];
/// pattern[0] = true; pattern[1] = true;       // a = 0b0011
/// pattern[4] = true; pattern[6] = true;       // b = 0b0101
/// let out = nl.eval_comb(&pattern);
/// let sum: u32 = (0..4).map(|i| (out[i] as u32) << i).sum();
/// assert_eq!(sum, 8);
/// ```
pub fn ripple_adder(n: usize) -> (Netlist, AdderNets) {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("ripple_adder_{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let mut carry = nl.add_const(false);
    let mut sum = Vec::with_capacity(n);
    for i in 0..n {
        let (s, c) = full_adder(&mut nl, a[i], b[i], carry);
        sum.push(s);
        carry = c;
        nl.mark_output(s, format!("s{i}"));
    }
    nl.mark_output(carry, "cout");
    (
        nl,
        AdderNets {
            a,
            b,
            sum,
            carry_out: carry,
        },
    )
}

/// Build an `n`-bit carry-select adder (blocks of `block` bits).
///
/// Faster but larger than ripple — used by the module-selection experiments
/// (E15) as the "fast, high-capacitance" adder alternative.
///
/// # Panics
///
/// Panics if `n == 0` or `block == 0`.
pub fn carry_select_adder(n: usize, block: usize) -> (Netlist, AdderNets) {
    assert!(n > 0 && block > 0, "widths must be positive");
    let mut nl = Netlist::new(format!("carry_select_adder_{n}_{block}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let mut sum = Vec::with_capacity(n);
    let mut carry = nl.add_const(false);
    let mut base = 0;
    while base < n {
        let width = block.min(n - base);
        // Two speculative ripple chains: carry-in 0 and carry-in 1.
        let zero = nl.add_const(false);
        let one = nl.add_const(true);
        let mut c0 = zero;
        let mut c1 = one;
        let mut s0 = Vec::with_capacity(width);
        let mut s1 = Vec::with_capacity(width);
        for i in base..base + width {
            let (s, c) = full_adder(&mut nl, a[i], b[i], c0);
            s0.push(s);
            c0 = c;
            let (s, c) = full_adder(&mut nl, a[i], b[i], c1);
            s1.push(s);
            c1 = c;
        }
        for i in 0..width {
            let s = nl.add_gate(GateKind::Mux, &[carry, s0[i], s1[i]]);
            nl.mark_output(s, format!("s{}", base + i));
            sum.push(s);
        }
        carry = nl.add_gate(GateKind::Mux, &[carry, c0, c1]);
        base += width;
    }
    nl.mark_output(carry, "cout");
    (
        nl,
        AdderNets {
            a,
            b,
            sum,
            carry_out: carry,
        },
    )
}

/// Build an `n x n` array multiplier `product = a * b` (2n-bit product).
///
/// Array multipliers are the survey's canonical glitchy circuit (\[25\]
/// describes a 16x16 multiplier with transition-reduction circuitry).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn array_multiplier(n: usize) -> (Netlist, MultiplierNets) {
    assert!(n > 0, "multiplier width must be positive");
    let mut nl = Netlist::new(format!("array_multiplier_{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    // Partial products pp[i][j] = a[j] & b[i].
    let mut rows: Vec<Vec<NetId>> = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<NetId> = (0..n)
            .map(|j| nl.add_gate(GateKind::And, &[a[j], b[i]]))
            .collect();
        rows.push(row);
    }
    // Accumulate row by row with ripple adders (carry-save would glitch less;
    // the plain array form is deliberately glitch-prone).
    let mut acc: Vec<NetId> = rows[0].clone(); // weight 0..n-1
    let mut product: Vec<NetId> = Vec::with_capacity(2 * n);
    product.push(acc[0]);
    let mut acc_tail: Vec<NetId> = acc[1..].to_vec(); // weights 1..n-1 relative
    for (i, row) in rows.iter().enumerate().skip(1) {
        // acc_tail holds weights i..i+n-2 (n-1 nets); add row (weights i..i+n-1).
        let mut carry = nl.add_const(false);
        let mut next: Vec<NetId> = Vec::with_capacity(n);
        for j in 0..n {
            let partial = row[j];
            let prev = if j < acc_tail.len() {
                acc_tail[j]
            } else {
                nl.add_const(false)
            };
            let (s, c) = full_adder(&mut nl, prev, partial, carry);
            next.push(s);
            carry = c;
        }
        product.push(next[0]);
        acc_tail = next[1..].to_vec();
        acc_tail.push(carry);
        if i == n - 1 {
            for &net in &acc_tail {
                product.push(net);
            }
        }
    }
    if n == 1 {
        // Single partial product, no accumulation rows.
        product = vec![acc.remove(0), nl.add_const(false)];
    }
    for (i, &p) in product.iter().enumerate() {
        nl.mark_output(p, format!("p{i}"));
    }
    (
        nl,
        MultiplierNets {
            a,
            b,
            product,
        },
    )
}

/// Build the n-bit magnitude comparator of Fig. 1: `gt = (C > D)`.
///
/// Implemented as a ripple from LSB to MSB:
/// `gt_i = (c_i & !d_i) | (c_i XNOR d_i) & gt_{i-1}`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// ```
/// use netlist::gen::comparator_gt;
/// let (nl, _) = comparator_gt(3);
/// // C=5 (101), D=3 (011): inputs are c0..c2 then d0..d2, LSB first.
/// let out = nl.eval_comb(&[true, false, true, true, true, false]);
/// assert_eq!(out, vec![true]);
/// ```
pub fn comparator_gt(n: usize) -> (Netlist, ComparatorNets) {
    assert!(n > 0, "comparator width must be positive");
    let mut nl = Netlist::new(format!("comparator_gt_{n}"));
    let c: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("c{i}"))).collect();
    let d: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("d{i}"))).collect();
    // Accumulate LSB-up: gt_i = (c_i & !d_i) | ((c_i == d_i) & gt_{i-1}),
    // so higher bits override lower ones.
    let mut gt = nl.add_const(false);
    for i in 0..n {
        let nd = nl.add_gate(GateKind::Not, &[d[i]]);
        let ci_gt = nl.add_gate(GateKind::And, &[c[i], nd]);
        let eq = nl.add_gate(GateKind::Xnor, &[c[i], d[i]]);
        let carry = nl.add_gate(GateKind::And, &[eq, gt]);
        gt = nl.add_gate(GateKind::Or, &[ci_gt, carry]);
    }
    nl.mark_output(gt, "gt");
    (nl, ComparatorNets { c, d, gt })
}

/// Build an n-bit equality checker `eq = (A == B)`.
pub fn equality(n: usize) -> (Netlist, ComparatorNets) {
    assert!(n > 0, "width must be positive");
    let mut nl = Netlist::new(format!("equality_{n}"));
    let c: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let d: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let bits: Vec<NetId> = (0..n)
        .map(|i| nl.add_gate(GateKind::Xnor, &[c[i], d[i]]))
        .collect();
    let eq = nl.add_gate(GateKind::And, &bits);
    nl.mark_output(eq, "eq");
    (nl, ComparatorNets { c, d, gt: eq })
}

/// Build a small 4-function ALU over `n`-bit operands.
///
/// `op` (2 bits) selects: 00 = AND, 01 = OR, 10 = XOR, 11 = ADD.
/// Input order: `a0..a(n-1), b0..b(n-1), op0, op1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn alu4(n: usize) -> Netlist {
    assert!(n > 0, "ALU width must be positive");
    let mut nl = Netlist::new(format!("alu4_{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let op0 = nl.add_input("op0");
    let op1 = nl.add_input("op1");
    let mut carry = nl.add_const(false);
    for i in 0..n {
        let and = nl.add_gate(GateKind::And, &[a[i], b[i]]);
        let or = nl.add_gate(GateKind::Or, &[a[i], b[i]]);
        let xor = nl.add_gate(GateKind::Xor, &[a[i], b[i]]);
        let (sum, c) = full_adder(&mut nl, a[i], b[i], carry);
        carry = c;
        // result = op1 ? (op0 ? sum : xor) : (op0 ? or : and)
        let lo = nl.add_gate(GateKind::Mux, &[op0, and, or]);
        let hi = nl.add_gate(GateKind::Mux, &[op0, xor, sum]);
        let y = nl.add_gate(GateKind::Mux, &[op1, lo, hi]);
        nl.mark_output(y, format!("y{i}"));
    }
    nl
}

/// Build an `n`-bit Kogge–Stone (parallel-prefix) adder.
///
/// Log-depth carry network: much better balanced than the ripple chain,
/// so it glitches far less under timing simulation — the adder-side
/// counterpart of the Wallace/array multiplier contrast.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn kogge_stone_adder(n: usize) -> (Netlist, AdderNets) {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new(format!("kogge_stone_adder_{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    // Generate / propagate per bit.
    let mut g: Vec<NetId> = (0..n)
        .map(|i| nl.add_gate(GateKind::And, &[a[i], b[i]]))
        .collect();
    let mut p: Vec<NetId> = (0..n)
        .map(|i| nl.add_gate(GateKind::Xor, &[a[i], b[i]]))
        .collect();
    let p_orig = p.clone();
    // Prefix levels: after the network, g[i] = carry out of bit i.
    let mut dist = 1;
    while dist < n {
        let mut new_g = g.clone();
        let mut new_p = p.clone();
        for i in dist..n {
            let pg = nl.add_gate(GateKind::And, &[p[i], g[i - dist]]);
            new_g[i] = nl.add_gate(GateKind::Or, &[g[i], pg]);
            new_p[i] = nl.add_gate(GateKind::And, &[p[i], p[i - dist]]);
        }
        g = new_g;
        p = new_p;
        dist <<= 1;
    }
    // sum[0] = p[0]; sum[i] = p_orig[i] xor carry_{i-1} = p_orig[i] ^ g_prefix[i-1].
    let mut sum = Vec::with_capacity(n);
    for i in 0..n {
        let s = if i == 0 {
            nl.add_gate(GateKind::Buf, &[p_orig[0]])
        } else {
            nl.add_gate(GateKind::Xor, &[p_orig[i], g[i - 1]])
        };
        nl.mark_output(s, format!("s{i}"));
        sum.push(s);
    }
    let carry_out = g[n - 1];
    nl.mark_output(carry_out, "cout");
    (
        nl,
        AdderNets {
            a,
            b,
            sum,
            carry_out,
        },
    )
}

/// Build an `n x n` Wallace-tree multiplier.
///
/// Column-wise 3:2 reduction of the partial products followed by a final
/// carry-propagate add: logarithmic depth and far better path balance than
/// [`array_multiplier`], hence markedly less glitching — the comparison
/// \[25\] builds on.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wallace_multiplier(n: usize) -> (Netlist, MultiplierNets) {
    assert!(n > 0, "multiplier width must be positive");
    let mut nl = Netlist::new(format!("wallace_multiplier_{n}"));
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let width = 2 * n;
    let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); width];
    for i in 0..n {
        for j in 0..n {
            let pp = nl.add_gate(GateKind::And, &[a[j], b[i]]);
            cols[i + j].push(pp);
        }
    }
    // 3:2 (and 2:2) reduction passes until every column has at most 2.
    while cols.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); width];
        for w in 0..width {
            let items = std::mem::take(&mut cols[w]);
            let mut i = 0;
            while items.len() - i >= 3 {
                let (s, c) = full_adder(&mut nl, items[i], items[i + 1], items[i + 2]);
                next[w].push(s);
                if w + 1 < width {
                    next[w + 1].push(c);
                }
                i += 3;
            }
            if items.len() - i == 2 {
                // Half adder.
                let s = nl.add_gate(GateKind::Xor, &[items[i], items[i + 1]]);
                let c = nl.add_gate(GateKind::And, &[items[i], items[i + 1]]);
                next[w].push(s);
                if w + 1 < width {
                    next[w + 1].push(c);
                }
                i += 2;
            }
            if items.len() - i == 1 {
                next[w].push(items[i]);
            }
        }
        cols = next;
    }
    // Final carry-propagate addition over the (≤2)-entry columns.
    let mut product = Vec::with_capacity(width);
    let mut carry = nl.add_const(false);
    for w in 0..width {
        let (x, y) = match cols[w].len() {
            0 => {
                let zero = nl.add_const(false);
                (zero, nl.add_const(false))
            }
            1 => (cols[w][0], nl.add_const(false)),
            _ => (cols[w][0], cols[w][1]),
        };
        let (s, c) = full_adder(&mut nl, x, y, carry);
        product.push(s);
        carry = c;
    }
    for (i, &pnet) in product.iter().enumerate() {
        nl.mark_output(pnet, format!("p{i}"));
    }
    (
        nl,
        MultiplierNets {
            a,
            b,
            product,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_bits(value: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| value >> i & 1 == 1).collect()
    }

    fn from_bits(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| (b as u64) << i)
            .sum()
    }

    #[test]
    fn ripple_adder_exhaustive_4bit() {
        let (nl, _) = ripple_adder(4);
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut pattern = to_bits(a, 4);
                pattern.extend(to_bits(b, 4));
                let out = nl.eval_comb(&pattern);
                let sum = from_bits(&out[..4]) + ((out[4] as u64) << 4);
                assert_eq!(sum, a + b, "{a} + {b}");
            }
        }
    }

    #[test]
    fn carry_select_matches_ripple() {
        let (csa, _) = carry_select_adder(6, 2);
        let (rca, _) = ripple_adder(6);
        for a in [0u64, 1, 7, 31, 63, 42] {
            for b in [0u64, 1, 9, 63, 33] {
                let mut pattern = to_bits(a, 6);
                pattern.extend(to_bits(b, 6));
                assert_eq!(csa.eval_comb(&pattern), rca.eval_comb(&pattern), "{a}+{b}");
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_3bit() {
        let (nl, _) = array_multiplier(3);
        for a in 0u64..8 {
            for b in 0u64..8 {
                let mut pattern = to_bits(a, 3);
                pattern.extend(to_bits(b, 3));
                let out = nl.eval_comb(&pattern);
                assert_eq!(from_bits(&out), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn multiplier_width_one() {
        let (nl, nets) = array_multiplier(1);
        assert_eq!(nets.product.len(), 2);
        assert_eq!(from_bits(&nl.eval_comb(&[true, true])), 1);
        assert_eq!(from_bits(&nl.eval_comb(&[true, false])), 0);
    }

    #[test]
    fn multiplier_4bit_spot_checks() {
        let (nl, _) = array_multiplier(4);
        for (a, b) in [(15u64, 15u64), (9, 13), (0, 7), (8, 8), (1, 15)] {
            let mut pattern = to_bits(a, 4);
            pattern.extend(to_bits(b, 4));
            assert_eq!(from_bits(&nl.eval_comb(&pattern)), a * b, "{a} * {b}");
        }
    }

    #[test]
    fn comparator_exhaustive_3bit() {
        let (nl, _) = comparator_gt(3);
        for c in 0u64..8 {
            for d in 0u64..8 {
                let mut pattern = to_bits(c, 3);
                pattern.extend(to_bits(d, 3));
                assert_eq!(nl.eval_comb(&pattern), vec![c > d], "{c} > {d}");
            }
        }
    }

    #[test]
    fn equality_exhaustive_3bit() {
        let (nl, _) = equality(3);
        for a in 0u64..8 {
            for b in 0u64..8 {
                let mut pattern = to_bits(a, 3);
                pattern.extend(to_bits(b, 3));
                assert_eq!(nl.eval_comb(&pattern), vec![a == b]);
            }
        }
    }

    #[test]
    fn alu_functions() {
        let n = 4;
        let nl = alu4(n);
        for (op, f) in [
            (0u64, (|a, b| a & b) as fn(u64, u64) -> u64),
            (1, |a, b| a | b),
            (2, |a, b| a ^ b),
            (3, |a, b| (a + b) & 0xF),
        ] {
            for (a, b) in [(5u64, 3u64), (15, 1), (0, 0), (12, 10)] {
                let mut pattern = to_bits(a, n);
                pattern.extend(to_bits(b, n));
                pattern.push(op & 1 == 1);
                pattern.push(op >> 1 & 1 == 1);
                let out = nl.eval_comb(&pattern);
                assert_eq!(from_bits(&out), f(a, b), "op={op} a={a} b={b}");
            }
        }
    }

    #[test]
    fn kogge_stone_matches_ripple() {
        let (ks, _) = kogge_stone_adder(6);
        let (rc, _) = ripple_adder(6);
        for a in 0u64..64 {
            for b in [0u64, 1, 5, 17, 42, 63] {
                let mut pattern = to_bits(a, 6);
                pattern.extend(to_bits(b, 6));
                assert_eq!(ks.eval_comb(&pattern), rc.eval_comb(&pattern), "{a}+{b}");
            }
        }
    }

    #[test]
    fn kogge_stone_is_log_depth() {
        let (ks, _) = kogge_stone_adder(16);
        let (rc, _) = ripple_adder(16);
        assert!(
            ks.depth() < rc.depth() / 2,
            "prefix adder depth {} vs ripple {}",
            ks.depth(),
            rc.depth()
        );
    }

    #[test]
    fn wallace_exhaustive_3bit() {
        let (nl, _) = wallace_multiplier(3);
        for a in 0u64..8 {
            for b in 0u64..8 {
                let mut pattern = to_bits(a, 3);
                pattern.extend(to_bits(b, 3));
                let out = nl.eval_comb(&pattern);
                assert_eq!(from_bits(&out), a * b, "{a} * {b}");
            }
        }
    }

    #[test]
    fn wallace_matches_array_5bit_samples() {
        let (w, _) = wallace_multiplier(5);
        let (arr, _) = array_multiplier(5);
        for (a, b) in [(31u64, 31u64), (17, 23), (0, 9), (16, 16), (1, 31), (12, 27)] {
            let mut pattern = to_bits(a, 5);
            pattern.extend(to_bits(b, 5));
            assert_eq!(w.eval_comb(&pattern), arr.eval_comb(&pattern), "{a}*{b}");
        }
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        let (w, _) = wallace_multiplier(8);
        let (arr, _) = array_multiplier(8);
        assert!(
            w.depth() < arr.depth(),
            "wallace depth {} vs array {}",
            w.depth(),
            arr.depth()
        );
    }

    #[test]
    fn generated_netlists_validate() {
        ripple_adder(8).0.validate().unwrap();
        carry_select_adder(8, 3).0.validate().unwrap();
        array_multiplier(5).0.validate().unwrap();
        comparator_gt(8).0.validate().unwrap();
        equality(8).0.validate().unwrap();
        alu4(8).validate().unwrap();
        kogge_stone_adder(8).0.validate().unwrap();
        wallace_multiplier(8).0.validate().unwrap();
    }
}
