//! Sequential circuit generators: counters, shift registers, LFSRs and
//! registered pipelines.

use crate::gate::GateKind;
use crate::graph::{NetId, Netlist};

use super::arith::array_multiplier;

/// Build an `n`-bit synchronous binary up-counter with an `en` input.
///
/// Outputs `q0..q(n-1)`, LSB first. When `en` is low the counter holds.
pub fn counter(n: usize) -> Netlist {
    assert!(n > 0, "counter width must be positive");
    let mut nl = Netlist::new(format!("counter_{n}"));
    let en = nl.add_input("en");
    let q: Vec<NetId> = (0..n).map(|_| nl.add_dff_placeholder(false)).collect();
    let mut carry = en;
    for i in 0..n {
        let next = nl.add_gate(GateKind::Xor, &[q[i], carry]);
        nl.set_dff_data(q[i], next);
        if i + 1 < n {
            carry = nl.add_gate(GateKind::And, &[carry, q[i]]);
        }
        nl.mark_output(q[i], format!("q{i}"));
    }
    nl
}

/// Build an `n`-stage shift register with serial input `sin`.
///
/// Outputs every stage `q0..q(n-1)` (`q0` is the first stage).
pub fn shift_register(n: usize) -> Netlist {
    assert!(n > 0, "shift register needs at least one stage");
    let mut nl = Netlist::new(format!("shift_register_{n}"));
    let sin = nl.add_input("sin");
    let mut prev = sin;
    for i in 0..n {
        let q = nl.add_dff(prev, false);
        nl.mark_output(q, format!("q{i}"));
        prev = q;
    }
    nl
}

/// Build an `n`-bit Fibonacci LFSR with taps at the positions in `taps`
/// (bit indices into the state, XORed into the feedback).
///
/// State starts at `0...01` so the register is never stuck at zero.
///
/// # Panics
///
/// Panics if `taps` is empty or references a bit `>= n`.
pub fn lfsr(n: usize, taps: &[usize]) -> Netlist {
    assert!(n > 0 && !taps.is_empty(), "need width and taps");
    assert!(taps.iter().all(|&t| t < n), "tap out of range");
    let mut nl = Netlist::new(format!("lfsr_{n}"));
    let q: Vec<NetId> = (0..n)
        .map(|i| nl.add_dff_placeholder(i == 0))
        .collect();
    let tap_nets: Vec<NetId> = taps.iter().map(|&t| q[t]).collect();
    let feedback = if tap_nets.len() == 1 {
        nl.add_gate(GateKind::Buf, &[tap_nets[0]])
    } else {
        nl.add_gate(GateKind::Xor, &tap_nets)
    };
    nl.set_dff_data(q[0], feedback);
    for i in 1..n {
        nl.set_dff_data(q[i], q[i - 1]);
    }
    for (i, &net) in q.iter().enumerate() {
        nl.mark_output(net, format!("q{i}"));
    }
    nl
}

/// Build an `n x n` array multiplier with registered inputs and outputs
/// (a 2-stage pipeline). Used by the retiming and precomputation
/// experiments, where register placement filters glitches.
pub fn pipelined_multiplier(n: usize) -> Netlist {
    let (comb, nets) = array_multiplier(n);
    let mut nl = Netlist::new(format!("pipelined_multiplier_{n}"));
    let a_in: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b_in: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let a_reg: Vec<NetId> = a_in.iter().map(|&x| nl.add_dff(x, false)).collect();
    let b_reg: Vec<NetId> = b_in.iter().map(|&x| nl.add_dff(x, false)).collect();
    // Copy the combinational multiplier, substituting registered operands.
    let mut map: Vec<Option<NetId>> = vec![None; comb.len()];
    for (i, &net) in nets.a.iter().enumerate() {
        map[net.index()] = Some(a_reg[i]);
    }
    for (i, &net) in nets.b.iter().enumerate() {
        map[net.index()] = Some(b_reg[i]);
    }
    let order = comb.topo_order().expect("generated multiplier is acyclic");
    for net in order {
        if map[net.index()].is_some() {
            continue;
        }
        let kind = comb.kind(net);
        let new = match kind {
            GateKind::Input => continue, // already mapped
            GateKind::Const(v) => nl.add_const(v),
            _ => {
                let ins: Vec<NetId> = comb
                    .fanins(net)
                    .iter()
                    .map(|i| map[i.index()].expect("topo order"))
                    .collect();
                nl.add_gate(kind, &ins)
            }
        };
        map[net.index()] = Some(new);
    }
    for (i, &p) in nets.product.iter().enumerate() {
        let reg = nl.add_dff(map[p.index()].expect("product mapped"), false);
        nl.mark_output(reg, format!("p{i}"));
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny sequential stepper for tests: evaluates one clock cycle,
    /// returning (outputs, next_state). State is per-dff, in dff order.
    fn step(nl: &Netlist, state: &[bool], inputs: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let order = nl.topo_order().unwrap();
        let mut values = vec![false; nl.len()];
        for (i, &pi) in nl.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for (i, &dff) in nl.dffs().iter().enumerate() {
            values[dff.index()] = state[i];
        }
        for net in order {
            let kind = nl.kind(net);
            if kind.is_source() || kind == GateKind::Dff {
                if let GateKind::Const(v) = kind {
                    values[net.index()] = v;
                }
                continue;
            }
            let ins: Vec<bool> = nl.fanins(net).iter().map(|x| values[x.index()]).collect();
            values[net.index()] = kind.eval(&ins);
        }
        let outputs = nl.outputs().iter().map(|(n, _)| values[n.index()]).collect();
        let next = nl
            .dffs()
            .iter()
            .enumerate()
            .map(|(i, &dff)| {
                let fi = nl.fanins(dff);
                let d = values[fi[0].index()];
                if fi.len() == 2 {
                    let en = values[fi[1].index()];
                    if en {
                        d
                    } else {
                        state[i]
                    }
                } else {
                    d
                }
            })
            .collect();
        (outputs, next)
    }

    fn state_value(bits: &[bool]) -> u64 {
        bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
    }

    #[test]
    fn counter_counts() {
        let nl = counter(4);
        nl.validate().unwrap();
        let mut state = vec![false; 4];
        for expected in 0u64..20 {
            let (out, next) = step(&nl, &state, &[true]);
            assert_eq!(state_value(&out), expected % 16, "cycle {expected}");
            state = next;
        }
    }

    #[test]
    fn counter_holds_when_disabled() {
        let nl = counter(3);
        let mut state = vec![false; 3];
        for _ in 0..3 {
            let (_, next) = step(&nl, &state, &[true]);
            state = next;
        }
        let frozen = state.clone();
        for _ in 0..5 {
            let (_, next) = step(&nl, &state, &[false]);
            state = next;
            assert_eq!(state, frozen);
        }
    }

    #[test]
    fn shift_register_shifts() {
        let nl = shift_register(4);
        nl.validate().unwrap();
        let mut state = vec![false; 4];
        let stream = [true, false, true, true, false, false, true];
        let mut history: Vec<bool> = Vec::new();
        for &bit in &stream {
            let (out, next) = step(&nl, &state, &[bit]);
            // out[i] is the current state of stage i (before this bit shifts in)
            for (i, &o) in out.iter().enumerate() {
                let expected = if i < history.len() {
                    history[history.len() - 1 - i]
                } else {
                    false
                };
                assert_eq!(o, expected, "stage {i} after {} bits", history.len());
            }
            history.push(bit);
            state = next;
        }
    }

    #[test]
    fn lfsr_cycles_through_states() {
        // 4-bit maximal LFSR taps (3, 2) -> period 15.
        let nl = lfsr(4, &[3, 2]);
        nl.validate().unwrap();
        let mut state: Vec<bool> = nl.dffs().iter().map(|&d| nl.dff_init(d)).collect();
        let start = state_value(&state);
        assert_ne!(start, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            assert!(seen.insert(state_value(&state)), "state repeated early");
            let (_, next) = step(&nl, &state, &[]);
            state = next;
        }
        assert_eq!(state_value(&state), start, "period should be 15");
    }

    #[test]
    fn pipelined_multiplier_matches_after_latency() {
        let nl = pipelined_multiplier(3);
        nl.validate().unwrap();
        let mut state = vec![false; nl.num_dffs()];
        // Feed (a=5, b=6), then hold; after 2 cycles outputs show 30.
        let a = 5u64;
        let b = 6u64;
        let inputs: Vec<bool> = (0..3)
            .map(|i| a >> i & 1 == 1)
            .chain((0..3).map(|i| b >> i & 1 == 1))
            .collect();
        let mut out = Vec::new();
        for _ in 0..3 {
            let (o, next) = step(&nl, &state, &inputs);
            out = o;
            state = next;
        }
        assert_eq!(state_value(&out), 30);
    }
}
