//! Procedural circuit generators.
//!
//! These substitute for the MCNC/ISCAS benchmark suites used by the papers
//! the survey cites: they produce the same *classes* of circuit the survey's
//! claims are about — ripple/carry-select adders, array multipliers (the
//! glitch-heavy workhorse of §III.A.2), magnitude comparators (Fig. 1), small
//! ALUs, parity/mux trees, random multi-level logic, and registered
//! pipelines.

mod arith;
mod logic;
mod seq;

pub use arith::{
    alu4, array_multiplier, carry_select_adder, comparator_gt, equality, kogge_stone_adder,
    ripple_adder, wallace_multiplier, AdderNets, ComparatorNets, MultiplierNets,
};
pub use logic::{mux_tree, parity_tree, random_dag, random_sop, RandomDagConfig};
pub use seq::{counter, lfsr, pipelined_multiplier, shift_register};
