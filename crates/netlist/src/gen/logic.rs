//! Random and structured multi-level logic generators.

use crate::gate::GateKind;
use crate::graph::{NetId, Netlist};
use crate::rng::Rng64;

/// Configuration for [`random_dag`].
#[derive(Debug, Clone)]
pub struct RandomDagConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of internal gates.
    pub gates: usize,
    /// Number of primary outputs (sampled from the last gates).
    pub outputs: usize,
    /// Maximum gate fanin (2..=this).
    pub max_fanin: usize,
    /// Locality window: fanins are drawn from the most recent `window`
    /// nodes, giving the DAG a realistic layered structure.
    pub window: usize,
}

impl Default for RandomDagConfig {
    fn default() -> RandomDagConfig {
        RandomDagConfig {
            inputs: 16,
            gates: 200,
            outputs: 8,
            max_fanin: 3,
            window: 40,
        }
    }
}

/// Generate a random multi-level combinational DAG.
///
/// Deterministic for a given `seed`. Gate kinds are drawn from the
/// AND/OR/NAND/NOR/XOR/NOT mix typical of technology-independent logic.
///
/// # Panics
///
/// Panics if `inputs == 0`, `gates == 0` or `max_fanin < 2`.
pub fn random_dag(config: &RandomDagConfig, seed: u64) -> Netlist {
    assert!(config.inputs > 0 && config.gates > 0, "need inputs and gates");
    assert!(config.max_fanin >= 2, "max fanin must be at least 2");
    let mut rng = Rng64::new(seed);
    let mut nl = Netlist::new(format!("random_dag_s{seed}"));
    let mut pool: Vec<NetId> = (0..config.inputs)
        .map(|i| nl.add_input(format!("x{i}")))
        .collect();
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::And,
        GateKind::Or,
    ];
    for _ in 0..config.gates {
        let kind = *rng.choose(&kinds);
        let fanin = if rng.chance(0.15) {
            // Occasional inverter.
            let lo = pool.len().saturating_sub(config.window);
            let src = pool[rng.range(lo, pool.len())];
            let g = nl.add_gate(GateKind::Not, &[src]);
            pool.push(g);
            continue;
        } else {
            rng.range(2, config.max_fanin + 1)
        };
        let lo = pool.len().saturating_sub(config.window);
        let mut ins = Vec::with_capacity(fanin);
        for _ in 0..fanin {
            ins.push(pool[rng.range(lo, pool.len())]);
        }
        let g = nl.add_gate(kind, &ins);
        pool.push(g);
    }
    let n_outputs = config.outputs.min(config.gates);
    for i in 0..n_outputs {
        let pick = pool[pool.len() - 1 - rng.range(0, config.window.min(pool.len()))];
        nl.mark_output(pick, format!("y{i}"));
        let _ = i;
    }
    // Deduplicate output names if the sampler repeated a net: names are
    // already unique (y0..), nets may repeat which is fine.
    nl
}

/// Generate a balanced XOR parity tree over `n` inputs.
pub fn parity_tree(n: usize) -> Netlist {
    assert!(n > 0, "parity needs at least one input");
    let mut nl = Netlist::new(format!("parity_{n}"));
    let mut layer: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(nl.add_gate(GateKind::Xor, &[pair[0], pair[1]]));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    nl.mark_output(layer[0], "parity");
    nl
}

/// Generate a `2^k`-to-1 multiplexer tree (`k` select bits, `2^k` data bits).
///
/// Input order: `s0..s(k-1)`, then `d0..d(2^k-1)`.
pub fn mux_tree(k: usize) -> Netlist {
    assert!(k > 0, "mux tree needs at least one select bit");
    let mut nl = Netlist::new(format!("mux_tree_{k}"));
    let sel: Vec<NetId> = (0..k).map(|i| nl.add_input(format!("s{i}"))).collect();
    let mut layer: Vec<NetId> = (0..1usize << k)
        .map(|i| nl.add_input(format!("d{i}")))
        .collect();
    for level in 0..k {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            next.push(nl.add_gate(GateKind::Mux, &[sel[level], pair[0], pair[1]]));
        }
        layer = next;
    }
    nl.mark_output(layer[0], "y");
    nl
}

/// Generate a random two-level sum-of-products function as a netlist.
///
/// Produces `cubes` product terms over `inputs` variables, each literal
/// included with probability `density`. Returns the netlist (output `f`).
pub fn random_sop(inputs: usize, cubes: usize, density: f64, seed: u64) -> Netlist {
    assert!(inputs > 0 && cubes > 0, "need inputs and cubes");
    let mut rng = Rng64::new(seed);
    let mut nl = Netlist::new(format!("random_sop_s{seed}"));
    let vars: Vec<NetId> = (0..inputs).map(|i| nl.add_input(format!("x{i}"))).collect();
    let inverted: Vec<NetId> = vars
        .iter()
        .map(|&v| nl.add_gate(GateKind::Not, &[v]))
        .collect();
    let mut terms = Vec::with_capacity(cubes);
    for _ in 0..cubes {
        let mut literals = Vec::new();
        for i in 0..inputs {
            if rng.chance(density) {
                literals.push(if rng.flip() { vars[i] } else { inverted[i] });
            }
        }
        if literals.is_empty() {
            // Guarantee a nonempty cube.
            literals.push(vars[rng.range(0, inputs)]);
        }
        let term = if literals.len() == 1 {
            literals[0]
        } else {
            nl.add_gate(GateKind::And, &literals)
        };
        terms.push(term);
    }
    let f = if terms.len() == 1 {
        terms[0]
    } else {
        nl.add_gate(GateKind::Or, &terms)
    };
    nl.mark_output(f, "f");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dag_validates_and_is_deterministic() {
        let config = RandomDagConfig::default();
        let a = random_dag(&config, 99);
        let b = random_dag(&config, 99);
        a.validate().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.num_outputs(), b.num_outputs());
        // Same seed, same structure.
        for net in a.iter_nets() {
            assert_eq!(a.kind(net), b.kind(net));
            assert_eq!(a.fanins(net), b.fanins(net));
        }
        let c = random_dag(&config, 100);
        let differs = a
            .iter_nets()
            .zip(c.iter_nets())
            .any(|(x, y)| a.fanins(x) != c.fanins(y));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn parity_tree_computes_parity() {
        let nl = parity_tree(5);
        for pattern in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
            let expected = bits.iter().filter(|&&b| b).count() % 2 == 1;
            assert_eq!(nl.eval_comb(&bits), vec![expected]);
        }
    }

    #[test]
    fn parity_tree_single_input() {
        let nl = parity_tree(1);
        assert_eq!(nl.eval_comb(&[true]), vec![true]);
        assert_eq!(nl.eval_comb(&[false]), vec![false]);
    }

    #[test]
    fn mux_tree_selects_correct_leaf() {
        let k = 3;
        let nl = mux_tree(k);
        for sel in 0usize..8 {
            // Data: one-hot at the selected position.
            let mut pattern = vec![false; k + 8];
            for i in 0..k {
                pattern[i] = sel >> i & 1 == 1;
            }
            pattern[k + sel] = true;
            assert_eq!(nl.eval_comb(&pattern), vec![true], "sel={sel}");
            pattern[k + sel] = false;
            pattern[k + (sel + 1) % 8] = true;
            assert_eq!(nl.eval_comb(&pattern), vec![false], "sel={sel} offhot");
        }
    }

    #[test]
    fn random_sop_validates() {
        let nl = random_sop(8, 12, 0.4, 5);
        nl.validate().unwrap();
        assert_eq!(nl.num_outputs(), 1);
        // Output depends on inputs: find two patterns with different output.
        let zero = vec![false; 8];
        let ones = vec![true; 8];
        let a = nl.eval_comb(&zero)[0];
        let b = nl.eval_comb(&ones)[0];
        // Not a hard guarantee, but with 12 cubes of density 0.4 the function
        // is almost surely non-constant for this seed; assert evaluation runs.
        let _ = (a, b);
    }
}
