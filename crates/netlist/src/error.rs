use std::fmt;

/// Errors produced while constructing, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate referenced a net id that does not exist in the netlist.
    DanglingNet {
        /// The offending net id (as a raw index).
        net: usize,
    },
    /// A gate was given the wrong number of inputs for its kind.
    ArityMismatch {
        /// The gate kind name.
        kind: &'static str,
        /// Number of inputs the kind requires (textual, e.g. "exactly 2").
        expected: &'static str,
        /// Number of inputs actually supplied.
        got: usize,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle {
        /// A net participating in the cycle.
        net: usize,
    },
    /// A primary output name or input name was duplicated.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// Text-format parse error.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// The operation requires a purely combinational netlist.
    NotCombinational,
    /// An input pattern had the wrong width.
    PatternWidth {
        /// Width the netlist expects.
        expected: usize,
        /// Width supplied.
        got: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingNet { net } => {
                write!(f, "gate references nonexistent net {net}")
            }
            NetlistError::ArityMismatch {
                kind,
                expected,
                got,
            } => write!(f, "gate kind {kind} requires {expected} inputs, got {got}"),
            NetlistError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net {net}")
            }
            NetlistError::DuplicateName { name } => write!(f, "duplicate name {name:?}"),
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::NotCombinational => {
                write!(f, "operation requires a combinational netlist")
            }
            NetlistError::PatternWidth { expected, got } => {
                write!(f, "input pattern width {got} does not match {expected} inputs")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
