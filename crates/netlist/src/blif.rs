//! A BLIF-inspired text format for netlists.
//!
//! The format is line-oriented:
//!
//! ```text
//! .model adder
//! .inputs a b cin
//! .outputs s cout
//! .gate xor  t1 a b
//! .gate xor  s t1 cin
//! .gate and  t2 a b
//! .gate and  t3 t1 cin
//! .gate or   cout t2 t3
//! .end
//! ```
//!
//! Flip-flops use `.latch q d [en] 0|1` (output, data, optional enable,
//! initial value). Comments start with `#`.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::graph::{NetId, Netlist};

/// Serialize a netlist to the text format.
///
/// Nets are named by their debug name when present, otherwise `n<i>`.
pub fn write_text(nl: &Netlist) -> String {
    let mut out = String::new();
    let name_of = |net: NetId| -> String {
        nl.net_name(net)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("n{}", net.index()))
    };
    out.push_str(&format!(".model {}\n", nl.name()));
    out.push_str(".inputs");
    for &pi in nl.inputs() {
        out.push(' ');
        out.push_str(&name_of(pi));
    }
    out.push('\n');
    out.push_str(".outputs");
    for (_, name) in nl.outputs() {
        out.push(' ');
        out.push_str(name);
    }
    out.push('\n');
    for net in nl.iter_nets() {
        let kind = nl.kind(net);
        match kind {
            GateKind::Input => {}
            GateKind::Dff => {
                let fanins = nl.fanins(net);
                out.push_str(&format!(".latch {} {}", name_of(net), name_of(fanins[0])));
                if fanins.len() == 2 {
                    out.push_str(&format!(" {}", name_of(fanins[1])));
                }
                out.push_str(&format!(" {}\n", nl.dff_init(net) as u8));
            }
            _ => {
                out.push_str(&format!(".gate {} {}", kind.mnemonic(), name_of(net)));
                for &fi in nl.fanins(net) {
                    out.push(' ');
                    out.push_str(&name_of(fi));
                }
                out.push('\n');
            }
        }
    }
    // Emit output aliases when an output name differs from its net's name.
    for (net, name) in nl.outputs() {
        if name_of(*net) != *name {
            out.push_str(&format!(".gate buf {} {}\n", name, name_of(*net)));
        }
    }
    out.push_str(".end\n");
    out
}

/// Parse the text format back into a netlist.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a line number on malformed input,
/// and structural errors if the described netlist is invalid.
pub fn parse_text(text: &str) -> Result<Netlist, NetlistError> {
    #[derive(Debug)]
    enum Pending {
        Gate {
            kind: GateKind,
            output: String,
            inputs: Vec<String>,
            line: usize,
        },
        Latch {
            output: String,
            data: String,
            enable: Option<String>,
            init: bool,
        },
    }

    let mut model = String::from("model");
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut pending: Vec<Pending> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        // `content` is non-empty after trimming, but never trust that
        // invariant with a panic in a parser fed by user files.
        let Some(head) = tokens.next() else {
            return Err(NetlistError::Parse {
                line,
                message: "empty directive".into(),
            });
        };
        let rest: Vec<&str> = tokens.collect();
        match head {
            ".model" => {
                model = rest.first().map(|s| s.to_string()).ok_or(NetlistError::Parse {
                    line,
                    message: "missing model name".into(),
                })?;
            }
            ".inputs" => input_names.extend(rest.iter().map(|s| s.to_string())),
            ".outputs" => output_names.extend(rest.iter().map(|s| s.to_string())),
            ".gate" => {
                if rest.len() < 2 {
                    return Err(NetlistError::Parse {
                        line,
                        message: "gate needs a kind and an output".into(),
                    });
                }
                let kind = GateKind::from_mnemonic(rest[0]).ok_or_else(|| NetlistError::Parse {
                    line,
                    message: format!("unknown gate kind {:?}", rest[0]),
                })?;
                pending.push(Pending::Gate {
                    kind,
                    output: rest[1].to_string(),
                    inputs: rest[2..].iter().map(|s| s.to_string()).collect(),
                    line,
                });
            }
            ".latch" => {
                if rest.len() < 3 || rest.len() > 4 {
                    return Err(NetlistError::Parse {
                        line,
                        message: "latch needs: output data [enable] init".into(),
                    });
                }
                let init = match rest.last().copied().ok_or(NetlistError::Parse {
                    line,
                    message: "latch needs: output data [enable] init".into(),
                })? {
                    "0" => false,
                    "1" => true,
                    other => {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!("latch init must be 0 or 1, got {other:?}"),
                        })
                    }
                };
                pending.push(Pending::Latch {
                    output: rest[0].to_string(),
                    data: rest[1].to_string(),
                    enable: if rest.len() == 4 {
                        Some(rest[2].to_string())
                    } else {
                        None
                    },
                    init,
                });
            }
            ".end" => break,
            other => {
                return Err(NetlistError::Parse {
                    line,
                    message: format!("unknown directive {other:?}"),
                })
            }
        }
    }

    let mut nl = Netlist::new(model);
    let mut names: HashMap<String, NetId> = HashMap::new();
    for name in &input_names {
        if names.contains_key(name) {
            return Err(NetlistError::DuplicateName { name: name.clone() });
        }
        let id = nl.add_input(name.clone());
        names.insert(name.clone(), id);
    }
    // Create latches first (their outputs may be used before definition).
    for p in &pending {
        if let Pending::Latch { output, init, .. } = p {
            if names.contains_key(output) {
                return Err(NetlistError::DuplicateName {
                    name: output.clone(),
                });
            }
            let id = nl.add_dff_placeholder(*init);
            names.insert(output.clone(), id);
        }
    }
    // Create combinational gates in multiple passes (inputs may be defined
    // in any order in the file).
    let mut remaining: Vec<&Pending> = pending
        .iter()
        .filter(|p| matches!(p, Pending::Gate { .. }))
        .collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|p| {
            let Pending::Gate {
                kind,
                output,
                inputs,
                ..
            } = p
            else {
                return false;
            };
            let resolved: Option<Vec<NetId>> =
                inputs.iter().map(|n| names.get(n).copied()).collect();
            match resolved {
                Some(ins) if kind.arity_ok(ins.len()) => {
                    let id = if let GateKind::Const(v) = kind {
                        nl.add_const(*v)
                    } else {
                        nl.add_gate_named(*kind, &ins, output.clone())
                    };
                    names.insert(output.clone(), id);
                    false
                }
                Some(ins) => {
                    // Arity error: surface immediately via a marker.
                    let _ = ins;
                    true
                }
                None => true,
            }
        });
        if remaining.len() == before {
            let p = remaining[0];
            let (line, message) = match p {
                Pending::Gate {
                    kind,
                    inputs,
                    line,
                    output,
                } => {
                    if !kind.arity_ok(inputs.len()) {
                        (
                            *line,
                            format!(
                                "gate {output:?}: kind {kind} requires {} inputs, got {}",
                                kind.arity_spec(),
                                inputs.len()
                            ),
                        )
                    } else {
                        let missing: Vec<&String> =
                            inputs.iter().filter(|n| !names.contains_key(*n)).collect();
                        (*line, format!("gate {output:?}: undefined nets {missing:?}"))
                    }
                }
                Pending::Latch { .. } => unreachable!("latches filtered"),
            };
            return Err(NetlistError::Parse { line, message });
        }
    }
    // Wire latch data/enable.
    for p in &pending {
        if let Pending::Latch {
            output,
            data,
            enable,
            ..
        } = p
        {
            let q = names[output.as_str()];
            let d = *names.get(data).ok_or_else(|| NetlistError::Parse {
                line: 0,
                message: format!("latch {output:?}: undefined data net {data:?}"),
            })?;
            nl.set_dff_data(q, d);
            if let Some(en) = enable {
                let e = *names.get(en).ok_or_else(|| NetlistError::Parse {
                    line: 0,
                    message: format!("latch {output:?}: undefined enable net {en:?}"),
                })?;
                nl.set_dff_enable(q, e);
            }
        }
    }
    for name in &output_names {
        let net = *names.get(name).ok_or_else(|| NetlistError::Parse {
            line: 0,
            message: format!("undefined output net {name:?}"),
        })?;
        nl.mark_output(net, name.clone());
    }
    nl.validate()?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{comparator_gt, counter, ripple_adder};

    #[test]
    fn round_trip_combinational() {
        let (nl, _) = ripple_adder(4);
        let text = write_text(&nl);
        let back = parse_text(&text).unwrap();
        assert_eq!(back.num_inputs(), nl.num_inputs());
        assert_eq!(back.num_outputs(), nl.num_outputs());
        for pattern_bits in 0u32..256 {
            let bits: Vec<bool> = (0..8).map(|i| pattern_bits >> i & 1 == 1).collect();
            assert_eq!(back.eval_comb(&bits), nl.eval_comb(&bits));
        }
    }

    #[test]
    fn round_trip_sequential() {
        let nl = counter(4);
        let text = write_text(&nl);
        let back = parse_text(&text).unwrap();
        assert_eq!(back.num_dffs(), 4);
        assert_eq!(back.num_inputs(), 1);
        back.validate().unwrap();
    }

    #[test]
    fn parse_hand_written() {
        let text = "
# half adder
.model ha
.inputs a b
.outputs s c
.gate xor s a b
.gate and c a b
.end
";
        let nl = parse_text(text).unwrap();
        assert_eq!(nl.eval_comb(&[true, true]), vec![false, true]);
        assert_eq!(nl.eval_comb(&[true, false]), vec![true, false]);
    }

    #[test]
    fn parse_out_of_order_definitions() {
        let text = "
.model ooo
.inputs a b
.outputs y
.gate or y t1 t2
.gate and t1 a b
.gate xor t2 a b
.end
";
        let nl = parse_text(text).unwrap();
        assert_eq!(nl.eval_comb(&[true, false]), vec![true]);
        assert_eq!(nl.eval_comb(&[false, false]), vec![false]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            parse_text(".model m\n.gate frob y a\n.end"),
            Err(NetlistError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_text(".model m\n.inputs a\n.outputs y\n.gate and y a ghost\n.end"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            parse_text(".model m\n.bogus x\n.end"),
            Err(NetlistError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_text(".model m\n.inputs d\n.outputs q\n.latch q d 2\n.end"),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn latch_with_enable_round_trips() {
        let text = "
.model gated
.inputs d en
.outputs q
.latch q d en 0
.end
";
        let nl = parse_text(text).unwrap();
        assert_eq!(nl.num_dffs(), 1);
        let dff = nl.dffs()[0];
        assert_eq!(nl.fanins(dff).len(), 2);
        let again = parse_text(&write_text(&nl)).unwrap();
        assert_eq!(again.fanins(again.dffs()[0]).len(), 2);
    }

    #[test]
    fn comparator_round_trip_function() {
        let (nl, _) = comparator_gt(3);
        let back = parse_text(&write_text(&nl)).unwrap();
        for c in 0u64..8 {
            for d in 0u64..8 {
                let bits: Vec<bool> = (0..3)
                    .map(|i| c >> i & 1 == 1)
                    .chain((0..3).map(|i| d >> i & 1 == 1))
                    .collect();
                assert_eq!(back.eval_comb(&bits), nl.eval_comb(&bits));
            }
        }
    }
}
