//! A small deterministic PRNG (xorshift64*, seeded via splitmix64).
//!
//! The library carries its own generator so that every experiment in the
//! reproduction is bit-reproducible and independent of external crate
//! version churn. `rand` remains a dev-dependency for test convenience.

/// Deterministic 64-bit PRNG (xorshift64* with splitmix64 seeding).
///
/// ```
/// use netlist::Rng64;
/// let mut rng = Rng64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(Rng64::new(42).next_u64(), a); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Rng64 {
        // splitmix64 step guarantees a nonzero xorshift state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng64 { state: z | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.range(0, slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = Rng64::new(0);
        let values: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(values.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
        }
        // Every residue appears for a small bound.
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range() {
        let mut rng = Rng64::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = Rng64::new(13);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate was {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng64::new(17);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 elements should move");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Rng64::new(19);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*rng.choose(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
