//! The [`Netlist`] graph: gates, flip-flops, nets and traversals.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::GateKind;

/// Handle to a net (equivalently, the node driving it).
///
/// `NetId`s are stable: optimization passes rewire fanins but never
/// invalidate existing ids (dead nodes are only removed by
/// [`Netlist::sweep_dead`], which returns a remapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The raw index of this net in the netlist's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a raw index. Intended for tools that serialize ids.
    pub fn from_index(index: usize) -> NetId {
        NetId(index as u32)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Node {
    kind: GateKind,
    inputs: Vec<NetId>,
    name: Option<String>,
    /// Initial state; meaningful only for `Dff` nodes.
    init: bool,
}

/// A gate-level netlist: a DAG of combinational gates plus D flip-flops.
///
/// Flip-flops break cycles: the only legal cycles in the graph pass through a
/// [`GateKind::Dff`] node. All construction methods validate arity; rewiring
/// methods defer cycle checking to [`Netlist::validate`] /
/// [`Netlist::topo_order`].
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NetId>,
    outputs: Vec<(NetId, String)>,
    dffs: Vec<NetId>,
}

impl Netlist {
    /// Create an empty netlist with the given model name.
    pub fn new(name: impl Into<String>) -> Netlist {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a primary input and return its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.push(Node {
            kind: GateKind::Input,
            inputs: Vec::new(),
            name: Some(name.into()),
            init: false,
        });
        self.inputs.push(id);
        id
    }

    /// Add a constant-value net.
    pub fn add_const(&mut self, value: bool) -> NetId {
        self.push(Node {
            kind: GateKind::Const(value),
            inputs: Vec::new(),
            name: None,
            init: false,
        })
    }

    /// Add a combinational gate.
    ///
    /// # Panics
    ///
    /// Panics if the arity is illegal for `kind`, if `kind` is
    /// [`GateKind::Input`]/[`GateKind::Dff`] (use the dedicated methods), or
    /// if any input id is out of range.
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId]) -> NetId {
        assert!(
            !matches!(kind, GateKind::Input | GateKind::Dff),
            "use add_input/add_dff for {kind}"
        );
        assert!(
            kind.arity_ok(inputs.len()),
            "gate kind {kind} requires {} inputs, got {}",
            kind.arity_spec(),
            inputs.len()
        );
        for &input in inputs {
            assert!(
                input.index() < self.nodes.len(),
                "input {input} out of range"
            );
        }
        self.push(Node {
            kind,
            inputs: inputs.to_vec(),
            name: None,
            init: false,
        })
    }

    /// Add a combinational gate with a debug name.
    pub fn add_gate_named(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        name: impl Into<String>,
    ) -> NetId {
        let id = self.add_gate(kind, inputs);
        self.nodes[id.index()].name = Some(name.into());
        id
    }

    /// Add a D flip-flop with data input `d` and initial state `init`.
    ///
    /// The returned net carries the register's *output* (current state).
    /// The data input may be a net defined later; pass a placeholder and
    /// rewire with [`Netlist::set_dff_data`] when building feedback loops,
    /// or use [`Netlist::add_dff_placeholder`].
    pub fn add_dff(&mut self, d: NetId, init: bool) -> NetId {
        assert!(d.index() < self.nodes.len(), "dff data {d} out of range");
        let id = self.push(Node {
            kind: GateKind::Dff,
            inputs: vec![d],
            name: None,
            init,
        });
        self.dffs.push(id);
        id
    }

    /// Add a D flip-flop with a synchronous load-enable input `en`.
    ///
    /// When `en` is low the register holds its value (the gated-clock /
    /// precomputation architectures of the survey use this).
    pub fn add_dff_en(&mut self, d: NetId, en: NetId, init: bool) -> NetId {
        assert!(d.index() < self.nodes.len(), "dff data {d} out of range");
        assert!(en.index() < self.nodes.len(), "dff enable {en} out of range");
        let id = self.push(Node {
            kind: GateKind::Dff,
            inputs: vec![d, en],
            name: None,
            init,
        });
        self.dffs.push(id);
        id
    }

    /// Add a flip-flop whose data input will be connected later (for
    /// feedback). The placeholder initially feeds back on itself.
    pub fn add_dff_placeholder(&mut self, init: bool) -> NetId {
        let id = self.push(Node {
            kind: GateKind::Dff,
            inputs: Vec::new(),
            name: None,
            init,
        });
        self.nodes[id.index()].inputs = vec![id];
        self.dffs.push(id);
        id
    }

    /// Connect (or reconnect) the data input of flip-flop `dff`.
    ///
    /// # Panics
    ///
    /// Panics if `dff` is not a flip-flop.
    pub fn set_dff_data(&mut self, dff: NetId, d: NetId) {
        assert_eq!(self.nodes[dff.index()].kind, GateKind::Dff, "{dff} not a dff");
        assert!(d.index() < self.nodes.len());
        self.nodes[dff.index()].inputs[0] = d;
    }

    /// Attach (or replace) a load-enable input on flip-flop `dff`.
    pub fn set_dff_enable(&mut self, dff: NetId, en: NetId) {
        assert_eq!(self.nodes[dff.index()].kind, GateKind::Dff, "{dff} not a dff");
        assert!(en.index() < self.nodes.len());
        let node = &mut self.nodes[dff.index()];
        if node.inputs.len() == 1 {
            node.inputs.push(en);
        } else {
            node.inputs[1] = en;
        }
    }

    /// Mark a net as a primary output under `name`.
    pub fn mark_output(&mut self, net: NetId, name: impl Into<String>) {
        assert!(net.index() < self.nodes.len(), "output {net} out of range");
        self.outputs.push((net, name.into()));
    }

    fn push(&mut self, node: Node) -> NetId {
        let id = NetId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of nodes (nets) including inputs and flip-flops.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops.
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs `(net, name)`, in declaration order.
    pub fn outputs(&self) -> &[(NetId, String)] {
        &self.outputs
    }

    /// Flip-flop nets, in declaration order.
    pub fn dffs(&self) -> &[NetId] {
        &self.dffs
    }

    /// The gate kind of `net`.
    pub fn kind(&self, net: NetId) -> GateKind {
        self.nodes[net.index()].kind
    }

    /// Fanin nets of `net`.
    pub fn fanins(&self, net: NetId) -> &[NetId] {
        &self.nodes[net.index()].inputs
    }

    /// Optional debug name of `net`.
    pub fn net_name(&self, net: NetId) -> Option<&str> {
        self.nodes[net.index()].name.as_deref()
    }

    /// Initial state of flip-flop `net` (false for non-flip-flops).
    pub fn dff_init(&self, net: NetId) -> bool {
        self.nodes[net.index()].init
    }

    /// Whether the netlist is purely combinational.
    pub fn is_combinational(&self) -> bool {
        self.dffs.is_empty()
    }

    /// Iterate over all net ids in index order.
    pub fn iter_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nodes.len() as u32).map(NetId)
    }

    /// Replace the fanins of a combinational gate (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics on illegal arity or out-of-range inputs. Cycle freedom is
    /// re-checked by [`Netlist::validate`].
    pub fn set_fanins(&mut self, net: NetId, inputs: &[NetId]) {
        let kind = self.nodes[net.index()].kind;
        assert!(kind.arity_ok(inputs.len()) || kind == GateKind::Dff);
        for &input in inputs {
            assert!(input.index() < self.nodes.len());
        }
        self.nodes[net.index()].inputs = inputs.to_vec();
    }

    /// Replace the kind of a gate, keeping its fanins.
    ///
    /// # Panics
    ///
    /// Panics if the current fanin count is illegal for the new kind.
    pub fn set_kind(&mut self, net: NetId, kind: GateKind) {
        let n = self.nodes[net.index()].inputs.len();
        assert!(kind.arity_ok(n), "kind {kind} cannot take {n} inputs");
        self.nodes[net.index()].kind = kind;
    }

    /// Redirect every use of `old` (as a fanin or primary output) to `new`.
    pub fn replace_uses(&mut self, old: NetId, new: NetId) {
        for node in &mut self.nodes {
            for input in &mut node.inputs {
                if *input == old {
                    *input = new;
                }
            }
        }
        for (net, _) in &mut self.outputs {
            if *net == old {
                *net = new;
            }
        }
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Fanout lists for every net.
    pub fn fanouts(&self) -> Vec<Vec<NetId>> {
        let mut fo = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &input in &node.inputs {
                fo[input.index()].push(NetId(i as u32));
            }
        }
        fo
    }

    /// Fanout *count* for every net (cheaper than [`Netlist::fanouts`]).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut fo = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &input in &node.inputs {
                fo[input.index()] += 1;
            }
        }
        fo
    }

    /// Topological order of the combinational graph.
    ///
    /// Flip-flop outputs are treated as sources (their fanin edges are cut),
    /// so the order is valid for single-cycle evaluation. Sources (inputs,
    /// constants, flip-flops) appear in the order too.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if a cycle exists that
    /// does not pass through a flip-flop.
    pub fn topo_order(&self) -> Result<Vec<NetId>, NetlistError> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind == GateKind::Dff {
                continue; // sequential edges are cut
            }
            indegree[i] = node.inputs.len();
        }
        let mut fanouts: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind == GateKind::Dff {
                continue;
            }
            for &input in &node.inputs {
                fanouts[input.index()].push(i as u32);
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|&i| indegree[i as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(NetId(v));
            for &w in &fanouts[v as usize] {
                indegree[w as usize] -= 1;
                if indegree[w as usize] == 0 {
                    queue.push(w);
                }
            }
        }
        if order.len() != n {
            let net = (0..n).find(|&i| indegree[i] > 0).unwrap_or(0);
            return Err(NetlistError::CombinationalCycle { net });
        }
        Ok(order)
    }

    /// Combinational logic level of every net (sources at level 0).
    ///
    /// # Errors
    ///
    /// Propagates cycle errors from [`Netlist::topo_order`].
    pub fn levels(&self) -> Result<Vec<usize>, NetlistError> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.nodes.len()];
        for net in order {
            let node = &self.nodes[net.index()];
            if node.kind == GateKind::Dff || node.kind.is_source() {
                continue;
            }
            level[net.index()] = node
                .inputs
                .iter()
                .map(|i| level[i.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        Ok(level)
    }

    /// Maximum combinational logic level.
    pub fn depth(&self) -> usize {
        self.levels().map(|l| l.into_iter().max().unwrap_or(0)).unwrap_or(0)
    }

    /// Structural validation: arity, dangling nets, cycles, duplicate output
    /// names.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for node in &self.nodes {
            if !node.kind.arity_ok(node.inputs.len()) {
                return Err(NetlistError::ArityMismatch {
                    kind: node.kind.mnemonic(),
                    expected: node.kind.arity_spec(),
                    got: node.inputs.len(),
                });
            }
            for &input in &node.inputs {
                if input.index() >= self.nodes.len() {
                    return Err(NetlistError::DanglingNet { net: input.index() });
                }
            }
        }
        let mut seen = HashMap::new();
        for (_, name) in &self.outputs {
            if seen.insert(name.clone(), ()).is_some() {
                return Err(NetlistError::DuplicateName { name: name.clone() });
            }
        }
        self.topo_order()?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Evaluate a purely combinational netlist on one input pattern.
    ///
    /// Returns primary output values in output order.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential or the pattern width is wrong;
    /// use [`Netlist::try_eval_comb`] for a fallible variant.
    pub fn eval_comb(&self, pattern: &[bool]) -> Vec<bool> {
        self.try_eval_comb(pattern).expect("eval_comb")
    }

    /// Fallible variant of [`Netlist::eval_comb`].
    ///
    /// # Errors
    ///
    /// [`NetlistError::NotCombinational`] for sequential netlists,
    /// [`NetlistError::PatternWidth`] on width mismatch, plus cycle errors.
    pub fn try_eval_comb(&self, pattern: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if !self.is_combinational() {
            return Err(NetlistError::NotCombinational);
        }
        if pattern.len() != self.inputs.len() {
            return Err(NetlistError::PatternWidth {
                expected: self.inputs.len(),
                got: pattern.len(),
            });
        }
        let order = self.topo_order()?;
        let mut values = vec![false; self.nodes.len()];
        for (idx, &input) in self.inputs.iter().enumerate() {
            values[input.index()] = pattern[idx];
        }
        let mut scratch = Vec::new();
        for net in order {
            let node = &self.nodes[net.index()];
            if node.kind.is_source() {
                if let GateKind::Const(v) = node.kind {
                    values[net.index()] = v;
                }
                continue;
            }
            scratch.clear();
            scratch.extend(node.inputs.iter().map(|i| values[i.index()]));
            values[net.index()] = node.kind.eval(&scratch);
        }
        Ok(self.outputs.iter().map(|(net, _)| values[net.index()]).collect())
    }

    // ------------------------------------------------------------------
    // Surgery
    // ------------------------------------------------------------------

    /// Remove nodes not reachable from any primary output or flip-flop.
    ///
    /// Returns the mapping `old id -> new id` (`None` for removed nodes).
    pub fn sweep_dead(&mut self) -> Vec<Option<NetId>> {
        let n = self.nodes.len();
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (net, _) in &self.outputs {
            stack.push(net.index());
        }
        for &dff in &self.dffs {
            stack.push(dff.index());
        }
        // Keep primary inputs so the interface is stable.
        for &pi in &self.inputs {
            stack.push(pi.index());
        }
        while let Some(v) = stack.pop() {
            if live[v] {
                continue;
            }
            live[v] = true;
            for &input in &self.nodes[v].inputs {
                stack.push(input.index());
            }
        }
        let mut map: Vec<Option<NetId>> = vec![None; n];
        let mut new_nodes = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if live[i] {
                map[i] = Some(NetId(new_nodes.len() as u32));
                new_nodes.push(node.clone());
            }
        }
        for node in &mut new_nodes {
            for input in &mut node.inputs {
                *input = map[input.index()].expect("live node references dead fanin");
            }
        }
        self.nodes = new_nodes;
        for input in &mut self.inputs {
            *input = map[input.index()].expect("primary input swept");
        }
        for (net, _) in &mut self.outputs {
            *net = map[net.index()].expect("primary output swept");
        }
        self.dffs.retain(|d| map[d.index()].is_some());
        for dff in &mut self.dffs {
            *dff = map[dff.index()].expect("dff swept");
        }
        map
    }

    /// Remove every node with index `>= len`, restoring the node table to
    /// an earlier append point.
    ///
    /// This is the inverse of a run of `add_gate`/`add_const` calls; it
    /// lets incremental engines revert speculative gate insertions in
    /// place without the renumbering a [`Netlist::sweep_dead`] would do.
    ///
    /// # Panics
    ///
    /// Panics if a surviving node, primary input, primary output, or
    /// flip-flop still references a removed net — rewire those first.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.nodes.len(), "truncate beyond node table");
        for (i, node) in self.nodes[..len].iter().enumerate() {
            for &input in &node.inputs {
                assert!(
                    input.index() < len,
                    "net n{i} references removed net {input}"
                );
            }
        }
        for &pi in &self.inputs {
            assert!(pi.index() < len, "primary input {pi} removed");
        }
        for (net, name) in &self.outputs {
            assert!(net.index() < len, "output {name} ({net}) removed");
        }
        for &dff in &self.dffs {
            assert!(dff.index() < len, "flip-flop {dff} removed");
        }
        self.nodes.truncate(len);
    }

    /// Re-point primary output slot `idx` (in [`Netlist::outputs`] order)
    /// at `net`, keeping its name. Used by incremental engines to undo the
    /// output rewiring of [`Netlist::replace_uses`].
    pub fn set_output_net(&mut self, idx: usize, net: NetId) {
        assert!(net.index() < self.nodes.len(), "output net {net} out of range");
        self.outputs[idx].0 = net;
    }

    /// Extract the transitive-fanin cone of `roots` as a fresh combinational
    /// netlist. Flip-flop outputs become primary inputs of the cone.
    ///
    /// Returns the cone plus the mapping from old ids to cone ids.
    pub fn extract_cone(&self, roots: &[NetId]) -> (Netlist, HashMap<NetId, NetId>) {
        let mut cone = Netlist::new(format!("{}_cone", self.name));
        let mut map: HashMap<NetId, NetId> = HashMap::new();
        // Depth-first, post-order copy.
        let mut stack: Vec<(NetId, bool)> = roots.iter().map(|&r| (r, false)).collect();
        while let Some((net, expanded)) = stack.pop() {
            if map.contains_key(&net) {
                continue;
            }
            let node = &self.nodes[net.index()];
            let as_input = node.kind == GateKind::Dff || node.kind == GateKind::Input;
            if as_input {
                let name = node
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("n{}", net.0));
                let new = cone.add_input(name);
                map.insert(net, new);
                continue;
            }
            if expanded {
                let inputs: Vec<NetId> = node.inputs.iter().map(|i| map[i]).collect();
                let new = if let GateKind::Const(v) = node.kind {
                    cone.add_const(v)
                } else {
                    cone.add_gate(node.kind, &inputs)
                };
                map.insert(net, new);
            } else {
                stack.push((net, true));
                for &input in node.inputs.iter().rev() {
                    if !map.contains_key(&input) {
                        stack.push((input, false));
                    }
                }
            }
        }
        for (i, &root) in roots.iter().enumerate() {
            let mapped = map[&root];
            cone.mark_output(mapped, format!("o{i}"));
        }
        (cone, map)
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gates = self
            .nodes
            .iter()
            .filter(|n| !n.kind.is_source() && n.kind != GateKind::Dff)
            .count();
        write!(
            f,
            "netlist {} ({} inputs, {} outputs, {} gates, {} dffs)",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            gates,
            self.dffs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority3() -> Netlist {
        let mut nl = Netlist::new("maj3");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(GateKind::And, &[a, b]);
        let bc = nl.add_gate(GateKind::And, &[b, c]);
        let ac = nl.add_gate(GateKind::And, &[a, c]);
        let m = nl.add_gate(GateKind::Or, &[ab, bc, ac]);
        nl.mark_output(m, "maj");
        nl
    }

    #[test]
    fn build_and_eval_majority() {
        let nl = majority3();
        assert!(nl.validate().is_ok());
        for pattern in 0u32..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 == 1).collect();
            let expected = bits.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(nl.eval_comb(&bits), vec![expected], "{bits:?}");
        }
    }

    #[test]
    fn topo_order_is_consistent() {
        let nl = majority3();
        let order = nl.topo_order().unwrap();
        assert_eq!(order.len(), nl.len());
        let mut position = vec![0usize; nl.len()];
        for (pos, net) in order.iter().enumerate() {
            position[net.index()] = pos;
        }
        for net in nl.iter_nets() {
            if nl.kind(net) == GateKind::Dff {
                continue;
            }
            for &input in nl.fanins(net) {
                assert!(position[input.index()] < position[net.index()]);
            }
        }
    }

    #[test]
    fn levels_and_depth() {
        let nl = majority3();
        let levels = nl.levels().unwrap();
        let (out, _) = nl.outputs()[0];
        assert_eq!(levels[out.index()], 2);
        assert_eq!(nl.depth(), 2);
    }

    #[test]
    fn dff_feedback_loop_is_legal() {
        // Toggle flip-flop: q' = !q
        let mut nl = Netlist::new("toggle");
        let q = nl.add_dff_placeholder(false);
        let nq = nl.add_gate(GateKind::Not, &[q]);
        nl.set_dff_data(q, nq);
        nl.mark_output(q, "q");
        assert!(nl.validate().is_ok());
        assert_eq!(nl.num_dffs(), 1);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("cycle");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::And, &[a, a]);
        let g2 = nl.add_gate(GateKind::Or, &[g1, a]);
        // Force a combinational cycle g1 <-> g2.
        nl.set_fanins(g1, &[a, g2]);
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn eval_rejects_bad_width() {
        let nl = majority3();
        assert!(matches!(
            nl.try_eval_comb(&[true, false]),
            Err(NetlistError::PatternWidth { expected: 3, got: 2 })
        ));
    }

    #[test]
    fn eval_rejects_sequential() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_dff(a, false);
        nl.mark_output(q, "q");
        assert!(matches!(
            nl.try_eval_comb(&[true]),
            Err(NetlistError::NotCombinational)
        ));
    }

    #[test]
    fn duplicate_output_name_rejected() {
        let mut nl = Netlist::new("dup");
        let a = nl.add_input("a");
        nl.mark_output(a, "y");
        nl.mark_output(a, "y");
        assert!(matches!(
            nl.validate(),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn sweep_dead_removes_unreachable() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let live = nl.add_gate(GateKind::And, &[a, b]);
        let _dead = nl.add_gate(GateKind::Xor, &[a, b]);
        nl.mark_output(live, "y");
        let before = nl.len();
        let map = nl.sweep_dead();
        assert_eq!(nl.len(), before - 1);
        assert!(map.iter().filter(|m| m.is_none()).count() == 1);
        assert!(nl.validate().is_ok());
        assert_eq!(nl.eval_comb(&[true, true]), vec![true]);
        assert_eq!(nl.eval_comb(&[true, false]), vec![false]);
    }

    #[test]
    fn replace_uses_rewires_everything() {
        let mut nl = Netlist::new("rep");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]);
        nl.mark_output(g, "y");
        // Replace uses of b with a: gate becomes AND(a, a) = a.
        nl.replace_uses(b, a);
        assert_eq!(nl.fanins(g), &[a, a]);
        assert_eq!(nl.eval_comb(&[true, false]), vec![true]);
    }

    #[test]
    fn extract_cone_copies_function() {
        let nl = majority3();
        let (out, _) = nl.outputs()[0];
        let (cone, map) = nl.extract_cone(&[out]);
        assert!(cone.is_combinational());
        assert_eq!(cone.num_inputs(), 3);
        assert!(map.contains_key(&out));
        for pattern in 0u32..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 == 1).collect();
            assert_eq!(cone.eval_comb(&bits), nl.eval_comb(&bits));
        }
    }

    #[test]
    fn cone_treats_dff_as_input() {
        let mut nl = Netlist::new("seqcone");
        let a = nl.add_input("a");
        let q = nl.add_dff_placeholder(false);
        let f = nl.add_gate(GateKind::Xor, &[a, q]);
        nl.set_dff_data(q, f);
        nl.mark_output(f, "y");
        let (cone, _) = nl.extract_cone(&[f]);
        assert!(cone.is_combinational());
        assert_eq!(cone.num_inputs(), 2); // a and the register output
    }

    #[test]
    fn fanout_counts_match_fanouts() {
        let nl = majority3();
        let counts = nl.fanout_counts();
        let lists = nl.fanouts();
        for net in nl.iter_nets() {
            assert_eq!(counts[net.index()], lists[net.index()].len());
        }
        // b feeds two AND gates.
        let b = nl.inputs()[1];
        assert_eq!(counts[b.index()], 2);
    }

    #[test]
    fn dff_enable_attach() {
        let mut nl = Netlist::new("en");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q = nl.add_dff(d, false);
        nl.set_dff_enable(q, en);
        assert_eq!(nl.fanins(q), &[d, en]);
        // Replacing the enable works too.
        let en2 = nl.add_input("en2");
        nl.set_dff_enable(q, en2);
        assert_eq!(nl.fanins(q), &[d, en2]);
    }
}
