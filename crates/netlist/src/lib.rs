//! Gate-level netlist substrate for the low-power CAD framework.
//!
//! This crate provides the data structures every other crate in the workspace
//! builds on: a gate-level [`Netlist`] (a DAG of logic gates plus D
//! flip-flops), stable [`NetId`] handles, topological traversal, structural
//! validation, a BLIF-like text format ([`blif`]), procedural circuit
//! generators ([`gen`]) for the circuit classes the DAC'95 survey discusses
//! (adders, array multipliers, comparators, ALUs, random logic, FSM
//! datapaths), and a small deterministic PRNG ([`rng`]) so that library
//! results are reproducible and independent of external crate versions.
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, GateKind};
//!
//! // Build f = (a & b) | c by hand.
//! let mut nl = Netlist::new("example");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let ab = nl.add_gate(GateKind::And, &[a, b]);
//! let f = nl.add_gate(GateKind::Or, &[ab, c]);
//! nl.mark_output(f, "f");
//! assert_eq!(nl.num_inputs(), 3);
//! assert_eq!(nl.eval_comb(&[true, false, true])[0], true);
//! ```

// Index-based loops are idiomatic for the parallel-array structures used
// throughout this EDA codebase.
#![allow(clippy::needless_range_loop)]

pub mod blif;
pub mod gate;
pub mod gen;
pub mod graph;
pub mod rng;
pub mod stats;

mod error;

pub use error::NetlistError;
pub use gate::GateKind;
pub use graph::{NetId, Netlist};
pub use rng::Rng64;
pub use stats::NetlistStats;
