//! Gate kinds and their electrical/logical characteristics.
//!
//! The analytic per-gate numbers here (transistor counts, intrinsic
//! capacitance, drive, delay) substitute for a SPICE-characterized library —
//! see DESIGN.md. They preserve the *relative* costs the survey's
//! optimizations act on: more transistors ⇒ more capacitance, larger fanin ⇒
//! slower gate, inverting CMOS gates cheaper than non-inverting ones.

use std::fmt;

/// The logic function computed by a netlist node.
///
/// `And`/`Or`/`Nand`/`Nor`/`Xor`/`Xnor` are n-ary (arity ≥ 1); `Not` and
/// `Buf` are unary; [`GateKind::Mux`] takes `(sel, a, b)` and computes
/// `if sel { b } else { a }`; [`GateKind::Dff`] takes `(d)` or `(d, en)`
/// where `en` is a synchronous load-enable (the clock itself is implicit).
///
/// ```
/// use netlist::GateKind;
/// assert!(GateKind::Nand.eval(&[true, true]) == false);
/// assert!(GateKind::Xor.eval(&[true, false, false]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// Constant 0 or 1 (no fanin).
    Const(bool),
    /// Non-inverting buffer (also used for inserted path-balancing buffers).
    Buf,
    /// Inverter.
    Not,
    /// n-ary AND.
    And,
    /// n-ary OR.
    Or,
    /// n-ary NAND.
    Nand,
    /// n-ary NOR.
    Nor,
    /// n-ary XOR (odd parity).
    Xor,
    /// n-ary XNOR (even parity).
    Xnor,
    /// 2:1 multiplexer; inputs are `(sel, a, b)`, output `sel ? b : a`.
    Mux,
    /// D flip-flop; inputs `(d)` or `(d, en)`. Output is the stored state.
    Dff,
}

impl GateKind {
    /// Evaluate the gate on concrete Boolean inputs.
    ///
    /// For [`GateKind::Dff`] this returns the *data* input (`d`), i.e. the
    /// value the register would capture; sequential semantics live in the
    /// simulator.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is invalid for the kind (the netlist
    /// builder validates arity, so this only fires on hand-rolled calls).
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Input => panic!("primary inputs have no evaluation"),
            GateKind::Const(v) => v,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            GateKind::Dff => inputs[0],
        }
    }

    /// Evaluate the gate 64 patterns at a time (bit-parallel words).
    ///
    /// Same conventions as [`GateKind::eval`].
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Input => panic!("primary inputs have no evaluation"),
            GateKind::Const(v) => {
                if v {
                    u64::MAX
                } else {
                    0
                }
            }
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Mux => (inputs[0] & inputs[2]) | (!inputs[0] & inputs[1]),
            GateKind::Dff => inputs[0],
        }
    }

    /// Evaluate four 64-pattern words at once (256 patterns per call).
    ///
    /// Thin wrapper over [`GateKind::eval_wide`] at the default lane count.
    pub fn eval_word4(self, inputs: &[u64]) -> [u64; 4] {
        self.eval_wide::<4>(inputs)
    }

    /// Evaluate `L` 64-pattern words at once (`64 * L` patterns per call).
    ///
    /// `inputs` holds the fanin words lane-grouped: fanin `f` occupies
    /// `inputs[L*f .. L*f+L]`. Lane `l` of the result is exactly
    /// `eval_word` over lane `l` of every fanin — the L-wide unroll exists
    /// so the compiler can keep the fold in one wide vector register
    /// (256-bit at `L = 4`) instead of chasing a serial dependency chain
    /// of single words. Plain array loops only: rustc autovectorizes this
    /// on stable, and widening to 512-bit is `L = 8` at the call site.
    ///
    /// # Panics
    ///
    /// Panics for [`GateKind::Input`], which has no evaluation.
    pub fn eval_wide<const L: usize>(self, inputs: &[u64]) -> [u64; L] {
        #[inline(always)]
        fn fold<const L: usize>(
            inputs: &[u64],
            init: u64,
            f: impl Fn(u64, u64) -> u64,
        ) -> [u64; L] {
            let mut acc = [init; L];
            for fanin in inputs.chunks_exact(L) {
                for l in 0..L {
                    acc[l] = f(acc[l], fanin[l]);
                }
            }
            acc
        }
        #[inline(always)]
        fn notl<const L: usize>(mut w: [u64; L]) -> [u64; L] {
            for l in 0..L {
                w[l] = !w[l];
            }
            w
        }
        #[inline(always)]
        fn first<const L: usize>(inputs: &[u64]) -> [u64; L] {
            let mut out = [0u64; L];
            out.copy_from_slice(&inputs[..L]);
            out
        }
        match self {
            GateKind::Input => panic!("primary inputs have no evaluation"),
            GateKind::Const(v) => [if v { u64::MAX } else { 0 }; L],
            GateKind::Buf | GateKind::Dff => first(inputs),
            GateKind::Not => notl(first::<L>(inputs)),
            GateKind::And => fold(inputs, u64::MAX, |a, w| a & w),
            GateKind::Or => fold(inputs, 0, |a, w| a | w),
            GateKind::Nand => notl(fold(inputs, u64::MAX, |a, w| a & w)),
            GateKind::Nor => notl(fold(inputs, 0, |a, w| a | w)),
            GateKind::Xor => fold(inputs, 0, |a, w| a ^ w),
            GateKind::Xnor => notl(fold(inputs, 0, |a, w| a ^ w)),
            GateKind::Mux => {
                let mut out = [0u64; L];
                for l in 0..L {
                    let (sel, a, b) = (inputs[l], inputs[L + l], inputs[2 * L + l]);
                    out[l] = (sel & b) | (!sel & a);
                }
                out
            }
        }
    }

    /// Whether the arity `n` is legal for this kind.
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Input | GateKind::Const(_) => n == 0,
            GateKind::Buf | GateKind::Not => n == 1,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => n >= 1,
            GateKind::Xor | GateKind::Xnor => n >= 1,
            GateKind::Mux => n == 3,
            GateKind::Dff => n == 1 || n == 2,
        }
    }

    /// Textual arity requirement, for error messages.
    pub fn arity_spec(self) -> &'static str {
        match self {
            GateKind::Input | GateKind::Const(_) => "exactly 0",
            GateKind::Buf | GateKind::Not => "exactly 1",
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => "at least 1",
            GateKind::Xor | GateKind::Xnor => "at least 1",
            GateKind::Mux => "exactly 3 (sel, a, b)",
            GateKind::Dff => "1 (d) or 2 (d, en)",
        }
    }

    /// Number of transistors in a static-CMOS realization with `fanin`
    /// inputs. XOR/XNOR/MUX use transmission-gate style counts; the DFF is a
    /// standard master–slave latch pair.
    pub fn transistor_count(self, fanin: usize) -> usize {
        match self {
            GateKind::Input | GateKind::Const(_) => 0,
            GateKind::Buf => 4,
            GateKind::Not => 2,
            GateKind::Nand | GateKind::Nor => 2 * fanin,
            // Non-inverting forms are NAND/NOR plus an output inverter.
            GateKind::And | GateKind::Or => 2 * fanin + 2,
            // Chain of 2-input XOR cells, ~10T each.
            GateKind::Xor => 10 * fanin.saturating_sub(1).max(1),
            GateKind::Xnor => 10 * fanin.saturating_sub(1).max(1) + 2,
            GateKind::Mux => 12,
            GateKind::Dff => 24,
        }
    }

    /// Intrinsic output capacitance (fF) of the gate itself, before wire and
    /// fanout load. Scales with transistor count.
    pub fn intrinsic_cap(self, fanin: usize) -> f64 {
        1.0 + 0.5 * self.transistor_count(fanin) as f64
    }

    /// Input pin capacitance (fF) presented to each driver.
    pub fn input_cap(self) -> f64 {
        match self {
            GateKind::Input | GateKind::Const(_) => 0.0,
            GateKind::Buf | GateKind::Not => 2.0,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => 2.0,
            GateKind::Xor | GateKind::Xnor => 4.0,
            GateKind::Mux => 3.0,
            GateKind::Dff => 3.0,
        }
    }

    /// Nominal propagation delay (arbitrary units) at unit drive with `fanin`
    /// inputs. Stacked series transistors slow a gate roughly linearly.
    pub fn base_delay(self, fanin: usize) -> f64 {
        match self {
            GateKind::Input | GateKind::Const(_) => 0.0,
            GateKind::Buf => 1.0,
            GateKind::Not => 0.5,
            GateKind::Nand | GateKind::Nor => 0.5 + 0.3 * fanin as f64,
            GateKind::And | GateKind::Or => 1.0 + 0.3 * fanin as f64,
            GateKind::Xor | GateKind::Xnor => 1.2 * fanin as f64,
            GateKind::Mux => 1.5,
            GateKind::Dff => 1.0,
        }
    }

    /// Whether this kind is a state element.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// Whether this kind is a source (has no fanin).
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const(_))
    }

    /// Short lowercase mnemonic, used by the text format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Const(false) => "const0",
            GateKind::Const(true) => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
            GateKind::Dff => "dff",
        }
    }

    /// Parse a mnemonic produced by [`GateKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<GateKind> {
        Some(match s {
            "input" => GateKind::Input,
            "const0" => GateKind::Const(false),
            "const1" => GateKind::Const(true),
            "buf" => GateKind::Buf,
            "not" | "inv" => GateKind::Not,
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "mux" => GateKind::Mux,
            "dff" => GateKind::Dff,
            _ => return None,
        })
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_gates() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false, true]));
        assert!(GateKind::Or.eval(&[false, true]));
        assert!(!GateKind::Or.eval(&[false, false]));
        assert!(!GateKind::Nand.eval(&[true, true]));
        assert!(GateKind::Nand.eval(&[true, false]));
        assert!(GateKind::Nor.eval(&[false, false]));
        assert!(!GateKind::Nor.eval(&[true, false]));
        assert!(GateKind::Xor.eval(&[true, false]));
        assert!(!GateKind::Xor.eval(&[true, true]));
        assert!(GateKind::Xnor.eval(&[true, true]));
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(GateKind::Const(true).eval(&[]));
        assert!(!GateKind::Const(false).eval(&[]));
    }

    #[test]
    fn eval_mux_selects() {
        // sel=0 -> a, sel=1 -> b
        assert!(GateKind::Mux.eval(&[false, true, false]));
        assert!(!GateKind::Mux.eval(&[true, true, false]));
    }

    #[test]
    fn word_eval_matches_scalar() {
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        for kind in kinds {
            for pattern in 0u32..8 {
                let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 == 1).collect();
                let words: Vec<u64> = bits.iter().map(|&b| if b { u64::MAX } else { 0 }).collect();
                let scalar = kind.eval(&bits);
                let word = kind.eval_word(&words);
                assert_eq!(word == u64::MAX, scalar, "{kind} on {bits:?}");
                assert!(word == u64::MAX || word == 0);
            }
        }
    }

    #[test]
    fn word4_eval_matches_word_eval_lanewise() {
        let kinds = [
            GateKind::Const(true),
            GateKind::Const(false),
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux,
            GateKind::Dff,
        ];
        // Deterministic pseudo-random fanin words.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for kind in kinds {
            let fanin = match kind {
                GateKind::Const(_) => 0,
                GateKind::Buf | GateKind::Not | GateKind::Dff => 1,
                GateKind::Mux => 3,
                _ => 5,
            };
            let lanes: Vec<u64> = (0..fanin * 4).map(|_| next()).collect();
            let wide = kind.eval_word4(&lanes);
            for l in 0..4 {
                let narrow: Vec<u64> = (0..fanin).map(|f| lanes[4 * f + l]).collect();
                assert_eq!(wide[l], kind.eval_word(&narrow), "{kind} lane {l}");
            }
        }
    }

    #[test]
    fn word_eval_mux() {
        // 4 lanes: sel=0101, a=0011, b=1100 -> out = lane-wise sel? b : a
        let sel = 0b0101u64;
        let a = 0b0011u64;
        let b = 0b1100u64;
        let out = GateKind::Mux.eval_word(&[sel, a, b]);
        assert_eq!(out & 0b1111, 0b0110);
    }

    #[test]
    fn arity_rules() {
        assert!(GateKind::Mux.arity_ok(3));
        assert!(!GateKind::Mux.arity_ok(2));
        assert!(GateKind::Dff.arity_ok(1));
        assert!(GateKind::Dff.arity_ok(2));
        assert!(!GateKind::Dff.arity_ok(3));
        assert!(GateKind::Input.arity_ok(0));
        assert!(!GateKind::Input.arity_ok(1));
        assert!(GateKind::And.arity_ok(5));
        assert!(!GateKind::Not.arity_ok(2));
    }

    #[test]
    fn mnemonic_round_trip() {
        let kinds = [
            GateKind::Input,
            GateKind::Const(false),
            GateKind::Const(true),
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Mux,
            GateKind::Dff,
        ];
        for kind in kinds {
            assert_eq!(GateKind::from_mnemonic(kind.mnemonic()), Some(kind));
        }
        assert_eq!(GateKind::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn transistor_counts_scale_with_fanin() {
        assert_eq!(GateKind::Not.transistor_count(1), 2);
        assert_eq!(GateKind::Nand.transistor_count(2), 4);
        assert_eq!(GateKind::Nand.transistor_count(4), 8);
        assert!(GateKind::And.transistor_count(2) > GateKind::Nand.transistor_count(2));
        assert!(GateKind::Xor.transistor_count(3) > GateKind::Xor.transistor_count(2));
    }

    #[test]
    fn delays_grow_with_fanin() {
        assert!(GateKind::Nand.base_delay(4) > GateKind::Nand.base_delay(2));
        assert!(GateKind::Not.base_delay(1) < GateKind::Xor.base_delay(2));
    }
}
