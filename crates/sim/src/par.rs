//! Scoped-thread worker pool for the simulation engines.
//!
//! The whole experiment suite funnels through the simulators, so they are
//! the natural place to spend every core the host has. This module keeps
//! the workspace's zero-runtime-dependency policy: all parallelism is
//! `std::thread::scope`, all hand-offs are `std::sync::mpsc`.
//!
//! Two invariants every caller relies on:
//!
//! * **Determinism** — [`par_map`] returns results in item order, and the
//!   simulators merge per-shard integer counts in fixed shard order, so an
//!   [`crate::ActivityProfile`] is bit-identical for every thread count.
//! * **Arena locality** — [`par_map_with`] gives each worker one
//!   `init()`-built state reused across every item it steals, so the hot
//!   loops allocate nothing per shard: simulation arenas and event queues
//!   warm up once per worker, not once per work item.
//! * **Panic isolation** — a panic inside `f` on a worker thread does not
//!   poison the other shards. [`par_map`] catches it, lets every healthy
//!   shard finish, then retries the failed items serially in index order.
//!   Only a deterministic second failure propagates, so a transient panic
//!   (e.g. a fault-injection experiment tripping an assert on one shard)
//!   costs a retry instead of the whole run — and the fixed-order merge
//!   the simulators rely on is unaffected because results still come back
//!   in item order.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolve a requested job count: `0` means "all available cores".
pub fn num_threads(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Split `n` items into at most `shards` contiguous, near-equal ranges.
/// Earlier ranges get the remainder; empty ranges are never returned.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Publish the shard shape of one parallel run as observability gauges:
/// `sim.par.<engine>.shards` (peak shard count across runs) and
/// `sim.par.<engine>.balance` (mean shard size / max shard size; 1.0 means
/// perfectly even). Gauges — not counters — because both values depend on
/// the thread count and host, unlike the engines' work counters, which are
/// defined to be thread-count invariant.
pub fn record_shard_gauges(obs: &obs::Obs, engine: &str, shard_sizes: &[usize]) {
    if !obs.is_enabled() || shard_sizes.is_empty() {
        return;
    }
    let shards = shard_sizes.len();
    let total: usize = shard_sizes.iter().sum();
    let max = shard_sizes.iter().copied().max().unwrap_or(1).max(1);
    let balance = total as f64 / (shards as f64 * max as f64);
    obs.gauge_max(&format!("sim.par.{engine}.shards"), shards as f64);
    obs.gauge_set(&format!("sim.par.{engine}.balance"), balance);
}

/// Map `f` over `items` on up to `jobs` scoped worker threads
/// (work-stealing by atomic index), returning results in item order.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` or fewer than two
/// items, runs inline with no thread spawns.
///
/// A panic in `f` on a worker thread is caught per item: the remaining
/// shards run to completion, the panicked items are retried serially in
/// index order on the calling thread, and only a retry that panics again
/// propagates. The inline (single-thread) path has no first-chance catch —
/// a panic there is already deterministic.
pub fn par_map<T, U, F>(items: &[T], jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(items, jobs, || (), |i, t, _: &mut ()| f(i, t))
}

/// [`par_map`] with reusable per-worker state.
///
/// Each worker thread builds its state once with `init()` and threads it
/// through every item it steals, so expensive scratch (simulation arenas,
/// event queues) is constructed `threads` times instead of `items` times.
/// The inline (`jobs <= 1`) path builds one state and reuses it across all
/// items — exactly what a serial caller holding its own arena would do.
///
/// Panic isolation matches [`par_map`], with one addition: a caught panic
/// may have left the worker's state torn mid-update, so the worker rebuilds
/// it with `init()` before stealing the next item, and the serial retry
/// pass runs with a fresh state of its own.
pub fn par_map_with<T, U, S, F, I>(items: &[T], jobs: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads(jobs).min(n);
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(i, t, &mut state))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Option<U>)>();
    let mut results: Vec<Option<U>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let mut failed: Vec<usize> = Vec::new();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // Swallow the payload here; the serial retry below will
                    // reproduce it deterministically if the failure is real.
                    let out =
                        catch_unwind(AssertUnwindSafe(|| f(i, &items[i], &mut state))).ok();
                    if out.is_none() {
                        // The panic may have torn the state mid-update.
                        state = init();
                    }
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            match value {
                Some(v) => results[i] = Some(v),
                None => failed.push(i),
            }
        }
    });
    // Retry panicked items serially, in index order, on this thread with a
    // fresh state. A second panic is deterministic and propagates.
    failed.sort_unstable();
    if !failed.is_empty() {
        let mut state = init();
        for i in failed {
            results[i] = Some(f(i, &items[i], &mut state));
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("worker produced every index"))
        .collect()
}

/// Run `f` with the global panic hook silenced, restoring it afterwards.
///
/// [`par_map`]'s first-chance `catch_unwind` still lets the default hook
/// print a backtrace for a panic that the serial retry then absorbs; tests
/// that inject panics on purpose wrap the call in this to keep output
/// clean. Takes a process-wide lock — panics from *other* threads are
/// silenced too while `f` runs, so this is for tests, not the library
/// hot path.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::sync::Mutex;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    drop(guard);
    match out {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly() {
        for n in 0..40 {
            for shards in 1..9 {
                let ranges = shard_ranges(n, shards);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} shards={shards}");
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn par_map_is_order_preserving() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 3, 8] {
            let out = par_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_gauges_report_count_and_balance() {
        let obs = obs::Obs::enabled();
        record_shard_gauges(&obs, "comb", &[10, 10, 10, 10]);
        let snap = obs.snapshot();
        assert_eq!(snap.gauge("sim.par.comb.shards"), Some(4.0));
        assert_eq!(snap.gauge("sim.par.comb.balance"), Some(1.0));
        // Uneven shards lower balance; shard count keeps its peak.
        record_shard_gauges(&obs, "comb", &[30, 10]);
        let snap = obs.snapshot();
        assert_eq!(snap.gauge("sim.par.comb.shards"), Some(4.0), "gauge_max");
        assert_eq!(snap.gauge("sim.par.comb.balance"), Some(40.0 / 60.0));
        // Disabled handles record nothing and cost nothing.
        record_shard_gauges(&obs::Obs::disabled(), "comb", &[1, 2]);
    }

    #[test]
    fn num_threads_resolves_zero() {
        assert!(num_threads(0) >= 1);
        assert_eq!(num_threads(3), 3);
    }

    #[test]
    fn par_map_retries_transient_panics_serially() {
        use std::sync::atomic::AtomicUsize;
        // Item 7 panics on its first (parallel) attempt only; the serial
        // retry succeeds. Every other item must be unaffected.
        let items: Vec<usize> = (0..32).collect();
        let attempts = AtomicUsize::new(0);
        let out = with_quiet_panics(|| {
            par_map(&items, 4, |i, &x| {
                if i == 7 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient shard failure");
                }
                x * 10
            })
        });
        assert_eq!(out, (0..32).map(|x| x * 10).collect::<Vec<_>>());
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "one retry");
    }

    #[test]
    fn par_map_with_reuses_worker_state() {
        // Count how many states are ever built: at most one per worker
        // (plus none extra for the retry path, unused here).
        use std::sync::atomic::AtomicUsize;
        let builds = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 4] {
            builds.store(0, Ordering::SeqCst);
            let out = par_map_with(
                &items,
                jobs,
                || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    Vec::<usize>::new()
                },
                |i, &x, scratch| {
                    scratch.push(i); // state persists across items
                    x * 2
                },
            );
            assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
            assert!(
                builds.load(Ordering::SeqCst) <= jobs,
                "jobs={jobs}: built {} states",
                builds.load(Ordering::SeqCst)
            );
        }
    }

    #[test]
    fn par_map_with_rebuilds_state_after_panic() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..32).collect();
        let attempts = AtomicUsize::new(0);
        let out = with_quiet_panics(|| {
            par_map_with(
                &items,
                4,
                || 0usize,
                |i, &x, poisoned| {
                    assert_eq!(*poisoned, 0, "torn state must not leak across items");
                    if i == 7 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                        *poisoned = 1; // tear the state, then die
                        panic!("transient shard failure");
                    }
                    x + 100
                },
            )
        });
        assert_eq!(out, (0..32).map(|x| x + 100).collect::<Vec<_>>());
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "one retry");
    }

    #[test]
    fn par_map_propagates_deterministic_panics() {
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            with_quiet_panics(|| {
                par_map(&items, 4, |i, &x| {
                    if i == 3 {
                        panic!("always fails");
                    }
                    x
                })
            })
        });
        assert!(result.is_err(), "second failure must propagate");
    }

    #[test]
    fn par_map_survives_many_simultaneous_panics() {
        use std::sync::atomic::AtomicUsize;
        // Every odd item panics once: all retried serially, in order.
        let items: Vec<usize> = (0..24).collect();
        let first_round = AtomicUsize::new(0);
        let out = with_quiet_panics(|| {
            let counter = &first_round;
            par_map(&items, 8, move |i, &x| {
                if i % 2 == 1 && counter.fetch_add(1, Ordering::SeqCst) < 100 && is_first(i) {
                    panic!("odd shard {i} first attempt");
                }
                x + 1
            })
        });
        assert_eq!(out, (0..24).map(|x| x + 1).collect::<Vec<_>>());

        // Tracks which (odd) indices have already panicked once.
        fn is_first(i: usize) -> bool {
            use std::sync::Mutex;
            static SEEN: Mutex<Option<[bool; 24]>> = Mutex::new(None);
            let mut seen = SEEN.lock().unwrap_or_else(|e| e.into_inner());
            let seen = seen.get_or_insert([false; 24]);
            let first = !seen[i];
            seen[i] = true;
            first
        }
    }
}
