//! Scoped-thread worker pool for the simulation engines.
//!
//! The whole experiment suite funnels through the simulators, so they are
//! the natural place to spend every core the host has. This module keeps
//! the workspace's zero-runtime-dependency policy: all parallelism is
//! `std::thread::scope`, all hand-offs are `std::sync::mpsc`.
//!
//! Two invariants every caller relies on:
//!
//! * **Determinism** — [`par_map`] returns results in item order, and the
//!   simulators merge per-shard integer counts in fixed shard order, so an
//!   [`crate::ActivityProfile`] is bit-identical for every thread count.
//! * **Arena locality** — each worker builds its scratch buffers once and
//!   reuses them across every item it steals, so the hot loops allocate
//!   nothing per block.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolve a requested job count: `0` means "all available cores".
pub fn num_threads(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Split `n` items into at most `shards` contiguous, near-equal ranges.
/// Earlier ranges get the remainder; empty ranges are never returned.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Map `f` over `items` on up to `jobs` scoped worker threads
/// (work-stealing by atomic index), returning results in item order.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` or fewer than two
/// items, runs inline with no thread spawns.
pub fn par_map<T, U, F>(items: &[T], jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads(jobs).min(n);
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    let mut results: Vec<Option<U>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            results[i] = Some(value);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker produced every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly() {
        for n in 0..40 {
            for shards in 1..9 {
                let ranges = shard_ranges(n, shards);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} shards={shards}");
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn par_map_is_order_preserving() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 3, 8] {
            let out = par_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn num_threads_resolves_zero() {
        assert!(num_threads(0) >= 1);
        assert_eq!(num_threads(3), 3);
    }
}
