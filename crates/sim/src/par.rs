//! Persistent worker pool for the simulation engines.
//!
//! The whole experiment suite funnels through the simulators, so they are
//! the natural place to spend every core the host has. This module keeps
//! the workspace's zero-runtime-dependency policy: all parallelism is
//! `std::thread` plus mutex/condvar hand-offs.
//!
//! Worker threads are spawned **once** per process (`cores - 1` of them,
//! lazily, on the first multi-threaded call) and park on a condvar between
//! calls. A parallel run broadcasts one type-erased job to the pool; the
//! calling thread always participates in its own job, so a 1-core host —
//! or a pool busy serving another caller, or a nested call from inside a
//! pool job — degrades gracefully: busy/nested callers fall back to the
//! old scoped-spawn path, and with no pool workers at all the caller just
//! runs every shard itself. Repeated pass-loop measurements (balance and
//! sizing sweeps, serve jobs) therefore amortize thread setup to zero
//! instead of paying a spawn per call.
//!
//! Invariants every caller relies on:
//!
//! * **Determinism** — [`par_map`] returns results in item order, and the
//!   simulators merge per-shard integer counts in fixed shard order, so an
//!   [`crate::ActivityProfile`] is bit-identical for every thread count —
//!   including whatever subset of the pool actually picks the job up.
//! * **Arena locality** — [`par_map_with`] gives each participant one
//!   `init()`-built state reused across every item it steals, so the hot
//!   loops allocate nothing per shard: simulation arenas and event queues
//!   warm up once per participant, not once per work item.
//! * **Panic isolation** — a panic inside `f` does not poison the other
//!   shards. [`par_map`] catches it, lets every healthy shard finish, then
//!   retries the failed items serially in index order. Only a
//!   deterministic second failure propagates, so a transient panic (e.g. a
//!   fault-injection experiment tripping an assert on one shard) costs a
//!   retry instead of the whole run — and the fixed-order merge the
//!   simulators rely on is unaffected because results still come back in
//!   item order. A caught panic also never kills a pool worker: the pool
//!   survives for the next call.

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Resolve a requested job count: `0` means "all available cores".
pub fn num_threads(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Split `n` items into at most `shards` contiguous, near-equal ranges.
/// Earlier ranges get the remainder; empty ranges are never returned.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Publish the shard shape of one parallel run as observability gauges:
/// `sim.par.<engine>.shards` (peak shard count across runs) and
/// `sim.par.<engine>.balance` (mean shard size / max shard size; 1.0 means
/// perfectly even). Gauges — not counters — because both values depend on
/// the thread count and host, unlike the engines' work counters, which are
/// defined to be thread-count invariant.
pub fn record_shard_gauges(obs: &obs::Obs, engine: &str, shard_sizes: &[usize]) {
    if !obs.is_enabled() || shard_sizes.is_empty() {
        return;
    }
    let shards = shard_sizes.len();
    let total: usize = shard_sizes.iter().sum();
    let max = shard_sizes.iter().copied().max().unwrap_or(1).max(1);
    let balance = total as f64 / (shards as f64 * max as f64);
    obs.gauge_max(&format!("sim.par.{engine}.shards"), shards as f64);
    obs.gauge_set(&format!("sim.par.{engine}.balance"), balance);
}

/// One broadcast job: a type-erased pointer to the caller's work closure,
/// valid until the caller clears the slot and drains `running` to zero.
struct JobSlot {
    /// The work closure, lifetime-erased. Safety: the submitting call
    /// clears this slot and then blocks until `PoolState::running == 0`
    /// before returning, so no worker can observe it dangling.
    work: *const (dyn Fn() + Sync),
    /// Job sequence number; a worker claims each generation at most once.
    generation: u64,
    /// Remaining pool participants the caller asked for.
    slots: usize,
}

// The raw closure pointer is only ever dereferenced under the claim
// protocol above; the pointee is `Sync` by construction.
unsafe impl Send for JobSlot {}

struct PoolState {
    job: Option<JobSlot>,
    generation: u64,
    /// Workers currently inside a claimed job.
    running: usize,
    /// A call currently owns the job slot (set until its drain completes).
    busy: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Wakes parked workers when a job lands.
    work_cv: Condvar,
    /// Wakes the submitting caller when the last claimed worker finishes.
    done_cv: Condvar,
    /// Worker threads actually spawned (0 on a 1-core host).
    workers: AtomicUsize,
}

thread_local! {
    /// Set on pool worker threads so nested parallel calls from inside a
    /// job never touch the (necessarily busy) pool.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn lock_state(pool: &Pool) -> MutexGuard<'_, PoolState> {
    pool.state.lock().unwrap_or_else(|e| e.into_inner())
}

fn worker_loop(pool: &'static Pool) {
    IN_POOL_WORKER.with(|w| w.set(true));
    let mut last_generation = 0u64;
    let mut st = lock_state(pool);
    loop {
        let claimed = match st.job.as_mut() {
            Some(job) if job.generation != last_generation && job.slots > 0 => {
                job.slots -= 1;
                last_generation = job.generation;
                Some(job.work)
            }
            _ => None,
        };
        match claimed {
            Some(work) => {
                st.running += 1;
                drop(st);
                // Keep the worker alive whatever the job does; per-item
                // panic handling lives inside the closure.
                let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (*work)() }));
                st = lock_state(pool);
                st.running -= 1;
                if st.running == 0 {
                    pool.done_cv.notify_all();
                }
            }
            None => st = pool.work_cv.wait(st).unwrap_or_else(|e| e.into_inner()),
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        // `LPOPT_POOL_WORKERS` overrides the pool size (0 disables the
        // pool entirely, forcing the scoped fallback).
        let mut target = std::env::var("LPOPT_POOL_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .saturating_sub(1)
            });
        // Under test, keep at least two workers alive even on a 1-core
        // host so the claim/drain protocol itself is exercised; results
        // are partition-agnostic, so this cannot change any outcome.
        if cfg!(test) && std::env::var_os("LPOPT_POOL_WORKERS").is_none() {
            target = target.max(2);
        }
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                running: 0,
                busy: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            workers: AtomicUsize::new(0),
        }));
        let mut spawned = 0;
        for _ in 0..target {
            if std::thread::Builder::new()
                .name("lpopt-par".into())
                .spawn(move || worker_loop(pool))
                .is_ok()
            {
                spawned += 1;
            }
        }
        pool.workers.store(spawned, Ordering::Release);
        pool
    })
}

/// Run `work` once on this thread and on up to `helpers` additional
/// threads, returning only when every participant has finished.
///
/// Prefers the persistent pool; falls back to scoped spawning when the
/// pool is busy with another caller, when called from inside a pool job,
/// or when the host has no spare cores to park workers on.
fn run_participants(helpers: usize, work: &(dyn Fn() + Sync)) {
    if helpers == 0 {
        work();
        return;
    }
    if IN_POOL_WORKER.with(|w| w.get()) {
        return run_scoped(helpers, work);
    }
    let pool = pool();
    if pool.workers.load(Ordering::Acquire) == 0 {
        return run_scoped(helpers, work);
    }
    {
        let mut st = lock_state(pool);
        if st.busy {
            drop(st);
            return run_scoped(helpers, work);
        }
        st.busy = true;
        st.generation += 1;
        // Safety: cleared below before this frame can unwind or return,
        // with a drain of `running` after it.
        let erased: *const (dyn Fn() + Sync) =
            unsafe { std::mem::transmute(work as *const (dyn Fn() + Sync)) };
        st.job = Some(JobSlot {
            work: erased,
            generation: st.generation,
            slots: helpers,
        });
        pool.work_cv.notify_all();
    }
    work();
    let mut st = lock_state(pool);
    st.job = None;
    while st.running > 0 {
        st = pool.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st.busy = false;
}

fn run_scoped(helpers: usize, work: &(dyn Fn() + Sync)) {
    std::thread::scope(|scope| {
        for _ in 0..helpers {
            scope.spawn(work);
        }
        work();
    });
}

/// Map `f` over `items` on up to `jobs` worker threads
/// (work-stealing by atomic index), returning results in item order.
///
/// `f` receives `(index, &item)`. With `jobs <= 1` or fewer than two
/// items, runs inline with no thread spawns.
///
/// A panic in `f` on a worker thread is caught per item: the remaining
/// shards run to completion, the panicked items are retried serially in
/// index order on the calling thread, and only a retry that panics again
/// propagates. The inline (single-thread) path has no first-chance catch —
/// a panic there is already deterministic.
pub fn par_map<T, U, F>(items: &[T], jobs: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_with(items, jobs, || (), |i, t, _: &mut ()| f(i, t))
}

/// [`par_map`] with reusable per-worker state.
///
/// Each worker thread builds its state once with `init()` and threads it
/// through every item it steals, so expensive scratch (simulation arenas,
/// event queues) is constructed `threads` times instead of `items` times.
/// The inline (`jobs <= 1`) path builds one state and reuses it across all
/// items — exactly what a serial caller holding its own arena would do.
///
/// Panic isolation matches [`par_map`], with one addition: a caught panic
/// may have left the worker's state torn mid-update, so the worker rebuilds
/// it with `init()` before stealing the next item, and the serial retry
/// pass runs with a fresh state of its own.
pub fn par_map_with<T, U, S, F, I>(items: &[T], jobs: usize, init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> U + Sync,
{
    let n = items.len();
    let threads = num_threads(jobs).min(n);
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(i, t, &mut state))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let sink: Mutex<(Vec<Option<U>>, Vec<usize>)> = Mutex::new((slots, Vec::new()));
    let work = || {
        let mut state = init();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            // Swallow the payload here; the serial retry below will
            // reproduce it deterministically if the failure is real.
            let out = catch_unwind(AssertUnwindSafe(|| f(i, &items[i], &mut state))).ok();
            let rebuild = out.is_none();
            {
                let mut sink = sink.lock().unwrap_or_else(|e| e.into_inner());
                match out {
                    Some(v) => sink.0[i] = Some(v),
                    None => sink.1.push(i),
                }
            }
            if rebuild {
                // The panic may have torn the state mid-update.
                state = init();
            }
        }
    };
    run_participants(threads - 1, &work);
    let (mut results, mut failed) = sink.into_inner().unwrap_or_else(|e| e.into_inner());
    // Retry panicked items serially, in index order, on this thread with a
    // fresh state. A second panic is deterministic and propagates.
    failed.sort_unstable();
    if !failed.is_empty() {
        let mut state = init();
        for i in failed {
            results[i] = Some(f(i, &items[i], &mut state));
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("worker produced every index"))
        .collect()
}

/// Run `f` with the global panic hook silenced, restoring it afterwards.
///
/// [`par_map`]'s first-chance `catch_unwind` still lets the default hook
/// print a backtrace for a panic that the serial retry then absorbs; tests
/// that inject panics on purpose wrap the call in this to keep output
/// clean. Takes a process-wide lock — panics from *other* threads are
/// silenced too while `f` runs, so this is for tests, not the library
/// hot path.
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::sync::Mutex;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(prev);
    drop(guard);
    match out {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly() {
        for n in 0..40 {
            for shards in 1..9 {
                let ranges = shard_ranges(n, shards);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} shards={shards}");
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= shards.max(1));
            }
        }
    }

    #[test]
    fn par_map_is_order_preserving() {
        let items: Vec<usize> = (0..100).collect();
        for jobs in [1, 2, 3, 8] {
            let out = par_map(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_gauges_report_count_and_balance() {
        let obs = obs::Obs::enabled();
        record_shard_gauges(&obs, "comb", &[10, 10, 10, 10]);
        let snap = obs.snapshot();
        assert_eq!(snap.gauge("sim.par.comb.shards"), Some(4.0));
        assert_eq!(snap.gauge("sim.par.comb.balance"), Some(1.0));
        // Uneven shards lower balance; shard count keeps its peak.
        record_shard_gauges(&obs, "comb", &[30, 10]);
        let snap = obs.snapshot();
        assert_eq!(snap.gauge("sim.par.comb.shards"), Some(4.0), "gauge_max");
        assert_eq!(snap.gauge("sim.par.comb.balance"), Some(40.0 / 60.0));
        // Disabled handles record nothing and cost nothing.
        record_shard_gauges(&obs::Obs::disabled(), "comb", &[1, 2]);
    }

    #[test]
    fn num_threads_resolves_zero() {
        assert!(num_threads(0) >= 1);
        assert_eq!(num_threads(3), 3);
    }

    #[test]
    fn par_map_retries_transient_panics_serially() {
        use std::sync::atomic::AtomicUsize;
        // Item 7 panics on its first (parallel) attempt only; the serial
        // retry succeeds. Every other item must be unaffected.
        let items: Vec<usize> = (0..32).collect();
        let attempts = AtomicUsize::new(0);
        let out = with_quiet_panics(|| {
            par_map(&items, 4, |i, &x| {
                if i == 7 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient shard failure");
                }
                x * 10
            })
        });
        assert_eq!(out, (0..32).map(|x| x * 10).collect::<Vec<_>>());
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "one retry");
    }

    #[test]
    fn par_map_with_reuses_worker_state() {
        // Count how many states are ever built: at most one per worker
        // (plus none extra for the retry path, unused here).
        use std::sync::atomic::AtomicUsize;
        let builds = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        for jobs in [1, 4] {
            builds.store(0, Ordering::SeqCst);
            let out = par_map_with(
                &items,
                jobs,
                || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    Vec::<usize>::new()
                },
                |i, &x, scratch| {
                    scratch.push(i); // state persists across items
                    x * 2
                },
            );
            assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
            assert!(
                builds.load(Ordering::SeqCst) <= jobs,
                "jobs={jobs}: built {} states",
                builds.load(Ordering::SeqCst)
            );
        }
    }

    #[test]
    fn par_map_with_rebuilds_state_after_panic() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..32).collect();
        let attempts = AtomicUsize::new(0);
        let out = with_quiet_panics(|| {
            par_map_with(
                &items,
                4,
                || 0usize,
                |i, &x, poisoned| {
                    assert_eq!(*poisoned, 0, "torn state must not leak across items");
                    if i == 7 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                        *poisoned = 1; // tear the state, then die
                        panic!("transient shard failure");
                    }
                    x + 100
                },
            )
        });
        assert_eq!(out, (0..32).map(|x| x + 100).collect::<Vec<_>>());
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "one retry");
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        // A shard that itself fans out must not wait on the pool it is
        // running inside of (it falls back to scoped threads).
        let items: Vec<usize> = (0..8).collect();
        let out = par_map(&items, 4, |_, &x| {
            let inner: Vec<usize> = (0..8).collect();
            par_map(&inner, 2, |_, &y| y + x).iter().sum::<usize>()
        });
        assert_eq!(out[0], (0..8).sum::<usize>());
        assert_eq!(out[3], (0..8).map(|y| y + 3).sum::<usize>());
    }

    #[test]
    fn concurrent_callers_share_the_pool_safely() {
        // Several threads race whole par_map calls; whoever loses the
        // pool lease must still finish correctly on scoped threads.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let items: Vec<usize> = (0..200).collect();
                    for _ in 0..10 {
                        let out = par_map(&items, 3, |_, &x| x * 2);
                        assert_eq!(out[9], 18);
                        assert_eq!(out[199], 398);
                    }
                });
            }
        });
    }

    #[test]
    fn pool_survives_repeated_calls() {
        // Exercise lease/drain cycling on one thread: any leak of the
        // job slot or running count would wedge a later call.
        let items: Vec<usize> = (0..50).collect();
        for round in 0..25 {
            let out = par_map(&items, 4, |_, &x| x + round);
            assert_eq!(out[49], 49 + round);
        }
    }

    #[test]
    fn par_map_propagates_deterministic_panics() {
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            with_quiet_panics(|| {
                par_map(&items, 4, |i, &x| {
                    if i == 3 {
                        panic!("always fails");
                    }
                    x
                })
            })
        });
        assert!(result.is_err(), "second failure must propagate");
    }

    #[test]
    fn par_map_survives_many_simultaneous_panics() {
        use std::sync::atomic::AtomicUsize;
        // Every odd item panics once: all retried serially, in order.
        let items: Vec<usize> = (0..24).collect();
        let first_round = AtomicUsize::new(0);
        let out = with_quiet_panics(|| {
            let counter = &first_round;
            par_map(&items, 8, move |i, &x| {
                if i % 2 == 1 && counter.fetch_add(1, Ordering::SeqCst) < 100 && is_first(i) {
                    panic!("odd shard {i} first attempt");
                }
                x + 1
            })
        });
        assert_eq!(out, (0..24).map(|x| x + 1).collect::<Vec<_>>());

        // Tracks which (odd) indices have already panicked once.
        fn is_first(i: usize) -> bool {
            use std::sync::Mutex;
            static SEEN: Mutex<Option<[bool; 24]>> = Mutex::new(None);
            let mut seen = SEEN.lock().unwrap_or_else(|e| e.into_inner());
            let seen = seen.get_or_insert([false; 24]);
            let first = !seen[i];
            seen[i] = true;
            first
        }
    }
}
