//! Bucketed calendar/time-wheel event queue for the timing simulators.
//!
//! The event engines ([`crate::event::EventSim`],
//! [`crate::incr::IncrementalEventSim`]) used to order pending events with a
//! global `BinaryHeap<Reverse<(time, net, seq, value)>>`: every push and pop
//! paid an `O(log n)` sift over 24-byte tuples, and same-instant duplicates
//! for one net were only coalesced lazily at pop time. This queue replaces
//! the heap with the classic calendar-queue layout:
//!
//! * a power-of-two **wheel** of `W` buckets, one bucket per timestamp in
//!   the sliding window `[cursor, cursor + W)` (bucket `t & (W-1)`), with a
//!   one-bit-per-bucket occupancy bitmap so the next timestamp is found by
//!   a circular `trailing_zeros` scan instead of a heap sift;
//! * a small **overflow heap** for the rare event scheduled at or beyond
//!   `cursor + W` (incremental replays seed boundary transitions at
//!   arbitrary recorded times); entries migrate into the wheel lazily as
//!   the cursor advances past their window;
//! * a pooled **node arena**, cleared per cycle, so events are `(u32, bool)`
//!   pool slots instead of heap-allocated tuples; and
//! * a per-net **pending slot**: at most one scheduled event per net is
//!   live at a time, so re-scheduling a net at the same timestamp
//!   overwrites the pending value in place (a coalesce) instead of
//!   enqueueing a duplicate to cancel later.
//!
//! # Determinism contract
//!
//! [`CalendarQueue::pop_bucket`] drains one whole timestamp per call,
//! returning its transitions sorted by raw net index. That reproduces the
//! old heap's `(time, net, seq)` pop order bit-exactly: events at a given
//! instant come out in net order, and the last value scheduled for a
//! `(net, time)` pair wins — exactly what the heap's peek-ahead coalescing
//! rule (`seq` tiebreak + skip-if-next-is-same-net-and-time) computed.
//!
//! # Caller obligations
//!
//! * Timestamps passed to [`CalendarQueue::schedule`] must not precede the
//!   last popped timestamp (gate delays are clamped `>= 1`, so fanout
//!   events always land strictly after the bucket being processed).
//! * Per net, schedule times must be nondecreasing within a cycle. Both
//!   engines satisfy this naturally: a net's events are produced by pops at
//!   nondecreasing times plus one fixed per-net delay.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Smallest wheel ever allocated (one occupancy word).
const MIN_WHEEL: u32 = 64;
/// Largest wheel: beyond this, distant events go to the overflow heap.
const MAX_WHEEL: u32 = 4096;

/// One pending transition: `net` will take `value` at the bucket's time.
#[derive(Debug, Clone, Copy)]
struct Node {
    net: u32,
    value: bool,
}

/// A bucketed calendar queue over `(time, net, value)` events.
///
/// See the module docs for layout and the determinism contract.
#[derive(Debug, Default)]
pub struct CalendarQueue {
    /// Pooled event nodes for the current cycle.
    nodes: Vec<Node>,
    /// Wheel buckets holding node ids; bucket `b` owns at most one
    /// timestamp `t` with `t & mask == b` at a time.
    buckets: Vec<Vec<u32>>,
    /// One occupancy bit per bucket.
    occupied: Vec<u64>,
    /// `wheel_size - 1` (wheel size is a power of two).
    mask: u64,
    /// All pending times are `>= cursor`; the wheel covers
    /// `[cursor, cursor + wheel_size)`.
    cursor: u64,
    /// Events scheduled at or beyond `cursor + wheel_size` at insert time.
    overflow: BinaryHeap<Reverse<(u64, u32)>>,
    /// Live (scheduled, not yet popped) node count.
    pending: u64,
    /// Per-net pending slots; see [`Slot`].
    slots: Vec<Slot>,
    /// Bumped by [`CalendarQueue::begin_cycle`]; invalidates all slots.
    /// Never 0 after the first cycle, and slots reset stamps to 0 on wrap,
    /// so a stale stamp can never alias a live epoch.
    epoch: u32,
}

/// Per-net pending-slot record, packed to 16 bytes so the scheduling fast
/// path (`stamp` check + `time` compare + node overwrite) touches one
/// cache line. `stamp == epoch` means the net has a live node at `time`,
/// stored at pool index `node`.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    time: u64,
    stamp: u32,
    node: u32,
}

/// What [`CalendarQueue::schedule`] did with the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduled {
    /// A new pending node was created.
    New,
    /// The net already had a pending node at this exact time; its value
    /// was overwritten in place (last write wins, as the old heap's
    /// coalescing rule dictated).
    Coalesced,
    /// Nothing was scheduled: the event was a no-change marked `unchanged`
    /// by the caller and the net had no pending node, so it could not
    /// affect the value trajectory
    /// (see [`CalendarQueue::schedule_transition`]).
    Suppressed,
}

impl CalendarQueue {
    /// An empty queue; call [`CalendarQueue::reset`] before use.
    pub fn new() -> CalendarQueue {
        CalendarQueue::default()
    }

    /// Size the queue for `nets` nets and delays up to `max_delay` ticks,
    /// clearing any leftover state from a previous (possibly aborted) run.
    ///
    /// The wheel spans `(max_delay + 1).next_power_of_two()` buckets,
    /// clamped to `[64, 4096]`: every fanout event scheduled while draining
    /// the cursor bucket then lands inside the wheel window, so only
    /// far-future seeds (incremental boundary replays) touch the overflow
    /// heap.
    pub fn reset(&mut self, nets: usize, max_delay: u32) {
        let wheel = (max_delay.saturating_add(1))
            .next_power_of_two()
            .clamp(MIN_WHEEL, MAX_WHEEL) as usize;
        if self.buckets.len() != wheel {
            self.buckets = vec![Vec::new(); wheel];
            self.occupied = vec![0u64; wheel / 64];
            self.mask = wheel as u64 - 1;
        } else {
            for b in &mut self.buckets {
                b.clear();
            }
            self.occupied.fill(0);
        }
        self.nodes.clear();
        self.overflow.clear();
        self.pending = 0;
        self.cursor = 0;
        self.epoch = 0;
        self.slots.clear();
        self.slots.resize(nets, Slot::default());
    }

    /// Grow capacity in place for `nets` nets and delays up to `max_delay`
    /// without touching live slot state; the queue must be drained.
    ///
    /// Unlike [`CalendarQueue::reset`] this costs `O(added nets)`, not
    /// `O(all nets)`: existing slot stamps stay valid because slots are
    /// invalidated by the epoch bump in [`CalendarQueue::begin_cycle`],
    /// not by clearing. The incremental engine calls this per replay so a
    /// small-cone delta does not pay a whole-netlist queue reset.
    pub fn ensure(&mut self, nets: usize, max_delay: u32) {
        debug_assert_eq!(self.pending, 0, "ensure() needs a drained queue");
        let wheel = (max_delay.saturating_add(1))
            .next_power_of_two()
            .clamp(MIN_WHEEL, MAX_WHEEL) as usize;
        if self.buckets.len() != wheel {
            self.buckets = vec![Vec::new(); wheel];
            self.occupied = vec![0u64; wheel / 64];
            self.mask = wheel as u64 - 1;
        }
        if self.slots.len() < nets {
            self.slots.resize(nets, Slot::default());
        }
    }

    /// Start a new cycle: recycle the node pool, rewind the cursor and
    /// invalidate every per-net slot. The queue must be drained
    /// (`pending() == 0`) — each cycle's pop loop guarantees that.
    pub fn begin_cycle(&mut self) {
        debug_assert_eq!(self.pending, 0, "queue must drain between cycles");
        self.nodes.clear();
        self.cursor = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // `u32` stamp wrap (once per 2^32 cycles): clear stamps so a
            // slot from 4 billion cycles ago cannot look live again.
            for s in &mut self.slots {
                s.stamp = 0;
            }
            self.epoch = 1;
        }
    }

    /// Number of live (scheduled, not yet popped) events.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Whether `net` has a live (scheduled, not yet popped) event.
    ///
    /// The slot tracks the net's most recent schedule, and per-net
    /// nondecreasing schedule times mean every earlier event for the net
    /// popped at or before the slot time — so `slot_time > cursor` is
    /// exactly "still pending". Valid between pops (the engines call this
    /// from the drain loop, where the cursor bucket is fully drained);
    /// right after seeding, events at the cursor time itself would be
    /// misreported as popped.
    pub fn has_pending(&self, net: u32) -> bool {
        let s = self.slots[net as usize];
        s.stamp == self.epoch && s.time > self.cursor
    }

    /// Schedule `net` to take `value` at `time`.
    ///
    /// Returns [`Scheduled::Coalesced`] when the net already has a pending
    /// event at exactly `time` (the value is overwritten in place and the
    /// queue does not grow), [`Scheduled::New`] otherwise.
    pub fn schedule(&mut self, net: u32, time: u64, value: bool) -> Scheduled {
        debug_assert!(time >= self.cursor, "cannot schedule into the past");
        let s = self.slots[net as usize];
        if s.stamp == self.epoch && s.time == time {
            self.nodes[s.node as usize].value = value;
            return Scheduled::Coalesced;
        }
        self.push_node(net, time, value);
        Scheduled::New
    }

    /// [`CalendarQueue::schedule`] with no-change suppression folded into
    /// the same slot lookup. `unchanged` is the caller's verdict that
    /// `value` equals the net's current settled value: when the net also
    /// has no pending node, the event is suppressed entirely — every
    /// future event for the net lands strictly later (pop times rise and
    /// its delay is fixed), so by its apply time the value would still be
    /// in place and the old engine would have enqueued, popped, and
    /// cancelled it. A pending node at an earlier time means the value
    /// *will* change before `time`, so the event schedules normally.
    ///
    /// Only valid from the drain loop (between [`CalendarQueue::pop_bucket`]
    /// calls): right after seeding, pending events at the cursor time
    /// itself would be mistaken for popped ones.
    pub fn schedule_transition(
        &mut self,
        net: u32,
        time: u64,
        value: bool,
        unchanged: bool,
    ) -> Scheduled {
        debug_assert!(time > self.cursor, "fanout events land after the cursor");
        let s = self.slots[net as usize];
        if s.stamp == self.epoch {
            if s.time == time {
                self.nodes[s.node as usize].value = value;
                return Scheduled::Coalesced;
            }
            if s.time > self.cursor {
                // A live earlier node: the net's value changes before
                // `time`, so even an `unchanged` event must apply.
                self.push_node(net, time, value);
                return Scheduled::New;
            }
        }
        if unchanged {
            return Scheduled::Suppressed;
        }
        self.push_node(net, time, value);
        Scheduled::New
    }

    fn push_node(&mut self, net: u32, time: u64, value: bool) {
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { net, value });
        self.slots[net as usize] = Slot { time, stamp: self.epoch, node: id };
        let wheel = self.mask + 1;
        if time < self.cursor + wheel {
            self.bucket_insert(time, id);
        } else {
            self.overflow.push(Reverse((time, id)));
        }
        self.pending += 1;
    }

    fn bucket_insert(&mut self, time: u64, id: u32) {
        let b = (time & self.mask) as usize;
        self.buckets[b].push(id);
        self.occupied[b / 64] |= 1u64 << (b % 64);
    }

    /// Pop the next pending timestamp, draining its whole bucket into
    /// `out` as `(net, value)` pairs sorted by net index (one entry per
    /// net — same-time duplicates were coalesced at schedule time).
    ///
    /// Returns the timestamp, or `None` when the queue is empty.
    pub fn pop_bucket(&mut self, out: &mut Vec<(u32, bool)>) -> Option<u64> {
        if self.pending == 0 {
            return None;
        }
        let wheel_min = self.scan_wheel();
        let over_min = self.overflow.peek().map(|&Reverse((t, _))| t);
        let time = match (wheel_min, over_min) {
            // `o == w` must take this branch: an overflow event tied with
            // a wheel resident has to migrate into the bucket before the
            // drain, or one timestamp would split into two waves.
            (Some(w), Some(o)) if o <= w => {
                self.advance_to(o);
                o
            }
            (Some(w), _) => {
                self.cursor = w;
                w
            }
            (None, Some(o)) => {
                self.advance_to(o);
                o
            }
            (None, None) => {
                debug_assert!(false, "pending > 0 but no event found");
                return None;
            }
        };
        let b = (time & self.mask) as usize;
        self.occupied[b / 64] &= !(1u64 << (b % 64));
        out.clear();
        // The bucket is moved out so `self.nodes` stays borrowable; its
        // capacity comes back with it.
        let mut bucket = std::mem::take(&mut self.buckets[b]);
        for &id in &bucket {
            let node = self.nodes[id as usize];
            out.push((node.net, node.value));
        }
        self.pending -= bucket.len() as u64;
        bucket.clear();
        self.buckets[b] = bucket;
        // One live node per net per time, so sorting by net alone is a
        // total order; values never tie-break.
        out.sort_unstable_by_key(|&(net, _)| net);
        Some(time)
    }

    /// Advance the cursor to `time` (taken from the overflow heap) and
    /// migrate every overflow event now inside the wheel window. Wheel
    /// residents stay valid: they all have times in `[old_cursor, time)`'s
    /// complement — at least `time` is impossible since `time` was the
    /// global minimum outside the wheel, and below `old_cursor + wheel`
    /// they remain below `time + wheel`.
    fn advance_to(&mut self, time: u64) {
        self.cursor = time;
        let horizon = time + self.mask + 1;
        while let Some(&Reverse((t, id))) = self.overflow.peek() {
            if t >= horizon {
                break;
            }
            self.overflow.pop();
            self.bucket_insert(t, id);
        }
    }

    /// Minimum pending timestamp inside the wheel, if any: a circular scan
    /// of the occupancy bitmap starting at the cursor's bucket.
    fn scan_wheel(&self) -> Option<u64> {
        let wheel = self.mask + 1;
        let base = (self.cursor & self.mask) as usize;
        let nwords = self.occupied.len();
        let (w0, b0) = (base / 64, base % 64);
        // Bits at or after the cursor inside the cursor's own word.
        let head = self.occupied[w0] >> b0;
        if head != 0 {
            return Some(self.cursor + head.trailing_zeros() as u64);
        }
        for k in 1..=nwords {
            let w = (w0 + k) % nwords;
            let word = self.occupied[w];
            if word != 0 {
                let pos = (w * 64) as u64 + word.trailing_zeros() as u64;
                let dist = (pos + wheel - base as u64) & self.mask;
                return Some(self.cursor + dist);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(q: &mut CalendarQueue) -> Vec<(u64, Vec<(u32, bool)>)> {
        let mut out = Vec::new();
        let mut batch = Vec::new();
        while let Some(t) = q.pop_bucket(&mut batch) {
            out.push((t, batch.clone()));
        }
        out
    }

    #[test]
    fn pops_in_time_then_net_order() {
        let mut q = CalendarQueue::new();
        q.reset(8, 1);
        q.begin_cycle();
        q.schedule(3, 5, true);
        q.schedule(1, 2, false);
        q.schedule(7, 5, false);
        q.schedule(0, 2, true);
        let waves = drain_all(&mut q);
        assert_eq!(
            waves,
            vec![
                (2, vec![(0, true), (1, false)]),
                (5, vec![(3, true), (7, false)]),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn same_net_same_time_coalesces_last_value_wins() {
        let mut q = CalendarQueue::new();
        q.reset(4, 1);
        q.begin_cycle();
        assert_eq!(q.schedule(2, 3, true), Scheduled::New);
        assert_eq!(q.schedule(2, 3, false), Scheduled::Coalesced);
        assert_eq!(q.schedule(2, 3, true), Scheduled::Coalesced);
        assert_eq!(q.pending(), 1);
        let waves = drain_all(&mut q);
        assert_eq!(waves, vec![(3, vec![(2, true)])]);
    }

    #[test]
    fn same_net_later_time_is_a_new_event() {
        let mut q = CalendarQueue::new();
        q.reset(4, 1);
        q.begin_cycle();
        assert_eq!(q.schedule(2, 3, true), Scheduled::New);
        assert_eq!(q.schedule(2, 9, false), Scheduled::New);
        let waves = drain_all(&mut q);
        assert_eq!(
            waves,
            vec![(3, vec![(2, true)]), (9, vec![(2, false)])]
        );
    }

    #[test]
    fn overflow_events_migrate_into_the_wheel() {
        let mut q = CalendarQueue::new();
        // Wheel clamps to 64 buckets; times past 63 overflow at insert.
        q.reset(4, 1);
        q.begin_cycle();
        q.schedule(0, 1, true);
        q.schedule(1, 1000, true);
        q.schedule(2, 70, false);
        q.schedule(3, 1000, false);
        let waves = drain_all(&mut q);
        assert_eq!(
            waves,
            vec![
                (1, vec![(0, true)]),
                (70, vec![(2, false)]),
                (1000, vec![(1, true), (3, false)]),
            ]
        );
    }

    #[test]
    fn overflow_tied_with_wheel_resident_drains_as_one_wave() {
        let mut q = CalendarQueue::new();
        q.reset(4, 1); // 64-bucket wheel
        q.begin_cycle();
        q.schedule(1, 100, true); // beyond the window: overflow
        q.schedule(0, 50, false);
        let mut batch = Vec::new();
        assert_eq!(q.pop_bucket(&mut batch), Some(50));
        // Cursor is now 50, so time 100 fits the wheel window [50, 114).
        q.schedule(2, 100, false);
        // Both the migrated overflow event and the wheel resident sit at
        // t=100: they must come out as one wave, not two.
        assert_eq!(q.pop_bucket(&mut batch), Some(100));
        assert_eq!(batch, vec![(1, true), (2, false)]);
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_wraparound_keeps_order() {
        let mut q = CalendarQueue::new();
        q.reset(4, 1); // 64-bucket wheel
        q.begin_cycle();
        q.schedule(0, 60, true);
        let mut batch = Vec::new();
        assert_eq!(q.pop_bucket(&mut batch), Some(60));
        // 61 and 100 map to buckets 61 and 36: 36 < 61 in bucket index but
        // 100 > 61 in time; the circular scan from the cursor gets it right.
        q.schedule(1, 100, true);
        q.schedule(2, 61, false);
        assert_eq!(q.pop_bucket(&mut batch), Some(61));
        assert_eq!(batch, vec![(2, false)]);
        assert_eq!(q.pop_bucket(&mut batch), Some(100));
        assert_eq!(batch, vec![(1, true)]);
    }

    #[test]
    fn begin_cycle_recycles_the_pool() {
        let mut q = CalendarQueue::new();
        q.reset(4, 1);
        for cycle in 0..3 {
            q.begin_cycle();
            q.schedule(0, 1, cycle % 2 == 0);
            q.schedule(1, 2, true);
            let waves = drain_all(&mut q);
            assert_eq!(waves.len(), 2, "cycle {cycle}");
            assert_eq!(waves[0].1, vec![(0, cycle % 2 == 0)]);
        }
    }

    #[test]
    fn reset_clears_leftover_state() {
        let mut q = CalendarQueue::new();
        q.reset(4, 1);
        q.begin_cycle();
        q.schedule(0, 5, true);
        q.schedule(1, 500, true); // overflow
        // Simulate an aborted run: reset without draining.
        q.reset(4, 1);
        assert!(q.is_empty());
        q.begin_cycle();
        q.schedule(2, 1, true);
        let waves = drain_all(&mut q);
        assert_eq!(waves, vec![(1, vec![(2, true)])]);
    }

    #[test]
    fn wheel_sizes_follow_max_delay() {
        let mut q = CalendarQueue::new();
        q.reset(4, 1);
        assert_eq!(q.buckets.len(), 64, "clamped to one bitmap word");
        q.reset(4, 100);
        assert_eq!(q.buckets.len(), 128);
        q.reset(4, 1 << 20);
        assert_eq!(q.buckets.len(), 4096, "clamped at the top");
    }
}
