//! Incremental fanout-cone re-evaluation.
//!
//! The optimization passes of this workspace (path balancing, don't-care
//! rewriting, transistor sizing) are iterative-improvement loops: propose a
//! small structural edit, re-estimate power, accept or revert. Re-running a
//! full [`crate::comb::CombSim`] / [`crate::event::EventSim`] per candidate
//! makes every pass O(gates × candidates). The engines here keep the packed
//! 64-wide per-net words of the last full evaluation resident, apply a
//! [`Delta`], mark the structural fanout cone of the edit dirty, and
//! re-evaluate **only** dirtied nets in levelized order — with an early
//! cut-off wherever a re-evaluated net's words come out unchanged. Toggle
//! and one counts are updated by subtracting the old cone contribution and
//! adding the new one, never by recounting the stream.
//!
//! Both engines are **bit-identical** to their from-scratch counterparts:
//! [`IncrementalSim::activity`] equals `CombSim::activity` and
//! [`IncrementalEventSim::activity`] equals `EventSim::activity` on the
//! same netlist and stimulus, bit for bit. The event-driven variant replays
//! the existing event queue, but seeds each cycle's wave from the recorded
//! transition waveforms of the dirty cone's *boundary* (fanins just outside
//! the cone) instead of the primary inputs, so replay cost is proportional
//! to the cone's event traffic.
//!
//! When a delta dirties more than half the netlist (or under
//! `LPOPT_INCR_STRESS=1`), the engines fall back to a full re-evaluation
//! through the same code path — results are identical either way, the
//! fallback merely skips pointless cone bookkeeping.
//!
//! Applied deltas are journaled on a multi-slot **undo stack**: a search
//! can take a [`Mark`] with [`IncrementalSim::checkpoint`], speculatively
//! apply a chain of deltas, score each state on the resident engine, and
//! either unwind to any live mark with [`IncrementalSim::rollback_to`]
//! (bit-identical to never having applied the chain) or make the chain
//! permanent with [`IncrementalSim::commit`]. Callers that never
//! checkpoint keep the old single-slot cost: with no outstanding marks
//! the stack is trimmed to one frame per apply, so [`IncrementalSim::revert`]
//! still undoes the most recent delta and memory stays constant.
//!
//! Observability: every applied delta publishes `sim.incr.deltas`,
//! `sim.incr.nets_dirtied`, `sim.incr.nets_reevaluated`,
//! `sim.incr.cutoffs`, and `sim.incr.full_evals`; the undo stack adds
//! `sim.incr.checkpoints`, `sim.incr.rollbacks`, and `sim.incr.commits`;
//! the event engine also publishes the usual `sim.event.*` counters for
//! its (restricted) replays.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use budget::{BudgetExceeded, ResourceBudget};
use netlist::{GateKind, NetId, Netlist};

use crate::event::{DelayModel, TimingActivity};
use crate::profile::ActivityProfile;
use crate::queue::{CalendarQueue, Scheduled};
use crate::stimulus::PackedPatterns;
use crate::wide::{self, LANES};

/// One structural edit inside a [`Delta`].
#[derive(Debug, Clone)]
pub enum DeltaOp {
    /// Replace the kind and fanins of an existing gate.
    SetGate {
        /// Target net (must not be a primary input).
        net: NetId,
        /// New gate function.
        kind: GateKind,
        /// New fanins.
        fanins: Vec<NetId>,
    },
    /// Append a new gate; its id is `base_len + gates added so far`.
    AddGate {
        /// Gate function.
        kind: GateKind,
        /// Fanins (may reference earlier `AddGate` results).
        fanins: Vec<NetId>,
    },
    /// Redirect every use of `old` (fanin or primary output) to `new`.
    ReplaceUses {
        /// Net being replaced.
        old: NetId,
        /// Replacement net.
        new: NetId,
    },
}

/// A batch of structural edits against a netlist of known size.
///
/// Built by a pass, applied atomically by an incremental engine (or to a
/// plain [`Netlist`] clone via [`Delta::apply_to`]); ids assigned by
/// [`Delta::add_gate`] are exactly the ids `Netlist::add_gate` will return
/// when the ops replay in order, so delta-built and directly-built
/// netlists are identical node for node.
#[derive(Debug, Clone)]
pub struct Delta {
    base_len: usize,
    added: usize,
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// Start an empty delta against the current size of `nl`.
    pub fn for_netlist(nl: &Netlist) -> Delta {
        Delta {
            base_len: nl.len(),
            added: 0,
            ops: Vec::new(),
        }
    }

    /// Netlist length this delta was built against.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of gates this delta appends.
    pub fn num_added(&self) -> usize {
        self.added
    }

    /// Whether the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Replace the function and fanins of an existing gate.
    pub fn set_gate(&mut self, net: NetId, kind: GateKind, fanins: &[NetId]) {
        assert!(net.index() < self.base_len, "set_gate target must exist");
        assert!(kind != GateKind::Input, "cannot rewrite a net into an input");
        self.ops.push(DeltaOp::SetGate {
            net,
            kind,
            fanins: fanins.to_vec(),
        });
    }

    /// Append a gate; returns the id it will occupy once applied.
    pub fn add_gate(&mut self, kind: GateKind, fanins: &[NetId]) -> NetId {
        let id = NetId::from_index(self.base_len + self.added);
        self.added += 1;
        self.ops.push(DeltaOp::AddGate {
            kind,
            fanins: fanins.to_vec(),
        });
        id
    }

    /// Redirect every use of `old` to `new`.
    pub fn replace_uses(&mut self, old: NetId, new: NetId) {
        if old != new {
            self.ops.push(DeltaOp::ReplaceUses { old, new });
        }
    }

    /// Apply the delta to a plain netlist (no incremental state).
    ///
    /// # Panics
    ///
    /// Panics if `nl` is not the size the delta was built against, or if an
    /// op violates the netlist's arity/range invariants.
    pub fn apply_to(&self, nl: &mut Netlist) {
        assert_eq!(nl.len(), self.base_len, "delta built against different netlist");
        for op in &self.ops {
            match op {
                DeltaOp::AddGate { kind, fanins } => {
                    nl.add_gate(*kind, fanins);
                }
                DeltaOp::SetGate { net, kind, fanins } => {
                    set_gate_in(nl, *net, *kind, fanins);
                }
                DeltaOp::ReplaceUses { old, new } => {
                    nl.replace_uses(*old, *new);
                }
            }
        }
    }
}

/// Order `set_kind`/`set_fanins` so the netlist's per-call arity asserts
/// hold for any legal (kind, fanins) pair.
fn set_gate_in(nl: &mut Netlist, net: NetId, kind: GateKind, fanins: &[NetId]) {
    if nl.kind(net) == kind {
        nl.set_fanins(net, fanins);
    } else if kind.arity_ok(nl.fanins(net).len()) {
        nl.set_kind(net, kind);
        nl.set_fanins(net, fanins);
    } else {
        nl.set_fanins(net, fanins);
        nl.set_kind(net, kind);
    }
}

/// What one [`IncrementalSim::apply_delta`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyInfo {
    /// Nets in the structural fanout cone of the edit.
    pub dirtied: usize,
    /// Nets actually re-evaluated.
    pub reevaluated: usize,
    /// Re-evaluations whose words came out unchanged (propagation stopped).
    pub cutoffs: usize,
    /// Whether the full-eval fallback path ran.
    pub full_eval: bool,
}

/// Cumulative counters mirroring the `sim.incr.*` obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrStats {
    /// Deltas applied (successful `apply_delta` calls).
    pub deltas: u64,
    /// Total nets marked dirty across all deltas.
    pub nets_dirtied: u64,
    /// Total nets re-evaluated.
    pub nets_reevaluated: u64,
    /// Total early cut-offs (re-evaluated, words unchanged).
    pub cutoffs: u64,
    /// Deltas that took the full re-evaluation fallback.
    pub full_evals: u64,
    /// Checkpoints taken ([`IncrementalSim::checkpoint`]).
    pub checkpoints: u64,
    /// Rollbacks performed (`rollback_to` / `revert` calls that unwound).
    pub rollbacks: u64,
    /// Commits performed (`commit` calls that raised the floor).
    pub commits: u64,
}

/// A position in an engine's undo stack, minted by `checkpoint()`.
///
/// Marks are absolute (the number of deltas applied when the checkpoint
/// was taken) and totally ordered: a later checkpoint compares greater.
/// A mark stays valid until a `commit` at or above it raises the
/// journal floor past it, or — for marks released by a rollback/commit —
/// until the auto-trim on a later apply drops its frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mark(u64);

/// Undo journal frame for one applied delta. Frames stack: the engines
/// keep one per apply above the committed floor, undone LIFO.
#[derive(Debug, Default)]
struct Undo {
    prev_len: usize,
    /// `(output slot, old net)` for outputs rewired by `ReplaceUses`.
    outputs: Vec<(usize, NetId)>,
    /// `(net, old kind, old fanins)` for rewired existing nets.
    structure: Vec<(NetId, GateKind, Vec<NetId>)>,
    /// `(net, old level)` for existing nets whose level changed.
    levels: Vec<(NetId, u32)>,
    /// `(net, old words, old toggles, old ones)` for re-counted nets.
    words: Vec<(NetId, Vec<u64>, u64, u64)>,
}

/// Incremental zero-delay (functional) engine.
///
/// Owns a netlist clone plus the packed per-net words, integer toggle/one
/// counts, levels and fanout lists of the last evaluation, and keeps all of
/// them consistent under [`IncrementalSim::apply_delta`] /
/// [`IncrementalSim::revert`].
#[derive(Debug)]
pub struct IncrementalSim {
    nl: Netlist,
    cycles: usize,
    nblocks: usize,
    /// Net-major packed values: `words[net * nblocks + block]`, masked to
    /// the stream length in the final block.
    words: Vec<u64>,
    toggles: Vec<u64>,
    ones: Vec<u64>,
    levels: Vec<u32>,
    fanouts: Vec<Vec<NetId>>,
    force_full: bool,
    /// Evaluate aligned [`LANES`]-block groups with the wide path (each
    /// net's blocks are contiguous in `words`, so the lanes need no
    /// gather). Off under `LPOPT_WIDE_SCALAR=1`; bit-identical either way.
    wide: bool,
    obs: obs::Obs,
    stats: IncrStats,
    /// Journal frames for applies in `(floor, applied]`, oldest first.
    undo: Vec<Undo>,
    /// Deltas applied over the engine's lifetime (monotone).
    applied: u64,
    /// Committed floor: applies at or below it can no longer be unwound.
    floor: u64,
    /// Outstanding checkpoint marks (nondecreasing). The oldest entry
    /// pins the auto-trim: frames at or above it survive new applies.
    cps: Vec<u64>,
    // Last-apply info consumed by the event engine.
    cone: Vec<NetId>,
    touched: Vec<NetId>,
    last_full: bool,
    // Epoch-stamped scratch (no per-delta clearing).
    epoch: u64,
    cone_stamp: Vec<u64>,
    queued_stamp: Vec<u64>,
    struct_stamp: Vec<u64>,
    lvl_done: Vec<u64>,
    lvl_onstack: Vec<u64>,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    ins: Vec<u64>,
    new_words: Vec<u64>,
}

fn stress_env() -> bool {
    std::env::var_os("LPOPT_INCR_STRESS").is_some_and(|v| v != "0")
}

fn remove_one(list: &mut Vec<NetId>, x: NetId) {
    let pos = list
        .iter()
        .position(|&y| y == x)
        .expect("fanout edge must be present");
    list.swap_remove(pos);
}

impl IncrementalSim {
    /// Build from a full evaluation of `nl` over `packed` (unlimited
    /// budget, no obs).
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential/cyclic or the stimulus width
    /// does not match.
    pub fn from_full_eval(nl: &Netlist, packed: &PackedPatterns) -> IncrementalSim {
        match Self::try_from_full_eval(nl, packed, &ResourceBudget::unlimited(), obs::Obs::disabled())
        {
            Ok(sim) => sim,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// [`IncrementalSim::from_full_eval`] under a budget, with an obs
    /// handle. The initial full evaluation publishes the same
    /// `sim.comb.cycles` / `sim.comb.gate_evals` counters a
    /// [`crate::comb::CombSim`] run would.
    pub fn try_from_full_eval(
        nl: &Netlist,
        packed: &PackedPatterns,
        budget: &ResourceBudget,
        obs: obs::Obs,
    ) -> Result<IncrementalSim, BudgetExceeded> {
        let sim = Self::build(nl, packed, budget, obs)?;
        if sim.obs.is_enabled() {
            sim.obs.add("sim.comb.cycles", sim.cycles as u64);
            let evaluated = sim.nl.len() - sim.nl.num_inputs();
            sim.obs
                .add("sim.comb.gate_evals", sim.nblocks as u64 * evaluated as u64);
        }
        Ok(sim)
    }

    pub(crate) fn build(
        nl: &Netlist,
        packed: &PackedPatterns,
        budget: &ResourceBudget,
        obs: obs::Obs,
    ) -> Result<IncrementalSim, BudgetExceeded> {
        assert!(nl.is_combinational(), "incremental engine requires combinational netlist");
        assert_eq!(packed.width(), nl.num_inputs(), "stimulus width");
        let order = nl.topo_order().expect("netlist must be acyclic");
        let n = nl.len();
        let cycles = packed.cycles();
        let nblocks = packed.num_blocks();
        budget.check_sim_steps(cycles as u64 * n.max(1) as u64)?;
        budget.check_deadline()?;
        let mut words = vec![0u64; n * nblocks];
        for (i, &pi) in nl.inputs().iter().enumerate() {
            for b in 0..nblocks {
                words[pi.index() * nblocks + b] = packed.word(i, b);
            }
        }
        // Each net's blocks are contiguous, so an aligned group of LANES
        // blocks is a ready-made wide word; only the stream's partial tail
        // (if any) needs the masked scalar path.
        let wide_on = !wide::scalar_env();
        let full_blocks = cycles / 64;
        let mut ins = Vec::new();
        for (step, &net) in order.iter().enumerate() {
            if step & 0xF == 0 {
                budget.check_deadline()?;
            }
            let kind = nl.kind(net);
            if kind == GateKind::Input {
                continue;
            }
            let mut b = 0;
            while b < nblocks {
                if wide_on && b % LANES == 0 && b + LANES <= full_blocks {
                    ins.clear();
                    for &f in nl.fanins(net) {
                        ins.extend_from_slice(&words[f.index() * nblocks + b..][..LANES]);
                    }
                    let out = kind.eval_wide::<LANES>(&ins);
                    words[net.index() * nblocks + b..][..LANES].copy_from_slice(&out);
                    b += LANES;
                } else {
                    ins.clear();
                    ins.extend(nl.fanins(net).iter().map(|f| words[f.index() * nblocks + b]));
                    let w = (cycles - b * 64).min(64);
                    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                    words[net.index() * nblocks + b] = kind.eval_word(&ins) & mask;
                    b += 1;
                }
            }
        }
        let mut toggles = vec![0u64; n];
        let mut ones = vec![0u64; n];
        for i in 0..n {
            let (t, o) = count_words(&words[i * nblocks..(i + 1) * nblocks], cycles);
            toggles[i] = t;
            ones[i] = o;
        }
        let levels = nl
            .levels()
            .expect("netlist must be acyclic")
            .into_iter()
            .map(|l| l as u32)
            .collect();
        Ok(IncrementalSim {
            fanouts: nl.fanouts(),
            nl: nl.clone(),
            cycles,
            nblocks,
            words,
            toggles,
            ones,
            levels,
            force_full: stress_env(),
            wide: wide_on,
            obs,
            stats: IncrStats::default(),
            undo: Vec::new(),
            applied: 0,
            floor: 0,
            cps: Vec::new(),
            cone: Vec::new(),
            touched: Vec::new(),
            last_full: false,
            epoch: 0,
            cone_stamp: vec![0; n],
            queued_stamp: vec![0; n],
            struct_stamp: vec![0; n],
            lvl_done: vec![0; n],
            lvl_onstack: vec![0; n],
            heap: BinaryHeap::new(),
            ins: Vec::new(),
            new_words: vec![0; nblocks],
        })
    }

    /// The engine's current netlist (base netlist plus all applied deltas).
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    /// Cycles in the resident stimulus.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Cumulative incremental-evaluation statistics.
    pub fn stats(&self) -> IncrStats {
        self.stats
    }

    /// Force the full re-evaluation fallback on every delta (also enabled
    /// by `LPOPT_INCR_STRESS=1`). Results are bit-identical either way;
    /// this exists for stress tests and A/B timing.
    pub fn set_force_full(&mut self, on: bool) {
        self.force_full = on;
    }

    /// Attach an observability handle (counters flush per applied delta).
    pub fn with_obs(mut self, obs: obs::Obs) -> IncrementalSim {
        self.obs = obs;
        self
    }

    #[inline]
    fn word_bit(&self, idx: usize, cycle: usize) -> bool {
        self.words[idx * self.nblocks + cycle / 64] >> (cycle % 64) & 1 == 1
    }

    /// Apply a delta (unlimited budget).
    ///
    /// # Panics
    ///
    /// Panics if the delta creates a combinational cycle or violates
    /// netlist invariants.
    pub fn apply_delta(&mut self, delta: &Delta) -> ApplyInfo {
        match self.try_apply_delta(delta, &ResourceBudget::unlimited()) {
            Ok(info) => info,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// Apply a delta under a budget. Each re-evaluated net is metered as
    /// `cycles` simulation steps (the unit the full engines use), checked
    /// every 16 nets along with the deadline. On exhaustion the partial
    /// apply is rolled back and the engine is exactly as before the call.
    pub fn try_apply_delta(
        &mut self,
        delta: &Delta,
        budget: &ResourceBudget,
    ) -> Result<ApplyInfo, BudgetExceeded> {
        let info = self.try_apply_delta_noflush(delta, budget)?;
        self.auto_trim();
        self.flush_incr(&info);
        Ok(info)
    }

    pub(crate) fn flush_incr(&self, info: &ApplyInfo) {
        if self.obs.is_enabled() {
            self.obs.add("sim.incr.deltas", 1);
            self.obs.add("sim.incr.nets_dirtied", info.dirtied as u64);
            self.obs
                .add("sim.incr.nets_reevaluated", info.reevaluated as u64);
            self.obs.add("sim.incr.cutoffs", info.cutoffs as u64);
            self.obs.add("sim.incr.full_evals", info.full_eval as u64);
        }
    }

    pub(crate) fn try_apply_delta_noflush(
        &mut self,
        delta: &Delta,
        budget: &ResourceBudget,
    ) -> Result<ApplyInfo, BudgetExceeded> {
        assert_eq!(
            delta.base_len,
            self.nl.len(),
            "delta built against a different netlist size"
        );
        let prev_len = self.nl.len();
        let new_len = prev_len + delta.added;
        self.epoch += 1;
        self.grow_scratch(new_len);
        self.undo.push(Undo {
            prev_len,
            ..Undo::default()
        });
        self.touched.clear();

        // Phase 1: structural application (cheap; no evaluation).
        for op in &delta.ops {
            match op {
                DeltaOp::AddGate { kind, fanins } => {
                    let id = self.nl.add_gate(*kind, fanins);
                    self.fanouts.push(Vec::new());
                    for &f in fanins {
                        self.fanouts[f.index()].push(id);
                    }
                    self.levels.push(0);
                    self.words.extend(std::iter::repeat_n(0, self.nblocks));
                    self.toggles.push(0);
                    self.ones.push(0);
                    self.touched.push(id);
                }
                DeltaOp::SetGate { net, kind, fanins } => {
                    assert!(
                        self.nl.kind(*net) != GateKind::Input,
                        "cannot rewrite primary input {net}"
                    );
                    self.journal_structure(*net);
                    for &f in self.nl.fanins(*net).to_vec().iter() {
                        remove_one(&mut self.fanouts[f.index()], *net);
                    }
                    set_gate_in(&mut self.nl, *net, *kind, fanins);
                    for &f in fanins {
                        self.fanouts[f.index()].push(*net);
                    }
                    self.touched.push(*net);
                }
                DeltaOp::ReplaceUses { old, new } => {
                    assert!(new.index() < self.nl.len(), "replacement {new} out of range");
                    for (idx, (net, _)) in self.nl.outputs().iter().enumerate() {
                        if net == old {
                            self.undo.last_mut().expect("undo live").outputs.push((idx, *old));
                        }
                    }
                    let users = std::mem::take(&mut self.fanouts[old.index()]);
                    for &user in &users {
                        self.journal_structure(user);
                    }
                    // Each entry in `users` is one fanin edge user -> old;
                    // all of them move to `new`.
                    for &user in &users {
                        if self.cone_stamp[user.index()] != self.epoch {
                            self.cone_stamp[user.index()] = self.epoch;
                            self.touched.push(user);
                        }
                    }
                    self.fanouts[new.index()].extend(users);
                    self.nl.replace_uses(*old, *new);
                }
            }
        }
        // `touched` dedup above borrowed cone_stamp; restart the epoch use
        // for the cone BFS proper.
        self.epoch += 1;

        // Phase 2: structural fanout cone of the edit.
        self.cone.clear();
        for i in 0..self.touched.len() {
            let t = self.touched[i];
            if self.cone_stamp[t.index()] != self.epoch {
                self.cone_stamp[t.index()] = self.epoch;
                self.cone.push(t);
            }
        }
        let mut head = 0;
        while head < self.cone.len() {
            let net = self.cone[head];
            head += 1;
            for fi in 0..self.fanouts[net.index()].len() {
                let sink = self.fanouts[net.index()][fi];
                if self.cone_stamp[sink.index()] != self.epoch {
                    self.cone_stamp[sink.index()] = self.epoch;
                    self.cone.push(sink);
                }
            }
        }
        let full = self.force_full || self.cone.len() * 2 > self.nl.len();
        self.last_full = full;

        // Phase 3: recompute levels (full Kahn pass in fallback mode, a
        // memoized DFS over the cone otherwise; both journal changes and
        // detect delta-created cycles).
        if full {
            let fresh = self
                .nl
                .levels()
                .unwrap_or_else(|e| panic!("delta created a combinational cycle: {e}"));
            for (i, l) in fresh.into_iter().enumerate() {
                let l = l as u32;
                if self.levels[i] != l {
                    if i < prev_len {
                        self.undo
                            .last_mut()
                            .expect("undo live")
                            .levels
                            .push((NetId::from_index(i), self.levels[i]));
                    }
                    self.levels[i] = l;
                }
            }
        } else {
            self.recompute_cone_levels(prev_len);
        }

        // Phase 4: levelized re-evaluation with early cut-off.
        let max_steps = budget.max_sim_steps_or(u64::MAX);
        let mut tally = 0u64;
        self.heap.clear();
        if full {
            for i in 0..self.nl.len() {
                if self.nl.kind(NetId::from_index(i)) != GateKind::Input {
                    self.queued_stamp[i] = self.epoch;
                    self.heap.push(Reverse((self.levels[i], i as u32)));
                }
            }
        } else {
            for i in 0..self.touched.len() {
                let t = self.touched[i];
                if self.queued_stamp[t.index()] != self.epoch {
                    self.queued_stamp[t.index()] = self.epoch;
                    self.heap.push(Reverse((self.levels[t.index()], t.index() as u32)));
                }
            }
        }
        let mut reevaluated = 0usize;
        let mut cutoffs = 0usize;
        while let Some(Reverse((_, raw))) = self.heap.pop() {
            let idx = raw as usize;
            tally += self.cycles as u64;
            if reevaluated & 0xF == 0 {
                if tally >= max_steps {
                    self.pop_frame();
                    return Err(budget.sim_steps_exceeded(tally));
                }
                if let Err(e) = budget.check_deadline() {
                    self.pop_frame();
                    return Err(e);
                }
            }
            reevaluated += 1;
            let net = NetId::from_index(idx);
            let kind = self.nl.kind(net);
            let mut changed = false;
            let full_blocks = self.cycles / 64;
            let mut b = 0;
            while b < self.nblocks {
                if self.wide && b % LANES == 0 && b + LANES <= full_blocks {
                    self.ins.clear();
                    for &f in self.nl.fanins(net) {
                        self.ins
                            .extend_from_slice(&self.words[f.index() * self.nblocks + b..][..LANES]);
                    }
                    let out = kind.eval_wide::<LANES>(&self.ins);
                    self.new_words[b..b + LANES].copy_from_slice(&out);
                    // Wide word-equality early cut-off: all lanes at once.
                    changed |=
                        out.as_slice() != &self.words[idx * self.nblocks + b..][..LANES];
                    b += LANES;
                } else {
                    self.ins.clear();
                    for &f in self.nl.fanins(net) {
                        self.ins.push(self.words[f.index() * self.nblocks + b]);
                    }
                    let w = (self.cycles - b * 64).min(64);
                    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                    let v = kind.eval_word(&self.ins) & mask;
                    self.new_words[b] = v;
                    changed |= v != self.words[idx * self.nblocks + b];
                    b += 1;
                }
            }
            if !changed {
                cutoffs += 1;
                continue;
            }
            let slot = &mut self.words[idx * self.nblocks..(idx + 1) * self.nblocks];
            if idx < prev_len {
                self.undo.last_mut().expect("undo live").words.push((
                    net,
                    slot.to_vec(),
                    self.toggles[idx],
                    self.ones[idx],
                ));
            }
            slot.copy_from_slice(&self.new_words[..self.nblocks]);
            let (t, o) = count_words(
                &self.words[idx * self.nblocks..(idx + 1) * self.nblocks],
                self.cycles,
            );
            self.toggles[idx] = t;
            self.ones[idx] = o;
            for fi in 0..self.fanouts[idx].len() {
                let sink = self.fanouts[idx][fi];
                if self.queued_stamp[sink.index()] != self.epoch {
                    self.queued_stamp[sink.index()] = self.epoch;
                    self.heap
                        .push(Reverse((self.levels[sink.index()], sink.index() as u32)));
                }
            }
        }

        let dirtied = if full {
            self.nl.len() - self.nl.num_inputs()
        } else {
            self.cone.len()
        };
        self.applied += 1;
        self.stats.deltas += 1;
        self.stats.nets_dirtied += dirtied as u64;
        self.stats.nets_reevaluated += reevaluated as u64;
        self.stats.cutoffs += cutoffs as u64;
        self.stats.full_evals += full as u64;
        Ok(ApplyInfo {
            dirtied,
            reevaluated,
            cutoffs,
            full_eval: full,
        })
    }

    fn grow_scratch(&mut self, n: usize) {
        self.cone_stamp.resize(n, 0);
        self.queued_stamp.resize(n, 0);
        self.struct_stamp.resize(n, 0);
        self.lvl_done.resize(n, 0);
        self.lvl_onstack.resize(n, 0);
    }

    fn journal_structure(&mut self, net: NetId) {
        if net.index() >= self.undo.last().expect("undo live").prev_len {
            return; // appended this delta; truncation reverts it
        }
        if self.struct_stamp[net.index()] == self.epoch {
            return;
        }
        self.struct_stamp[net.index()] = self.epoch;
        self.undo.last_mut().expect("undo live").structure.push((
            net,
            self.nl.kind(net),
            self.nl.fanins(net).to_vec(),
        ));
    }

    /// Recompute levels of every cone member via iterative DFS; fanins
    /// outside the cone keep their (still valid) stored levels. Detects
    /// delta-created cycles (any new cycle passes through the cone).
    fn recompute_cone_levels(&mut self, prev_len: usize) {
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for ci in 0..self.cone.len() {
            let root = self.cone[ci];
            if self.lvl_done[root.index()] == self.epoch {
                continue;
            }
            self.lvl_onstack[root.index()] = self.epoch;
            stack.push((root.index() as u32, 0));
            while let Some(top) = stack.last_mut() {
                let idx = top.0 as usize;
                let net = NetId::from_index(idx);
                let fanins = self.nl.fanins(net);
                if top.1 < fanins.len() {
                    let child = fanins[top.1];
                    top.1 += 1;
                    if self.cone_stamp[child.index()] == self.epoch
                        && self.lvl_done[child.index()] != self.epoch
                    {
                        assert!(
                            self.lvl_onstack[child.index()] != self.epoch,
                            "delta created a combinational cycle through {child}"
                        );
                        self.lvl_onstack[child.index()] = self.epoch;
                        stack.push((child.index() as u32, 0));
                    }
                } else {
                    let kind = self.nl.kind(net);
                    let lvl = if kind.is_source() {
                        0
                    } else {
                        fanins
                            .iter()
                            .map(|f| self.levels[f.index()] + 1)
                            .max()
                            .unwrap_or(0)
                    };
                    if self.levels[idx] != lvl {
                        if idx < prev_len {
                            self.undo
                                .last_mut()
                                .expect("undo live")
                                .levels
                                .push((net, self.levels[idx]));
                        }
                        self.levels[idx] = lvl;
                    }
                    self.lvl_done[idx] = self.epoch;
                    stack.pop();
                }
            }
        }
    }

    /// Mark the current state for a later [`IncrementalSim::rollback_to`]
    /// or [`IncrementalSim::commit`]. While a mark is outstanding, every
    /// frame above it is retained, so chains of speculative applies can be
    /// unwound to any mark between the checkpoint and the present.
    pub fn checkpoint(&mut self) -> Mark {
        self.stats.checkpoints += 1;
        if self.obs.is_enabled() {
            self.obs.add("sim.incr.checkpoints", 1);
        }
        self.cps.push(self.applied);
        Mark(self.applied)
    }

    /// Unwind every delta applied after `mark`, restoring the engine
    /// bit-identically to its state when the checkpoint was taken.
    ///
    /// Returns false (and changes nothing) if the mark has been passed by
    /// a [`IncrementalSim::commit`] — rollback past the committed floor is
    /// rejected, never partially applied. The mark itself stays live: the
    /// same mark can be rolled back to repeatedly (speculate, unwind,
    /// speculate again), but marks *above* it are released.
    pub fn rollback_to(&mut self, mark: Mark) -> bool {
        if mark.0 < self.floor || mark.0 > self.applied {
            return false;
        }
        while self.applied > mark.0 {
            self.pop_frame();
            self.applied -= 1;
        }
        while self.cps.last().is_some_and(|&m| m > mark.0) {
            self.cps.pop();
        }
        self.stats.rollbacks += 1;
        if self.obs.is_enabled() {
            self.obs.add("sim.incr.rollbacks", 1);
        }
        true
    }

    /// Make every delta at or below `mark` permanent: their journal frames
    /// are dropped, the floor rises to the mark, and later rollbacks past
    /// it are rejected. Releases every outstanding mark at or below `mark`.
    ///
    /// Returns false (and changes nothing) if the mark is already below
    /// the floor.
    pub fn commit(&mut self, mark: Mark) -> bool {
        if mark.0 < self.floor || mark.0 > self.applied {
            return false;
        }
        let frames = (mark.0 - self.floor) as usize;
        self.undo.drain(..frames);
        self.floor = mark.0;
        self.cps.retain(|&m| m > mark.0);
        self.stats.commits += 1;
        if self.obs.is_enabled() {
            self.obs.add("sim.incr.commits", 1);
        }
        true
    }

    /// Number of journal frames currently held (applies above the floor).
    pub fn pending_frames(&self) -> usize {
        self.undo.len()
    }

    /// Drop journal frames no outstanding checkpoint can reach. With no
    /// checkpoints this keeps exactly one frame — the legacy single-slot
    /// behaviour: [`IncrementalSim::revert`] undoes the latest apply and
    /// memory stays constant no matter how many deltas are accepted.
    fn auto_trim(&mut self) -> usize {
        let keep_from = match self.cps.first() {
            Some(&m) => m.min(self.applied.saturating_sub(1)),
            None => self.applied.saturating_sub(1),
        };
        if keep_from > self.floor {
            let frames = (keep_from - self.floor) as usize;
            self.undo.drain(..frames);
            self.floor = keep_from;
            frames
        } else {
            0
        }
    }

    /// Pop and undo the top journal frame (no `applied` bookkeeping);
    /// false if the stack is empty.
    fn pop_frame(&mut self) -> bool {
        match self.undo.pop() {
            Some(undo) => {
                self.undo_frame(undo);
                true
            }
            None => false,
        }
    }

    /// Undo the most recent [`IncrementalSim::apply_delta`] still on the
    /// stack — a thin alias for rolling back one frame. Returns false if
    /// everything up to the present has been committed (or auto-trimmed)
    /// and there is nothing left to revert.
    pub fn revert(&mut self) -> bool {
        if self.applied == self.floor || self.undo.is_empty() {
            return false;
        }
        self.rollback_to(Mark(self.applied - 1))
    }

    /// Restore the state journaled in one frame (the inverse of the apply
    /// that produced it; frames must be undone LIFO).
    fn undo_frame(&mut self, undo: Undo) {
        let prev_len = undo.prev_len;
        for (net, old_words, t, o) in undo.words {
            let idx = net.index();
            self.words[idx * self.nblocks..(idx + 1) * self.nblocks].copy_from_slice(&old_words);
            self.toggles[idx] = t;
            self.ones[idx] = o;
        }
        for (net, kind, fanins) in undo.structure {
            for &f in self.nl.fanins(net).to_vec().iter() {
                remove_one(&mut self.fanouts[f.index()], net);
            }
            set_gate_in(&mut self.nl, net, kind, &fanins);
            for &f in &fanins {
                self.fanouts[f.index()].push(net);
            }
        }
        // Reverse order: a chained `ReplaceUses` (x→y, then y→z) journals
        // the same slot twice ((idx,x) then (idx,y)); the oldest snapshot
        // must be the one that sticks.
        for (idx, net) in undo.outputs.into_iter().rev() {
            self.nl.set_output_net(idx, net);
        }
        for (net, lvl) in undo.levels {
            self.levels[net.index()] = lvl;
        }
        // Drop appended nets: first detach their fanin edges, then truncate
        // every parallel array back to the journal point.
        for idx in prev_len..self.nl.len() {
            let net = NetId::from_index(idx);
            for &f in self.nl.fanins(net).to_vec().iter() {
                if f.index() < prev_len {
                    remove_one(&mut self.fanouts[f.index()], net);
                }
            }
        }
        self.nl.truncate(prev_len);
        self.fanouts.truncate(prev_len);
        self.levels.truncate(prev_len);
        self.toggles.truncate(prev_len);
        self.ones.truncate(prev_len);
        self.words.truncate(prev_len * self.nblocks);
    }

    /// The functional activity profile, bit-identical to
    /// `CombSim::new(self.netlist()).activity(..)` on the same stimulus.
    pub fn activity(&self) -> ActivityProfile {
        let denom = (self.cycles.saturating_sub(1)).max(1) as f64;
        ActivityProfile {
            toggles: self.toggles.iter().map(|&t| t as f64 / denom).collect(),
            probability: self
                .ones
                .iter()
                .map(|&o| o as f64 / self.cycles.max(1) as f64)
                .collect(),
            cycles: self.cycles,
        }
    }

    /// Switched capacitance per cycle, bit-identical to
    /// [`ActivityProfile::switched_capacitance`] on
    /// [`IncrementalSim::activity`] (same iteration and summation order).
    pub fn switched_cap(&self) -> f64 {
        let fanouts = self.nl.fanouts();
        let denom = (self.cycles.saturating_sub(1)).max(1) as f64;
        let mut total = 0.0;
        for net in self.nl.iter_nets() {
            let kind = self.nl.kind(net);
            let fanin = self.nl.fanins(net).len();
            let mut load = kind.intrinsic_cap(fanin);
            for &sink in &fanouts[net.index()] {
                load += self.nl.kind(sink).input_cap();
            }
            total += load * (self.toggles[net.index()] as f64 / denom);
        }
        total
    }

    /// [`IncrementalSim::switched_cap`] restricted to live nets (those a
    /// [`Netlist::sweep_dead`] would keep) and live sinks.
    ///
    /// Bit-identical to calling `switched_capacitance` on the swept clone:
    /// sweeping preserves the relative order of live nodes, so both sums
    /// visit the same loads and toggle rates in the same order.
    pub fn switched_cap_live(&self) -> f64 {
        let n = self.nl.len();
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for (net, _) in self.nl.outputs() {
            stack.push(net.index());
        }
        for &pi in self.nl.inputs() {
            stack.push(pi.index());
        }
        while let Some(v) = stack.pop() {
            if live[v] {
                continue;
            }
            live[v] = true;
            for &f in self.nl.fanins(NetId::from_index(v)) {
                stack.push(f.index());
            }
        }
        let fanouts = self.nl.fanouts();
        let denom = (self.cycles.saturating_sub(1)).max(1) as f64;
        let mut total = 0.0;
        for net in self.nl.iter_nets() {
            if !live[net.index()] {
                continue;
            }
            let kind = self.nl.kind(net);
            let fanin = self.nl.fanins(net).len();
            let mut load = kind.intrinsic_cap(fanin);
            for &sink in &fanouts[net.index()] {
                if live[sink.index()] {
                    load += self.nl.kind(sink).input_cap();
                }
            }
            total += load * (self.toggles[net.index()] as f64 / denom);
        }
        total
    }
}

/// Toggle/one counts of one net's packed (pre-masked) word stream, using
/// the same integer expressions as the full engines' shard counters.
fn count_words(words: &[u64], cycles: usize) -> (u64, u64) {
    let mut toggles = 0u64;
    let mut ones = 0u64;
    let mut prev_last = false;
    let mut have_prev = false;
    for (b, &v) in words.iter().enumerate() {
        let w = (cycles - b * 64).min(64);
        ones += v.count_ones() as u64;
        let within = (v ^ (v >> 1)) & if w >= 1 { (1u64 << (w - 1)) - 1 } else { 0 };
        toggles += within.count_ones() as u64;
        if have_prev && prev_last != (v & 1 == 1) {
            toggles += 1;
        }
        prev_last = v >> (w - 1) & 1 == 1;
        have_prev = true;
    }
    (toggles, ones)
}

/// One recorded transition: in cycle `cycle`, net changed to `value` at
/// event time `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tr {
    cycle: u32,
    time: u64,
    value: bool,
}

/// Undo journal frame for the event layer of one applied delta; stacks in
/// lockstep with the functional layer's frames.
#[derive(Debug, Default)]
struct EventUndo {
    prev_len: usize,
    delays: Vec<(NetId, u32)>,
    /// `(net, old total, old wave)` for dirty existing nets.
    totals: Vec<(NetId, u64, Vec<Tr>)>,
}

/// Counters from one event replay.
#[derive(Debug, Default, Clone, Copy)]
struct ReplayCounts {
    processed: u64,
    enqueued: u64,
    cancelled: u64,
    /// Schedules the calendar queue folded into a pending slot plus fanout
    /// sinks already evaluated in the current bucket (work the old heap
    /// engine enqueued and then cancelled).
    coalesced: u64,
}

/// Incremental event-driven (timing) engine.
///
/// Wraps an [`IncrementalSim`] for the functional layer and keeps per-net
/// *total* transition counts plus the recorded transition waveform of every
/// net. A delta replays the event waves of the structural cone only,
/// seeding each cycle from the recorded transitions of the cone's boundary
/// fanins — the waveforms outside the cone cannot have changed, so the
/// replayed counts are bit-identical to a from-scratch
/// [`crate::event::EventSim`] run on the edited netlist.
#[derive(Debug)]
pub struct IncrementalEventSim {
    func: IncrementalSim,
    model: DelayModel,
    delays: Vec<u32>,
    total: Vec<u64>,
    /// Recorded applied transitions per net, ordered by (cycle, time).
    waves: Vec<Vec<Tr>>,
    obs: obs::Obs,
    /// Event-layer journal frames, one per functional frame, oldest first.
    undo: Vec<EventUndo>,
    // Scratch.
    sepoch: u64,
    in_cone: Vec<u64>,
    in_boundary: Vec<u64>,
    boundary: Vec<NetId>,
    cursors: Vec<usize>,
    values: Vec<bool>,
    ins: Vec<bool>,
    queue: CalendarQueue,
    /// True when an aborted replay may have left events in the queue.
    queue_dirty: bool,
    /// Largest per-net delay ever seen (monotone; sizes the queue wheel).
    max_delay: u32,
    batch: Vec<(u32, bool)>,
    toggled: Vec<u32>,
    sink_stamp: Vec<u64>,
    sink_epoch: u64,
    replay_total: Vec<u64>,
    wave_buf: Vec<Vec<Tr>>,
}

impl IncrementalEventSim {
    /// Build from a full evaluation plus a full event replay (unlimited
    /// budget, no obs).
    ///
    /// # Panics
    ///
    /// Panics on sequential/cyclic netlists or stimulus width mismatch.
    pub fn from_full_eval(
        nl: &Netlist,
        model: &DelayModel,
        packed: &PackedPatterns,
    ) -> IncrementalEventSim {
        match Self::try_from_full_eval(nl, model, packed, &ResourceBudget::unlimited(), obs::Obs::disabled())
        {
            Ok(sim) => sim,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// [`IncrementalEventSim::from_full_eval`] under a budget, with an obs
    /// handle. The initial build publishes the same `sim.event.*` counters
    /// an [`crate::event::EventSim`] activity run would (plus the
    /// functional layer's `sim.comb.*`).
    pub fn try_from_full_eval(
        nl: &Netlist,
        model: &DelayModel,
        packed: &PackedPatterns,
        budget: &ResourceBudget,
        obs: obs::Obs,
    ) -> Result<IncrementalEventSim, BudgetExceeded> {
        let func = IncrementalSim::build(nl, packed, budget, obs.clone())?;
        let n = nl.len();
        let delays: Vec<u32> = nl.iter_nets().map(|net| model.delay(nl, net)).collect();
        let max_delay = delays.iter().copied().max().unwrap_or(1);
        let mut sim = IncrementalEventSim {
            func,
            model: model.clone(),
            delays,
            total: vec![0; n],
            waves: vec![Vec::new(); n],
            obs,
            undo: Vec::new(),
            sepoch: 0,
            in_cone: vec![0; n],
            in_boundary: vec![0; n],
            boundary: Vec::new(),
            cursors: Vec::new(),
            values: Vec::new(),
            ins: Vec::new(),
            queue: CalendarQueue::new(),
            queue_dirty: true,
            max_delay,
            batch: Vec::new(),
            toggled: Vec::new(),
            sink_stamp: Vec::new(),
            sink_epoch: 0,
            replay_total: vec![0; n],
            wave_buf: vec![Vec::new(); n],
        };
        let counts = sim.replay(true, budget)?;
        for i in 0..n {
            sim.total[i] = sim.replay_total[i];
            sim.waves[i] = std::mem::take(&mut sim.wave_buf[i]);
        }
        if sim.obs.is_enabled() {
            sim.obs.add("sim.comb.cycles", sim.func.cycles as u64);
            let evaluated = n - sim.func.nl.num_inputs();
            sim.obs
                .add("sim.comb.gate_evals", sim.func.nblocks as u64 * evaluated as u64);
            sim.flush_event(&counts);
        }
        Ok(sim)
    }

    fn flush_event(&self, counts: &ReplayCounts) {
        if self.obs.is_enabled() {
            self.obs.add("sim.event.cycles", self.func.cycles as u64);
            self.obs.add("sim.event.processed", counts.processed);
            self.obs.add("sim.event.enqueued", counts.enqueued);
            self.obs.add("sim.event.cancelled", counts.cancelled);
            self.obs.add("sim.event.coalesced", counts.coalesced);
        }
    }

    /// The engine's current netlist.
    pub fn netlist(&self) -> &Netlist {
        self.func.netlist()
    }

    /// Cycles in the resident stimulus.
    pub fn cycles(&self) -> usize {
        self.func.cycles
    }

    /// Cumulative incremental-evaluation statistics (functional layer).
    pub fn stats(&self) -> IncrStats {
        self.func.stats()
    }

    /// See [`IncrementalSim::set_force_full`].
    pub fn set_force_full(&mut self, on: bool) {
        self.func.set_force_full(on);
    }

    /// Per-net delay in ticks.
    pub fn delay_of(&self, net: NetId) -> u32 {
        self.delays[net.index()]
    }

    /// Apply a delta (unlimited budget).
    ///
    /// # Panics
    ///
    /// Panics if the delta creates a cycle, violates netlist invariants, or
    /// (for [`DelayModel::PerNet`]) appends nets beyond the delay table.
    pub fn apply_delta(&mut self, delta: &Delta) -> ApplyInfo {
        match self.try_apply_delta(delta, &ResourceBudget::unlimited()) {
            Ok(info) => info,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// Apply a delta under a budget: the functional layer meters
    /// re-evaluated nets as `cycles` steps each, the event replay meters
    /// processed events against the same step limit plus the event-queue
    /// limit. On exhaustion everything (functional + event state) is rolled
    /// back and the error returned.
    pub fn try_apply_delta(
        &mut self,
        delta: &Delta,
        budget: &ResourceBudget,
    ) -> Result<ApplyInfo, BudgetExceeded> {
        let prev_len = self.func.nl.len();
        let info = self.func.try_apply_delta_noflush(delta, budget)?;
        let full = self.func.last_full;
        let n = self.func.nl.len();

        // Delay layer: only edited/added nets can change (delay depends on
        // kind + fanin count alone).
        let mut undo = EventUndo {
            prev_len,
            ..EventUndo::default()
        };
        for i in 0..self.func.touched.len() {
            let t = self.func.touched[i];
            if t.index() < prev_len {
                undo.delays.push((t, self.delays[t.index()]));
            }
        }
        for idx in prev_len..n {
            let net = NetId::from_index(idx);
            self.delays.push(self.model.delay(&self.func.nl, net));
            self.total.push(0);
            self.waves.push(Vec::new());
            self.replay_total.push(0);
            self.wave_buf.push(Vec::new());
            self.in_cone.push(0);
            self.in_boundary.push(0);
        }
        for &(net, _) in &undo.delays {
            self.delays[net.index()] = self.model.delay(&self.func.nl, net);
        }
        // The queue wheel is sized by the largest delay ever seen; keeping
        // the maximum monotone (reverts never shrink it) means a stale
        // oversized wheel at worst, never an undersized one.
        for idx in prev_len..n {
            self.max_delay = self.max_delay.max(self.delays[idx]);
        }
        for &(net, _) in &undo.delays {
            self.max_delay = self.max_delay.max(self.delays[net.index()]);
        }

        // Event layer: replay the cone's waves.
        let counts = match self.replay(full, budget) {
            Ok(c) => c,
            Err(e) => {
                for &(net, d) in &undo.delays {
                    self.delays[net.index()] = d;
                }
                self.truncate_event(prev_len);
                // The functional apply succeeded; unwind just that frame
                // (earlier frames stay intact for outstanding marks).
                self.func.pop_frame();
                self.func.applied -= 1;
                return Err(e);
            }
        };
        let dirty: Vec<NetId> = if full {
            (0..n).map(NetId::from_index).collect()
        } else {
            self.func.cone.clone()
        };
        for &d in &dirty {
            let idx = d.index();
            let new_wave = std::mem::take(&mut self.wave_buf[idx]);
            let old_wave = std::mem::replace(&mut self.waves[idx], new_wave);
            if idx < prev_len {
                undo.totals.push((d, self.total[idx], old_wave));
            }
            self.total[idx] = self.replay_total[idx];
        }
        self.undo.push(undo);
        let dropped = self.func.auto_trim();
        self.undo.drain(..dropped);
        self.func.flush_incr(&info);
        self.flush_event(&counts);
        Ok(info)
    }

    fn truncate_event(&mut self, prev_len: usize) {
        self.delays.truncate(prev_len);
        self.total.truncate(prev_len);
        self.waves.truncate(prev_len);
        self.replay_total.truncate(prev_len);
        self.wave_buf.truncate(prev_len);
        self.in_cone.truncate(prev_len);
        self.in_boundary.truncate(prev_len);
        self.sink_stamp.truncate(prev_len);
    }

    /// Mark the current state for a later rollback or commit; shares the
    /// functional layer's mark space (see [`IncrementalSim::checkpoint`]).
    pub fn checkpoint(&mut self) -> Mark {
        self.func.checkpoint()
    }

    /// Unwind both layers to `mark`, bit-identical to the state at the
    /// checkpoint. Rejects (returns false, changes nothing) marks below
    /// the committed floor; see [`IncrementalSim::rollback_to`].
    pub fn rollback_to(&mut self, mark: Mark) -> bool {
        if mark.0 < self.func.floor || mark.0 > self.func.applied {
            return false;
        }
        while self.func.applied > mark.0 {
            self.pop_event_frame();
            self.func.pop_frame();
            self.func.applied -= 1;
        }
        while self.func.cps.last().is_some_and(|&m| m > mark.0) {
            self.func.cps.pop();
        }
        self.func.stats.rollbacks += 1;
        if self.obs.is_enabled() {
            self.obs.add("sim.incr.rollbacks", 1);
        }
        true
    }

    /// Make every delta at or below `mark` permanent in both layers; see
    /// [`IncrementalSim::commit`].
    pub fn commit(&mut self, mark: Mark) -> bool {
        if mark.0 < self.func.floor || mark.0 > self.func.applied {
            return false;
        }
        let frames = (mark.0 - self.func.floor) as usize;
        self.undo.drain(..frames);
        self.func.commit(mark)
    }

    /// Undo the most recent [`IncrementalEventSim::apply_delta`] still on
    /// the stack. Returns false if there is nothing left to revert.
    pub fn revert(&mut self) -> bool {
        if self.func.applied == self.func.floor || self.undo.is_empty() {
            return false;
        }
        self.rollback_to(Mark(self.func.applied - 1))
    }

    /// Pop and undo the top event-layer frame (delays, totals, waves).
    fn pop_event_frame(&mut self) {
        if let Some(undo) = self.undo.pop() {
            for &(net, d) in &undo.delays {
                self.delays[net.index()] = d;
            }
            for (net, t, wave) in undo.totals {
                self.total[net.index()] = t;
                self.waves[net.index()] = wave;
            }
            self.truncate_event(undo.prev_len);
        }
    }

    /// Replay event waves. With `full` set, every net is in the cone and
    /// input seeds come straight from the packed words (this is exactly an
    /// `EventSim` run). Otherwise only the functional layer's structural
    /// cone is waved, seeded per cycle by the recorded transitions of the
    /// cone's boundary fanins; everything outside the cone keeps its
    /// already-recorded waveform and count.
    fn replay(&mut self, full: bool, budget: &ResourceBudget) -> Result<ReplayCounts, BudgetExceeded> {
        const FLUSH: u64 = 1024;
        let n = self.func.nl.len();
        let cycles = self.func.cycles;
        let max_steps = budget.max_sim_steps_or(u64::MAX);
        let max_queue = budget.max_event_queue_or(u64::MAX);
        let mut local_steps = 0u64;
        let mut tally = 0u64;
        let mut counts = ReplayCounts::default();
        self.sepoch += 1;
        self.boundary.clear();
        if full {
            self.values.clear();
            self.values.resize(n, false);
            for i in 0..n {
                self.in_cone[i] = self.sepoch;
                self.values[i] = self.func.word_bit(i, 0);
                self.replay_total[i] = 0;
                self.wave_buf[i].clear();
            }
        } else {
            self.values.resize(n, false);
            for i in 0..self.func.cone.len() {
                let c = self.func.cone[i];
                self.in_cone[c.index()] = self.sepoch;
            }
            for ci in 0..self.func.cone.len() {
                let c = self.func.cone[ci];
                let idx = c.index();
                self.replay_total[idx] = 0;
                self.wave_buf[idx].clear();
                self.values[idx] = self.func.word_bit(idx, 0);
                for &f in self.func.nl.fanins(c) {
                    if self.in_cone[f.index()] != self.sepoch
                        && self.in_boundary[f.index()] != self.sepoch
                    {
                        self.in_boundary[f.index()] = self.sepoch;
                        self.boundary.push(f);
                    }
                }
            }
            for bi in 0..self.boundary.len() {
                let b = self.boundary[bi];
                self.values[b.index()] = self.func.word_bit(b.index(), 0);
            }
        }
        if cycles == 0 {
            return Ok(counts);
        }
        self.cursors.clear();
        self.cursors.resize(self.boundary.len(), 0);
        // An early (budget) return below can leave scheduled events in the
        // queue; the flag makes the next replay start from a full reset.
        if self.queue_dirty {
            self.queue.reset(n, self.max_delay);
        } else {
            self.queue.ensure(n, self.max_delay);
        }
        self.queue_dirty = true;
        self.sink_stamp.resize(n, 0);
        for c in 1..cycles {
            budget.check_deadline()?;
            self.queue.begin_cycle();
            if full {
                // Seed from primary-input changes, in input order (the
                // order EventSim assigns seed sequence numbers).
                let inputs = self.func.nl.inputs();
                for &pi in inputs {
                    let cur = self.func.word_bit(pi.index(), c);
                    if self.values[pi.index()] != cur {
                        if self.queue.pending() >= max_queue {
                            return Err(budget.event_queue_exceeded(self.queue.pending() + 1));
                        }
                        self.queue.schedule(pi.index() as u32, 0, cur);
                        counts.enqueued += 1;
                    }
                }
            } else {
                // Seed from the recorded boundary transitions of cycle c.
                // Boundary nets sit outside the cone, so they are never
                // rescheduled as sinks; their recorded per-cycle times are
                // strictly increasing, satisfying the queue's per-net
                // nondecreasing-time contract.
                for bi in 0..self.boundary.len() {
                    let b = self.boundary[bi];
                    let wave = &self.waves[b.index()];
                    while self.cursors[bi] < wave.len() && wave[self.cursors[bi]].cycle == c as u32 {
                        let tr = wave[self.cursors[bi]];
                        self.cursors[bi] += 1;
                        if self.queue.pending() >= max_queue {
                            return Err(budget.event_queue_exceeded(self.queue.pending() + 1));
                        }
                        self.queue.schedule(b.index() as u32, tr.time, tr.value);
                        counts.enqueued += 1;
                    }
                    // Skip any transitions of cycles this replay never
                    // waved (possible only if earlier cycles enqueued
                    // nothing — cursors advance monotonically).
                    while self.cursors[bi] < wave.len() && wave[self.cursors[bi]].cycle < c as u32 {
                        self.cursors[bi] += 1;
                    }
                }
            }
            while let Some(time) = self.queue.pop_bucket(&mut self.batch) {
                counts.processed += self.batch.len() as u64;
                local_steps += self.batch.len() as u64;
                if local_steps >= FLUSH {
                    tally += local_steps;
                    local_steps = 0;
                    if tally >= max_steps {
                        return Err(budget.sim_steps_exceeded(tally));
                    }
                    budget.check_deadline()?;
                }
                // Apply the whole bucket (one entry per net, net order),
                // recording waves for in-cone nets.
                self.toggled.clear();
                for &(raw, value) in &self.batch {
                    let idx = raw as usize;
                    if self.values[idx] == value {
                        counts.cancelled += 1;
                        continue;
                    }
                    self.values[idx] = value;
                    if self.in_cone[idx] == self.sepoch {
                        self.replay_total[idx] += 1;
                        self.wave_buf[idx].push(Tr {
                            cycle: c as u32,
                            time,
                            value,
                        });
                    }
                    self.toggled.push(raw);
                }
                // Evaluate each distinct in-cone sink once per bucket.
                self.sink_epoch += 1;
                for ti in 0..self.toggled.len() {
                    let idx = self.toggled[ti] as usize;
                    for fi in 0..self.func.fanouts[idx].len() {
                        let sink = self.func.fanouts[idx][fi];
                        let si = sink.index();
                        if self.in_cone[si] != self.sepoch {
                            continue;
                        }
                        if self.sink_stamp[si] == self.sink_epoch {
                            counts.coalesced += 1;
                            continue;
                        }
                        self.sink_stamp[si] = self.sink_epoch;
                        let kind = self.func.nl.kind(sink);
                        self.ins.clear();
                        for &f in self.func.nl.fanins(sink) {
                            self.ins.push(self.values[f.index()]);
                        }
                        let out = kind.eval(&self.ins);
                        let t = time + self.delays[si] as u64;
                        if self.queue.pending() >= max_queue {
                            return Err(budget.event_queue_exceeded(self.queue.pending() + 1));
                        }
                        match self.queue.schedule(si as u32, t, out) {
                            Scheduled::New => counts.enqueued += 1,
                            // `schedule` never suppresses; only the fused
                            // `schedule_transition` path does.
                            Scheduled::Coalesced | Scheduled::Suppressed => counts.coalesced += 1,
                        }
                    }
                }
            }
            #[cfg(debug_assertions)]
            {
                for i in 0..n {
                    if self.in_cone[i] == self.sepoch || self.in_boundary[i] == self.sepoch {
                        debug_assert_eq!(
                            self.values[i],
                            self.func.word_bit(i, c),
                            "replayed net n{i} must settle to its functional value in cycle {c}"
                        );
                    }
                }
            }
        }
        tally += local_steps;
        if local_steps > 0 && tally >= max_steps {
            return Err(budget.sim_steps_exceeded(tally));
        }
        self.queue_dirty = false;
        Ok(counts)
    }

    /// The timing activity, bit-identical to
    /// `EventSim::new(self.netlist(), model).activity(..)` on the same
    /// stimulus.
    pub fn activity(&self) -> TimingActivity {
        let cycles = self.func.cycles;
        let denom = cycles.saturating_sub(1).max(1) as f64;
        let probability: Vec<f64> = self
            .func
            .ones
            .iter()
            .map(|&o| o as f64 / cycles.max(1) as f64)
            .collect();
        let make = |toggles: &[u64]| ActivityProfile {
            toggles: toggles.iter().map(|&t| t as f64 / denom).collect(),
            probability: probability.clone(),
            cycles,
        };
        TimingActivity {
            total: make(&self.total),
            functional: make(&self.func.toggles),
        }
    }

    /// Switched capacitance per cycle under the *total* (glitch-inclusive)
    /// toggle counts; bit-identical to `switched_capacitance` on the total
    /// profile of [`IncrementalEventSim::activity`].
    pub fn switched_cap(&self) -> f64 {
        let nl = &self.func.nl;
        let fanouts = nl.fanouts();
        let denom = (self.func.cycles.saturating_sub(1)).max(1) as f64;
        let mut total = 0.0;
        for net in nl.iter_nets() {
            let kind = nl.kind(net);
            let fanin = nl.fanins(net).len();
            let mut load = kind.intrinsic_cap(fanin);
            for &sink in &fanouts[net.index()] {
                load += nl.kind(sink).input_cap();
            }
            total += load * (self.total[net.index()] as f64 / denom);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::CombSim;
    use crate::event::EventSim;
    use crate::stimulus::Stimulus;
    use netlist::gen::{array_multiplier, ripple_adder};

    fn iter_rev(nl: &Netlist) -> impl Iterator<Item = NetId> + '_ {
        (0..nl.len()).rev().map(NetId::from_index)
    }

    fn bits(p: &ActivityProfile) -> (Vec<u64>, Vec<u64>) {
        (
            p.toggles.iter().map(|t| t.to_bits()).collect(),
            p.probability.iter().map(|t| t.to_bits()).collect(),
        )
    }

    #[test]
    fn from_full_eval_matches_combsim() {
        let (nl, _) = array_multiplier(4);
        let patterns = Stimulus::uniform(8).patterns(200, 7);
        let packed = PackedPatterns::pack(&patterns);
        let engine = IncrementalSim::from_full_eval(&nl, &packed);
        let reference = CombSim::new(&nl).activity(&patterns);
        assert_eq!(bits(&engine.activity()), bits(&reference));
        let cap = engine.activity().switched_capacitance(&nl);
        assert_eq!(engine.switched_cap().to_bits(), cap.to_bits());
    }

    #[test]
    fn rewire_delta_matches_from_scratch() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(130, 3);
        let packed = PackedPatterns::pack(&patterns);
        let mut engine = IncrementalSim::from_full_eval(&nl, &packed);
        // Flip one gate's function.
        let victim = nl
            .iter_nets()
            .find(|&g| nl.kind(g) == GateKind::And)
            .expect("adder has AND gates");
        let mut delta = Delta::for_netlist(&nl);
        delta.set_gate(victim, GateKind::Or, nl.fanins(victim));
        let info = engine.apply_delta(&delta);
        assert!(info.reevaluated >= 1);
        let mut edited = nl.clone();
        delta.apply_to(&mut edited);
        let reference = CombSim::new(&edited).activity(&patterns);
        assert_eq!(bits(&engine.activity()), bits(&reference));
        // Revert restores the original bits.
        assert!(engine.revert());
        let original = CombSim::new(&nl).activity(&patterns);
        assert_eq!(bits(&engine.activity()), bits(&original));
        assert!(!engine.revert(), "nothing left on the undo stack");
    }

    #[test]
    fn checkpoint_rollback_commit_stack() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(130, 17);
        let packed = PackedPatterns::pack(&patterns);
        let mut engine = IncrementalSim::from_full_eval(&nl, &packed);
        let base = bits(&engine.activity());
        let gates: Vec<NetId> = nl
            .iter_nets()
            .filter(|&g| nl.kind(g) == GateKind::And)
            .take(3)
            .collect();
        assert_eq!(gates.len(), 3, "adder has three AND gates");

        // Speculate a three-deep chain with a mark at every depth.
        let m0 = engine.checkpoint();
        let mut marks = vec![m0];
        let mut states = vec![base.clone()];
        for &g in &gates {
            let mut delta = Delta::for_netlist(engine.netlist());
            delta.set_gate(g, GateKind::Or, engine.netlist().fanins(g));
            engine.apply_delta(&delta);
            marks.push(engine.checkpoint());
            states.push(bits(&engine.activity()));
        }
        // Unwind to the middle mark: bit-identical to that depth.
        assert!(engine.rollback_to(marks[1]));
        assert_eq!(bits(&engine.activity()), states[1]);
        // Re-speculate from there, then unwind all the way home.
        let mut delta = Delta::for_netlist(engine.netlist());
        delta.set_gate(gates[2], GateKind::Nand, engine.netlist().fanins(gates[2]));
        engine.apply_delta(&delta);
        assert!(engine.rollback_to(m0));
        assert_eq!(bits(&engine.activity()), base);

        // Commit a one-move chain; rollback past the floor is rejected.
        let mut delta = Delta::for_netlist(engine.netlist());
        delta.set_gate(gates[0], GateKind::Or, engine.netlist().fanins(gates[0]));
        engine.apply_delta(&delta);
        let committed = bits(&engine.activity());
        let m_done = engine.checkpoint();
        assert!(engine.commit(m_done));
        assert!(!engine.rollback_to(m0), "rollback past commit must fail");
        assert!(!engine.revert(), "committed frames are gone");
        assert_eq!(bits(&engine.activity()), committed, "rejection changed nothing");

        let mut edited = nl.clone();
        edited.set_kind(gates[0], GateKind::Or);
        let reference = CombSim::new(&edited).activity(&patterns);
        assert_eq!(bits(&engine.activity()), bits(&reference));
        let stats = engine.stats();
        assert!(stats.checkpoints >= 5 && stats.rollbacks >= 2 && stats.commits == 1);
    }

    #[test]
    fn event_stack_matches_from_scratch_at_every_depth() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(110, 23);
        let packed = PackedPatterns::pack(&patterns);
        let model = DelayModel::Analytic { resolution: 4 };
        let mut engine = IncrementalEventSim::from_full_eval(&nl, &model, &packed);
        let m0 = engine.checkpoint();
        let base = bits(&engine.activity().total);
        // Chain: rewire one gate, then buffer another's fanin.
        let victim = nl
            .iter_nets()
            .find(|&g| nl.kind(g) == GateKind::And)
            .expect("adder has AND gates");
        let mut d1 = Delta::for_netlist(engine.netlist());
        d1.set_gate(victim, GateKind::Or, nl.fanins(victim));
        engine.apply_delta(&d1);
        let m1 = engine.checkpoint();
        let sink = iter_rev(&nl)
            .find(|&g| !nl.kind(g).is_source() && nl.fanins(g).len() >= 2)
            .expect("gate with fanins");
        let mut d2 = Delta::for_netlist(engine.netlist());
        let mut fanins = engine.netlist().fanins(sink).to_vec();
        let buf = d2.add_gate(GateKind::Buf, &[fanins[0]]);
        fanins[0] = buf;
        d2.set_gate(sink, engine.netlist().kind(sink), &fanins);
        engine.apply_delta(&d2);
        // Depth 2 matches a from-scratch run on the doubly-edited netlist.
        let mut edited = nl.clone();
        d1.apply_to(&mut edited);
        d2.apply_to(&mut edited);
        let ref2 = EventSim::new(&edited, &model).activity(&patterns);
        assert_eq!(bits(&engine.activity().total), bits(&ref2.total));
        // Unwind one frame: matches depth 1; unwind home: matches base.
        assert!(engine.rollback_to(m1));
        let mut once = nl.clone();
        d1.apply_to(&mut once);
        let ref1 = EventSim::new(&once, &model).activity(&patterns);
        assert_eq!(bits(&engine.activity().total), bits(&ref1.total));
        assert!(engine.rollback_to(m0));
        assert_eq!(bits(&engine.activity().total), base);
        assert_eq!(engine.netlist().len(), nl.len());
    }

    #[test]
    fn buffer_insertion_cuts_off_immediately() {
        if stress_env() {
            // The assertions below pin the *fast path*; under forced full
            // re-evaluation there is no cut-off to observe.
            return;
        }
        let (nl, _) = array_multiplier(4);
        let patterns = Stimulus::uniform(8).patterns(256, 11);
        let packed = PackedPatterns::pack(&patterns);
        let mut engine = IncrementalSim::from_full_eval(&nl, &packed);
        // Insert a buffer on some gate's first fanin: the buffer takes its
        // driver's words, the sink sees identical words -> cut-off.
        let sink = iter_rev(&nl)
            .find(|&g| !nl.kind(g).is_source() && !nl.fanins(g).is_empty())
            .expect("gate with fanins");
        let mut delta = Delta::for_netlist(&nl);
        let mut fanins = nl.fanins(sink).to_vec();
        let buf = delta.add_gate(GateKind::Buf, &[fanins[0]]);
        fanins[0] = buf;
        delta.set_gate(sink, nl.kind(sink), &fanins);
        let info = engine.apply_delta(&delta);
        assert!(!info.full_eval);
        // The buffer evaluates (new words), the sink evaluates and cuts off.
        assert_eq!(info.cutoffs, 1, "sink words unchanged -> early cut-off");
        let mut edited = nl.clone();
        delta.apply_to(&mut edited);
        let reference = CombSim::new(&edited).activity(&patterns);
        assert_eq!(bits(&engine.activity()), bits(&reference));
    }

    #[test]
    fn force_full_is_bit_identical() {
        if stress_env() {
            // Both engines take the full path under the stress env; the
            // incremental-vs-full contrast this test pins is unavailable.
            return;
        }
        let (nl, _) = array_multiplier(4);
        let patterns = Stimulus::uniform(8).patterns(100, 5);
        let packed = PackedPatterns::pack(&patterns);
        let mut a = IncrementalSim::from_full_eval(&nl, &packed);
        let mut b = IncrementalSim::from_full_eval(&nl, &packed);
        b.set_force_full(true);
        let victim = iter_rev(&nl)
            .find(|&g| nl.kind(g) == GateKind::Xor)
            .expect("multiplier has XOR gates");
        let mut delta = Delta::for_netlist(&nl);
        delta.set_gate(victim, GateKind::Xnor, nl.fanins(victim));
        let ia = a.apply_delta(&delta);
        let ib = b.apply_delta(&delta);
        assert!(!ia.full_eval && ib.full_eval);
        assert_eq!(bits(&a.activity()), bits(&b.activity()));
        assert_eq!(a.switched_cap().to_bits(), b.switched_cap().to_bits());
    }

    #[test]
    fn event_engine_matches_eventsim_through_edits() {
        let (nl, _) = array_multiplier(4);
        let patterns = Stimulus::uniform(8).patterns(150, 9);
        let packed = PackedPatterns::pack(&patterns);
        for model in [DelayModel::Unit, DelayModel::Analytic { resolution: 4 }] {
            let mut engine = IncrementalEventSim::from_full_eval(&nl, &model, &packed);
            let reference = EventSim::new(&nl, &model).activity(&patterns);
            assert_eq!(bits(&engine.activity().total), bits(&reference.total));
            assert_eq!(
                bits(&engine.activity().functional),
                bits(&reference.functional)
            );
            // Edit: insert a buffer chain on a late gate (balance-style).
            let sink = iter_rev(&nl)
                .find(|&g| !nl.kind(g).is_source() && nl.fanins(g).len() >= 2)
                .expect("gate with fanins");
            let mut delta = Delta::for_netlist(&nl);
            let mut fanins = nl.fanins(sink).to_vec();
            let b1 = delta.add_gate(GateKind::Buf, &[fanins[1]]);
            let b2 = delta.add_gate(GateKind::Buf, &[b1]);
            fanins[1] = b2;
            delta.set_gate(sink, nl.kind(sink), &fanins);
            engine.apply_delta(&delta);
            let mut edited = nl.clone();
            delta.apply_to(&mut edited);
            let edited_ref = EventSim::new(&edited, &model).activity(&patterns);
            let got = engine.activity();
            assert_eq!(bits(&got.total), bits(&edited_ref.total), "{model:?}");
            assert_eq!(bits(&got.functional), bits(&edited_ref.functional));
            // Revert restores the original timing activity.
            assert!(engine.revert());
            let back = engine.activity();
            assert_eq!(bits(&back.total), bits(&reference.total));
        }
    }

    #[test]
    fn budget_exhaustion_rolls_back() {
        let (nl, _) = array_multiplier(4);
        let patterns = Stimulus::uniform(8).patterns(128, 2);
        let packed = PackedPatterns::pack(&patterns);
        let mut engine = IncrementalSim::from_full_eval(&nl, &packed);
        let before = bits(&engine.activity());
        let victim = nl
            .iter_nets()
            .find(|&g| nl.kind(g) == GateKind::And)
            .expect("multiplier has AND gates");
        let mut delta = Delta::for_netlist(&nl);
        delta.set_gate(victim, GateKind::Nand, nl.fanins(victim));
        let tight = ResourceBudget::unlimited().with_max_sim_steps(1);
        let err = engine.try_apply_delta(&delta, &tight).unwrap_err();
        assert_eq!(err.resource, budget::Resource::SimSteps);
        assert_eq!(bits(&engine.activity()), before, "rolled back");
        assert_eq!(engine.netlist().kind(victim), GateKind::And);
        // And the same delta still applies cleanly afterwards.
        engine.apply_delta(&delta);
        let mut edited = nl.clone();
        delta.apply_to(&mut edited);
        let reference = CombSim::new(&edited).activity(&patterns);
        assert_eq!(bits(&engine.activity()), bits(&reference));
    }

    #[test]
    fn replace_uses_and_added_gate_match() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(96, 13);
        let packed = PackedPatterns::pack(&patterns);
        let mut engine = IncrementalSim::from_full_eval(&nl, &packed);
        // Don't-care-style rewrite: replace a gate's uses with a fresh gate
        // over low-index nets.
        let victim = iter_rev(&nl)
            .find(|&g| !nl.kind(g).is_source())
            .expect("gate");
        let a = nl.inputs()[0];
        let b = nl.inputs()[1];
        let mut delta = Delta::for_netlist(&nl);
        let fresh = delta.add_gate(GateKind::Nor, &[a, b]);
        delta.replace_uses(victim, fresh);
        engine.apply_delta(&delta);
        let mut edited = nl.clone();
        delta.apply_to(&mut edited);
        let reference = CombSim::new(&edited).activity(&patterns);
        assert_eq!(bits(&engine.activity()), bits(&reference));
        let cap = engine.activity().switched_capacitance(&edited);
        assert_eq!(engine.switched_cap().to_bits(), cap.to_bits());
        // Live-only cap matches the swept netlist's cap bit for bit.
        let mut swept = edited.clone();
        let map = swept.sweep_dead();
        let swept_profile = CombSim::new(&swept).activity(&patterns);
        let swept_cap = swept_profile.switched_capacitance(&swept);
        assert_eq!(engine.switched_cap_live().to_bits(), swept_cap.to_bits());
        assert!(map[victim.index()].is_none(), "victim actually went dead");
        // Revert restores everything, including the netlist length.
        assert!(engine.revert());
        assert_eq!(engine.netlist().len(), nl.len());
        let original = CombSim::new(&nl).activity(&patterns);
        assert_eq!(bits(&engine.activity()), bits(&original));
    }
}
