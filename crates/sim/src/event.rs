//! Event-driven timing simulation with transport delays.
//!
//! Applies each input vector, propagates events through per-gate delays and
//! counts **every** transition, including the spurious ones caused by
//! unequal path delays. Comparing against the zero-delay count from
//! [`crate::comb`] isolates glitch power — the 10–40% of switching activity
//! the survey attributes to spurious transitions (§III.A.2, \[16\]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use budget::{BudgetExceeded, ResourceBudget};
use netlist::{GateKind, NetId, Netlist};

use crate::par;
use crate::profile::ActivityProfile;
use crate::stimulus::PatternSet;

/// Reusable per-worker buffers for the event loop: net values, the settled
/// reference state, fanin scratch, and the event heap. Nothing in the
/// per-cycle hot path allocates once the arena has warmed up.
#[derive(Debug, Default)]
pub struct EventArena {
    values: Vec<bool>,
    settled: Vec<bool>,
    ins: Vec<bool>,
    heap: BinaryHeap<Reverse<(u64, u32, u64, bool)>>,
}

impl EventArena {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> EventArena {
        EventArena::default()
    }
}

/// Raw integer counts from one contiguous shard of the stream.
struct EventCounts {
    total: Vec<u64>,
    functional: Vec<u64>,
    ones: Vec<u64>,
    /// Events popped off the heap. Every enqueued event is eventually
    /// popped (the per-cycle loop drains the heap), so across a successful
    /// run `processed == enqueued`.
    processed: u64,
    /// Events pushed onto the heap (input changes + fanout evaluations).
    enqueued: u64,
    /// Pops that caused no transition: coalesced same-instant duplicates
    /// plus evaluations that matched the current value. Always
    /// `<= processed`.
    cancelled: u64,
}

/// How per-gate delays are assigned.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Every gate has delay 1 (buffers included).
    Unit,
    /// Analytic delays: `base_delay(kind, fanin)` scaled to integer ticks.
    Analytic {
        /// Ticks per delay unit (resolution of the analytic model).
        resolution: u32,
    },
    /// Explicit per-net delays in ticks (indexed by raw net id).
    PerNet(Vec<u32>),
}

impl DelayModel {
    pub(crate) fn delay(&self, nl: &Netlist, net: NetId) -> u32 {
        match self {
            DelayModel::Unit => 1,
            DelayModel::Analytic { resolution } => {
                let kind = nl.kind(net);
                let fanin = nl.fanins(net).len();
                ((kind.base_delay(fanin) * *resolution as f64).round() as u32).max(1)
            }
            DelayModel::PerNet(d) => d[net.index()].max(1),
        }
    }
}

/// Result of a timing simulation.
#[derive(Debug, Clone)]
pub struct TimingActivity {
    /// All transitions per net per cycle (functional + spurious).
    pub total: ActivityProfile,
    /// Functional (zero-delay) transitions per net per cycle.
    pub functional: ActivityProfile,
}

impl TimingActivity {
    /// Glitch (spurious) transitions per cycle on net `i`.
    pub fn glitch_rate(&self, net: NetId) -> f64 {
        (self.total.toggles[net.index()] - self.functional.toggles[net.index()]).max(0.0)
    }

    /// Total glitch transitions per cycle over all nets.
    pub fn total_glitches_per_cycle(&self) -> f64 {
        self.total
            .toggles
            .iter()
            .zip(self.functional.toggles.iter())
            .map(|(t, f)| (t - f).max(0.0))
            .sum()
    }

    /// Fraction of all transitions that are spurious (the §III.A.2 number).
    pub fn glitch_fraction(&self) -> f64 {
        let total = self.total.total_toggles_per_cycle();
        if total == 0.0 {
            0.0
        } else {
            self.total_glitches_per_cycle() / total
        }
    }
}

/// Event-driven simulator bound to one combinational netlist.
///
/// ```
/// use netlist::gen::array_multiplier;
/// use sim::event::{DelayModel, EventSim};
/// use sim::stimulus::Stimulus;
///
/// let (mult, _) = array_multiplier(4);
/// let patterns = Stimulus::uniform(8).patterns(200, 1);
/// let timing = EventSim::new(&mult, &DelayModel::Unit).activity(&patterns);
/// // Array multipliers glitch heavily (survey §III.A.2).
/// assert!(timing.glitch_fraction() > 0.1);
/// ```
#[derive(Debug)]
pub struct EventSim<'a> {
    nl: &'a Netlist,
    order: Vec<NetId>,
    fanouts: Vec<Vec<NetId>>,
    delays: Vec<u32>,
    obs: obs::Obs,
}

impl<'a> EventSim<'a> {
    /// Bind a simulator with the given delay model.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential or cyclic.
    pub fn new(nl: &'a Netlist, model: &DelayModel) -> EventSim<'a> {
        assert!(nl.is_combinational(), "EventSim requires combinational netlist");
        let order = nl.topo_order().expect("netlist must be acyclic");
        let fanouts = nl.fanouts();
        let delays = nl.iter_nets().map(|net| model.delay(nl, net)).collect();
        EventSim {
            nl,
            order,
            fanouts,
            delays,
            obs: obs::Obs::disabled(),
        }
    }

    /// Attach an observability handle. Event counters (`sim.event.cycles`,
    /// `.processed`, `.enqueued`, `.cancelled`) accumulate as plain `u64`s
    /// inside each shard and flush once per successful activity run.
    pub fn with_obs(mut self, obs: obs::Obs) -> EventSim<'a> {
        self.obs = obs;
        self
    }

    /// Per-net delay in ticks used by this simulator.
    pub fn delay_of(&self, net: NetId) -> u32 {
        self.delays[net.index()]
    }

    fn settle(&self, values: &mut [bool], ins: &mut Vec<bool>) {
        for &net in &self.order {
            let kind = self.nl.kind(net);
            if kind.is_source() {
                if let GateKind::Const(v) = kind {
                    values[net.index()] = v;
                }
                continue;
            }
            ins.clear();
            ins.extend(self.nl.fanins(net).iter().map(|x| values[x.index()]));
            values[net.index()] = kind.eval(ins);
        }
    }

    /// Apply `pattern` to the inputs of `values` and settle in place.
    fn apply_and_settle(&self, pattern: &[bool], values: &mut [bool], ins: &mut Vec<bool>) {
        assert_eq!(pattern.len(), self.nl.num_inputs(), "pattern width");
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = pattern[i];
        }
        self.settle(values, ins);
    }

    /// Count transitions over one contiguous shard.
    ///
    /// `prev_pattern` is the pattern applied in the cycle just before this
    /// shard: a combinational settled state depends only on the current
    /// pattern, so one uncounted settle reconstructs exactly the state the
    /// serial run would have carried in — shards are embarrassingly
    /// parallel and the merged counts stay bit-identical.
    /// Events processed count toward the shared `steps` tally (flushed
    /// every 1024 pops, so the atomic stays off the per-event path); queue
    /// length is compared against the pre-resolved limit on every push
    /// (one register compare); the wall clock is polled once per cycle and
    /// once per flush. Unlike the cycle-based engines, event-driven cost is
    /// unknowable up front — a glitchy circuit can schedule orders of
    /// magnitude more events than cycles — so these are the runtime guards
    /// that make the engine safe to call under a budget at all.
    fn shard_counts(
        &self,
        prev_pattern: Option<&[bool]>,
        patterns: &[Vec<bool>],
        arena: &mut EventArena,
        budget: &ResourceBudget,
        steps: &AtomicU64,
    ) -> Result<EventCounts, BudgetExceeded> {
        const FLUSH: u64 = 1024;
        let max_steps = budget.max_sim_steps_or(u64::MAX);
        let max_queue = budget.max_event_queue_or(u64::MAX);
        let mut local_steps = 0u64;
        let n = self.nl.len();
        let mut counts = EventCounts {
            total: vec![0u64; n],
            functional: vec![0u64; n],
            ones: vec![0u64; n],
            processed: 0,
            enqueued: 0,
            cancelled: 0,
        };
        arena.values.clear();
        arena.values.resize(n, false);
        arena.settled.clear();
        arena.settled.resize(n, false);
        arena.heap.clear();
        let rest = match prev_pattern {
            Some(p) => {
                // Reconstruct the pre-shard settled state; the previous
                // shard already counted this cycle.
                self.apply_and_settle(p, &mut arena.values, &mut arena.ins);
                patterns
            }
            None => {
                let Some((head, rest)) = patterns.split_first() else {
                    return Ok(counts);
                };
                self.apply_and_settle(head, &mut arena.values, &mut arena.ins);
                for i in 0..n {
                    counts.ones[i] += arena.values[i] as u64;
                }
                rest
            }
        };
        // (time, net, value) in a min-heap; seq breaks ties deterministically.
        let mut seq = 0u64;
        for pattern in rest {
            assert_eq!(pattern.len(), self.nl.num_inputs(), "pattern width");
            budget.check_deadline()?;
            // Functional toggles: compare settled states.
            arena.settled.copy_from_slice(&arena.values);
            for (i, &pi) in self.nl.inputs().iter().enumerate() {
                arena.settled[pi.index()] = pattern[i];
            }
            self.settle(&mut arena.settled, &mut arena.ins);
            for i in 0..n {
                if arena.settled[i] != arena.values[i] {
                    counts.functional[i] += 1;
                }
            }
            // Event-driven propagation from the input changes.
            debug_assert!(arena.heap.is_empty());
            for (i, &pi) in self.nl.inputs().iter().enumerate() {
                if arena.values[pi.index()] != pattern[i] {
                    arena.heap.push(Reverse((0, pi.index() as u32, seq, pattern[i])));
                    seq += 1;
                    counts.enqueued += 1;
                }
            }
            while let Some(Reverse((time, raw, _, value))) = arena.heap.pop() {
                counts.processed += 1;
                local_steps += 1;
                if local_steps == FLUSH {
                    let tally = steps.fetch_add(local_steps, Ordering::Relaxed) + local_steps;
                    local_steps = 0;
                    if tally >= max_steps {
                        return Err(budget.sim_steps_exceeded(tally));
                    }
                    budget.check_deadline()?;
                }
                // Coalesce: if a later-scheduled evaluation of the same net
                // lands at the same instant, only the freshest one counts
                // (zero-width pulses are not physical transitions).
                if let Some(Reverse((t2, r2, _, _))) = arena.heap.peek() {
                    if *t2 == time && *r2 == raw {
                        counts.cancelled += 1;
                        continue;
                    }
                }
                let net = NetId::from_index(raw as usize);
                if arena.values[net.index()] == value {
                    counts.cancelled += 1;
                    continue;
                }
                arena.values[net.index()] = value;
                counts.total[net.index()] += 1;
                for &sink in &self.fanouts[net.index()] {
                    let kind = self.nl.kind(sink);
                    arena.ins.clear();
                    arena
                        .ins
                        .extend(self.nl.fanins(sink).iter().map(|x| arena.values[x.index()]));
                    let out = kind.eval(&arena.ins);
                    let t = time + self.delays[sink.index()] as u64;
                    if arena.heap.len() as u64 >= max_queue {
                        return Err(budget.event_queue_exceeded(arena.heap.len() as u64 + 1));
                    }
                    arena.heap.push(Reverse((t, sink.index() as u32, seq, out)));
                    seq += 1;
                    counts.enqueued += 1;
                }
            }
            debug_assert_eq!(
                arena.values, arena.settled,
                "event sim must settle to functional values"
            );
            for i in 0..n {
                counts.ones[i] += arena.values[i] as u64;
            }
        }
        let tally = steps.fetch_add(local_steps, Ordering::Relaxed) + local_steps;
        if local_steps > 0 && tally >= max_steps {
            return Err(budget.sim_steps_exceeded(tally));
        }
        Ok(counts)
    }

    /// Simulate a pattern stream and return total + functional activity.
    ///
    /// Each vector is applied after the previous one has fully settled
    /// (transport-delay semantics, no inertial filtering — a conservative
    /// upper bound on glitching, as in \[16\]).
    pub fn activity(&self, patterns: &PatternSet) -> TimingActivity {
        self.activity_jobs(patterns, 1)
    }

    /// [`EventSim::activity`] under a [`ResourceBudget`] (serial).
    pub fn try_activity(
        &self,
        patterns: &PatternSet,
        budget: &ResourceBudget,
    ) -> Result<TimingActivity, BudgetExceeded> {
        self.try_activity_jobs(patterns, 1, budget)
    }

    /// [`EventSim::activity`] sharded over up to `jobs` worker threads
    /// (`0` = all cores).
    ///
    /// Each shard re-settles the pattern preceding it (combinational state
    /// has no deeper history) and then simulates its cycles with a private
    /// arena; integer counts merge in fixed shard order, so the result is
    /// **bit-identical** to the serial run for every thread count.
    pub fn activity_jobs(&self, patterns: &PatternSet, jobs: usize) -> TimingActivity {
        match self.try_activity_jobs(patterns, jobs, &ResourceBudget::unlimited()) {
            Ok(a) => a,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// [`EventSim::activity_jobs`] under a [`ResourceBudget`].
    ///
    /// The step limit counts *events processed* (summed across shards via
    /// a shared counter, flushed every 1024 pops), the queue limit bounds
    /// the pending-event heap of each shard, and the deadline is polled per
    /// cycle. On exhaustion the run stops with a typed [`BudgetExceeded`]
    /// — a successful run is still bit-identical to the unbudgeted one.
    pub fn try_activity_jobs(
        &self,
        patterns: &PatternSet,
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<TimingActivity, BudgetExceeded> {
        let n = self.nl.len();
        budget.check_deadline()?;
        let steps = AtomicU64::new(0);
        // Work items are the cycles *after* the first; each shard needs at
        // least one.
        let transitions = patterns.len().saturating_sub(1);
        let shards = par::num_threads(jobs).min(transitions.max(1)).max(1);
        let counts = if shards <= 1 {
            par::record_shard_gauges(&self.obs, "event", &[transitions.max(1)]);
            vec![self.shard_counts(None, patterns, &mut EventArena::new(), budget, &steps)?]
        } else {
            // Shard s covers transition range r => patterns[r.start+1 ..
            // r.end+1), seeded by patterns[r.start]; shard 0 also owns the
            // initialization cycle 0.
            // One shard's work: (uncounted seed pattern, counted patterns).
            type Shard<'a> = (Option<&'a [bool]>, &'a [Vec<bool>]);
            let work: Vec<Shard> = par::shard_ranges(transitions, shards)
                .into_iter()
                .enumerate()
                .map(|(s, r)| {
                    if s == 0 {
                        (None, &patterns[0..r.end + 1])
                    } else {
                        (
                            Some(patterns[r.start].as_slice()),
                            &patterns[r.start + 1..r.end + 1],
                        )
                    }
                })
                .collect();
            if self.obs.is_enabled() {
                let sizes: Vec<usize> = work.iter().map(|(_, slice)| slice.len()).collect();
                par::record_shard_gauges(&self.obs, "event", &sizes);
            }
            par::par_map(&work, shards, |_, (prev, slice)| {
                self.shard_counts(*prev, slice, &mut EventArena::new(), budget, &steps)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
        };
        // Fixed-order deterministic reduction.
        let mut total = vec![0u64; n];
        let mut functional = vec![0u64; n];
        let mut ones = vec![0u64; n];
        for c in &counts {
            for i in 0..n {
                total[i] += c.total[i];
                functional[i] += c.functional[i];
                ones[i] += c.ones[i];
            }
        }
        if self.obs.is_enabled() {
            // Event totals are thread-count invariant: each shard replays
            // exactly the event waves the serial run would, so the merged
            // sums match for every `jobs` setting. Only successful runs
            // flush (an exhausted budget abandons partial shard counts).
            self.obs.add("sim.event.cycles", patterns.len() as u64);
            self.obs
                .add("sim.event.processed", counts.iter().map(|c| c.processed).sum());
            self.obs
                .add("sim.event.enqueued", counts.iter().map(|c| c.enqueued).sum());
            self.obs
                .add("sim.event.cancelled", counts.iter().map(|c| c.cancelled).sum());
        }
        let cycles = patterns.len();
        let denom = cycles.saturating_sub(1).max(1) as f64;
        let make = |toggles: Vec<u64>| ActivityProfile {
            toggles: toggles.iter().map(|&t| t as f64 / denom).collect(),
            probability: ones.iter().map(|&o| o as f64 / cycles.max(1) as f64).collect(),
            cycles,
        };
        Ok(TimingActivity {
            total: make(total),
            functional: make(functional),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;
    use netlist::gen::{array_multiplier, parity_tree, ripple_adder};

    fn glitchy_pair() -> netlist::Netlist {
        // y = a & !a through different depths: a classic static-1 hazard
        // shape, y = (a AND b) where b = NOT(NOT(NOT a)) — when a rises,
        // the AND sees (1, old 1) briefly.
        let mut nl = netlist::Netlist::new("hazard");
        let a = nl.add_input("a");
        let n1 = nl.add_gate(netlist::GateKind::Not, &[a]);
        let n2 = nl.add_gate(netlist::GateKind::Not, &[n1]);
        let n3 = nl.add_gate(netlist::GateKind::Not, &[n2]);
        let y = nl.add_gate(netlist::GateKind::And, &[a, n3]);
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn hazard_produces_glitches() {
        let nl = glitchy_pair();
        let patterns: PatternSet = (0..50).map(|k| vec![k % 2 == 1]).collect();
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        // Functionally y is always 0 (a & !a), so functional toggles = 0,
        // but rising a reaches the AND before the inverter chain flips.
        let y = nl.outputs()[0].0;
        assert!(activity.functional.toggles[y.index()] < 1e-9);
        assert!(
            activity.total.toggles[y.index()] > 0.5,
            "glitch rate {}",
            activity.total.toggles[y.index()]
        );
        assert!(activity.glitch_fraction() > 0.0);
    }

    #[test]
    fn event_sim_settles_to_functional_values() {
        let (nl, _) = ripple_adder(6);
        let patterns = Stimulus::uniform(12).patterns(50, 17);
        let sim = EventSim::new(&nl, &DelayModel::Analytic { resolution: 4 });
        // The debug_assert inside activity() verifies settling every cycle.
        let activity = sim.activity(&patterns);
        // Total >= functional on every net.
        for i in 0..nl.len() {
            assert!(
                activity.total.toggles[i] >= activity.functional.toggles[i] - 1e-9,
                "net {i}"
            );
        }
    }

    #[test]
    fn multiplier_glitch_fraction_in_survey_range() {
        let (nl, _) = array_multiplier(6);
        let patterns = Stimulus::uniform(12).patterns(200, 23);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        let fraction = activity.glitch_fraction();
        assert!(
            fraction > 0.10,
            "array multipliers glitch heavily, got {fraction}"
        );
    }

    #[test]
    fn balanced_tree_barely_glitches() {
        let nl = parity_tree(8);
        let patterns = Stimulus::uniform(8).patterns(200, 29);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        // A perfectly balanced XOR tree with unit delays has equal path
        // lengths everywhere: no glitches at all.
        assert!(
            activity.glitch_fraction() < 1e-9,
            "balanced tree glitched: {}",
            activity.glitch_fraction()
        );
    }

    #[test]
    fn parallel_timing_activity_is_bit_identical() {
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::uniform(10).patterns(150, 41);
        let sim = EventSim::new(&nl, &DelayModel::Analytic { resolution: 4 });
        let serial = sim.activity(&patterns);
        for jobs in [1, 2, 3, 4, 7, 8] {
            let par = sim.activity_jobs(&patterns, jobs);
            assert_eq!(par.total, serial.total, "total, jobs={jobs}");
            assert_eq!(par.functional, serial.functional, "functional, jobs={jobs}");
        }
    }

    #[test]
    fn event_budget_trips_on_glitchy_run() {
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::uniform(10).patterns(400, 41);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        // A multiplier schedules far more than 2000 events over 400 cycles.
        let tight = ResourceBudget::unlimited().with_max_sim_steps(2000);
        let err = sim.try_activity(&patterns, &tight).unwrap_err();
        assert_eq!(err.resource, budget::Resource::SimSteps);
        assert!(err.used >= 1024, "tripped after at least one flush");
        // Parallel runs trip too (shared counter across shards).
        for jobs in [2, 4] {
            assert!(sim.try_activity_jobs(&patterns, jobs, &tight).is_err());
        }
        // A one-event queue cannot hold any fanout wave.
        let starved = ResourceBudget::unlimited().with_max_event_queue(1);
        let err = sim.try_activity(&patterns, &starved).unwrap_err();
        assert_eq!(err.resource, budget::Resource::EventQueue);
    }

    #[test]
    fn budgeted_event_run_matches_unbudgeted() {
        let (nl, _) = ripple_adder(5);
        let patterns = Stimulus::uniform(10).patterns(120, 19);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let plain = sim.activity(&patterns);
        let roomy = ResourceBudget::unlimited()
            .with_max_sim_steps(1 << 30)
            .with_max_event_queue(1 << 20)
            .with_deadline_ms(60_000);
        for jobs in [1, 3] {
            let guarded = sim.try_activity_jobs(&patterns, jobs, &roomy).unwrap();
            assert_eq!(guarded.total, plain.total, "jobs={jobs}");
            assert_eq!(guarded.functional, plain.functional, "jobs={jobs}");
        }
    }

    #[test]
    fn event_counters_are_consistent_and_jobs_invariant() {
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::uniform(10).patterns(150, 41);
        let run = |jobs: usize| {
            let obs = obs::Obs::enabled();
            let sim = EventSim::new(&nl, &DelayModel::Unit).with_obs(obs.clone());
            sim.activity_jobs(&patterns, jobs);
            obs.snapshot()
        };
        let serial = run(1);
        let processed = serial.counter("sim.event.processed").unwrap();
        let enqueued = serial.counter("sim.event.enqueued").unwrap();
        let cancelled = serial.counter("sim.event.cancelled").unwrap();
        assert!(processed > 0);
        assert_eq!(processed, enqueued, "every enqueued event is popped");
        assert!(cancelled <= processed);
        assert_eq!(serial.counter("sim.event.cycles"), Some(150));
        for jobs in [2, 4] {
            let par = run(jobs);
            assert_eq!(par.counters, serial.counters, "jobs={jobs}");
        }
    }

    #[test]
    fn unit_vs_analytic_delays() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(100, 31);
        let unit = EventSim::new(&nl, &DelayModel::Unit).activity(&patterns);
        let analytic =
            EventSim::new(&nl, &DelayModel::Analytic { resolution: 8 }).activity(&patterns);
        // Functional activity is delay-independent.
        for i in 0..nl.len() {
            assert!(
                (unit.functional.toggles[i] - analytic.functional.toggles[i]).abs() < 1e-9
            );
        }
    }
}
