//! Event-driven timing simulation with transport delays.
//!
//! Applies each input vector, propagates events through per-gate delays and
//! counts **every** transition, including the spurious ones caused by
//! unequal path delays. Comparing against the zero-delay count from
//! [`crate::comb`] isolates glitch power — the 10–40% of switching activity
//! the survey attributes to spurious transitions (§III.A.2, \[16\]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netlist::{GateKind, NetId, Netlist};

use crate::profile::ActivityProfile;
use crate::stimulus::PatternSet;

/// How per-gate delays are assigned.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Every gate has delay 1 (buffers included).
    Unit,
    /// Analytic delays: `base_delay(kind, fanin)` scaled to integer ticks.
    Analytic {
        /// Ticks per delay unit (resolution of the analytic model).
        resolution: u32,
    },
    /// Explicit per-net delays in ticks (indexed by raw net id).
    PerNet(Vec<u32>),
}

impl DelayModel {
    fn delay(&self, nl: &Netlist, net: NetId) -> u32 {
        match self {
            DelayModel::Unit => 1,
            DelayModel::Analytic { resolution } => {
                let kind = nl.kind(net);
                let fanin = nl.fanins(net).len();
                ((kind.base_delay(fanin) * *resolution as f64).round() as u32).max(1)
            }
            DelayModel::PerNet(d) => d[net.index()].max(1),
        }
    }
}

/// Result of a timing simulation.
#[derive(Debug, Clone)]
pub struct TimingActivity {
    /// All transitions per net per cycle (functional + spurious).
    pub total: ActivityProfile,
    /// Functional (zero-delay) transitions per net per cycle.
    pub functional: ActivityProfile,
}

impl TimingActivity {
    /// Glitch (spurious) transitions per cycle on net `i`.
    pub fn glitch_rate(&self, net: NetId) -> f64 {
        (self.total.toggles[net.index()] - self.functional.toggles[net.index()]).max(0.0)
    }

    /// Total glitch transitions per cycle over all nets.
    pub fn total_glitches_per_cycle(&self) -> f64 {
        self.total
            .toggles
            .iter()
            .zip(self.functional.toggles.iter())
            .map(|(t, f)| (t - f).max(0.0))
            .sum()
    }

    /// Fraction of all transitions that are spurious (the §III.A.2 number).
    pub fn glitch_fraction(&self) -> f64 {
        let total = self.total.total_toggles_per_cycle();
        if total == 0.0 {
            0.0
        } else {
            self.total_glitches_per_cycle() / total
        }
    }
}

/// Event-driven simulator bound to one combinational netlist.
///
/// ```
/// use netlist::gen::array_multiplier;
/// use sim::event::{DelayModel, EventSim};
/// use sim::stimulus::Stimulus;
///
/// let (mult, _) = array_multiplier(4);
/// let patterns = Stimulus::uniform(8).patterns(200, 1);
/// let timing = EventSim::new(&mult, &DelayModel::Unit).activity(&patterns);
/// // Array multipliers glitch heavily (survey §III.A.2).
/// assert!(timing.glitch_fraction() > 0.1);
/// ```
#[derive(Debug)]
pub struct EventSim<'a> {
    nl: &'a Netlist,
    order: Vec<NetId>,
    fanouts: Vec<Vec<NetId>>,
    delays: Vec<u32>,
}

impl<'a> EventSim<'a> {
    /// Bind a simulator with the given delay model.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential or cyclic.
    pub fn new(nl: &'a Netlist, model: &DelayModel) -> EventSim<'a> {
        assert!(nl.is_combinational(), "EventSim requires combinational netlist");
        let order = nl.topo_order().expect("netlist must be acyclic");
        let fanouts = nl.fanouts();
        let delays = nl.iter_nets().map(|net| model.delay(nl, net)).collect();
        EventSim {
            nl,
            order,
            fanouts,
            delays,
        }
    }

    /// Per-net delay in ticks used by this simulator.
    pub fn delay_of(&self, net: NetId) -> u32 {
        self.delays[net.index()]
    }

    fn settle(&self, values: &mut [bool]) {
        for &net in &self.order {
            let kind = self.nl.kind(net);
            if kind.is_source() {
                if let GateKind::Const(v) = kind {
                    values[net.index()] = v;
                }
                continue;
            }
            let ins: Vec<bool> = self
                .nl
                .fanins(net)
                .iter()
                .map(|x| values[x.index()])
                .collect();
            values[net.index()] = kind.eval(&ins);
        }
    }

    /// Simulate a pattern stream and return total + functional activity.
    ///
    /// Each vector is applied after the previous one has fully settled
    /// (transport-delay semantics, no inertial filtering — a conservative
    /// upper bound on glitching, as in \[16\]).
    pub fn activity(&self, patterns: &PatternSet) -> TimingActivity {
        let n = self.nl.len();
        let mut total_toggles = vec![0u64; n];
        let mut functional_toggles = vec![0u64; n];
        let mut ones = vec![0u64; n];
        let mut values = vec![false; n];

        let mut first = true;
        // (time, net, value) in a min-heap; seq breaks ties deterministically.
        let mut heap: BinaryHeap<Reverse<(u64, u32, u64, bool)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for pattern in patterns {
            assert_eq!(pattern.len(), self.nl.num_inputs(), "pattern width");
            if first {
                for (i, &pi) in self.nl.inputs().iter().enumerate() {
                    values[pi.index()] = pattern[i];
                }
                self.settle(&mut values);
                first = false;
                for i in 0..n {
                    ones[i] += values[i] as u64;
                }
                continue;
            }
            // Functional toggles: compare settled states.
            let mut settled = values.clone();
            for (i, &pi) in self.nl.inputs().iter().enumerate() {
                settled[pi.index()] = pattern[i];
            }
            self.settle(&mut settled);
            for i in 0..n {
                if settled[i] != values[i] {
                    functional_toggles[i] += 1;
                }
            }
            // Event-driven propagation from the input changes.
            debug_assert!(heap.is_empty());
            for (i, &pi) in self.nl.inputs().iter().enumerate() {
                if values[pi.index()] != pattern[i] {
                    heap.push(Reverse((0, pi.index() as u32, seq, pattern[i])));
                    seq += 1;
                }
            }
            while let Some(Reverse((time, raw, _, value))) = heap.pop() {
                // Coalesce: if a later-scheduled evaluation of the same net
                // lands at the same instant, only the freshest one counts
                // (zero-width pulses are not physical transitions).
                if let Some(Reverse((t2, r2, _, _))) = heap.peek() {
                    if *t2 == time && *r2 == raw {
                        continue;
                    }
                }
                let net = NetId::from_index(raw as usize);
                if values[net.index()] == value {
                    continue;
                }
                values[net.index()] = value;
                total_toggles[net.index()] += 1;
                for &sink in &self.fanouts[net.index()] {
                    let kind = self.nl.kind(sink);
                    let ins: Vec<bool> = self
                        .nl
                        .fanins(sink)
                        .iter()
                        .map(|x| values[x.index()])
                        .collect();
                    let out = kind.eval(&ins);
                    let t = time + self.delays[sink.index()] as u64;
                    heap.push(Reverse((t, sink.index() as u32, seq, out)));
                    seq += 1;
                }
            }
            debug_assert_eq!(values, settled, "event sim must settle to functional values");
            for i in 0..n {
                ones[i] += values[i] as u64;
            }
        }

        let cycles = patterns.len();
        let denom = cycles.saturating_sub(1).max(1) as f64;
        let make = |toggles: Vec<u64>| ActivityProfile {
            toggles: toggles.iter().map(|&t| t as f64 / denom).collect(),
            probability: ones.iter().map(|&o| o as f64 / cycles.max(1) as f64).collect(),
            cycles,
        };
        TimingActivity {
            total: make(total_toggles),
            functional: make(functional_toggles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;
    use netlist::gen::{array_multiplier, parity_tree, ripple_adder};

    fn glitchy_pair() -> netlist::Netlist {
        // y = a & !a through different depths: a classic static-1 hazard
        // shape, y = (a AND b) where b = NOT(NOT(NOT a)) — when a rises,
        // the AND sees (1, old 1) briefly.
        let mut nl = netlist::Netlist::new("hazard");
        let a = nl.add_input("a");
        let n1 = nl.add_gate(netlist::GateKind::Not, &[a]);
        let n2 = nl.add_gate(netlist::GateKind::Not, &[n1]);
        let n3 = nl.add_gate(netlist::GateKind::Not, &[n2]);
        let y = nl.add_gate(netlist::GateKind::And, &[a, n3]);
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn hazard_produces_glitches() {
        let nl = glitchy_pair();
        let patterns: PatternSet = (0..50).map(|k| vec![k % 2 == 1]).collect();
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        // Functionally y is always 0 (a & !a), so functional toggles = 0,
        // but rising a reaches the AND before the inverter chain flips.
        let y = nl.outputs()[0].0;
        assert!(activity.functional.toggles[y.index()] < 1e-9);
        assert!(
            activity.total.toggles[y.index()] > 0.5,
            "glitch rate {}",
            activity.total.toggles[y.index()]
        );
        assert!(activity.glitch_fraction() > 0.0);
    }

    #[test]
    fn event_sim_settles_to_functional_values() {
        let (nl, _) = ripple_adder(6);
        let patterns = Stimulus::uniform(12).patterns(50, 17);
        let sim = EventSim::new(&nl, &DelayModel::Analytic { resolution: 4 });
        // The debug_assert inside activity() verifies settling every cycle.
        let activity = sim.activity(&patterns);
        // Total >= functional on every net.
        for i in 0..nl.len() {
            assert!(
                activity.total.toggles[i] >= activity.functional.toggles[i] - 1e-9,
                "net {i}"
            );
        }
    }

    #[test]
    fn multiplier_glitch_fraction_in_survey_range() {
        let (nl, _) = array_multiplier(6);
        let patterns = Stimulus::uniform(12).patterns(200, 23);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        let fraction = activity.glitch_fraction();
        assert!(
            fraction > 0.10,
            "array multipliers glitch heavily, got {fraction}"
        );
    }

    #[test]
    fn balanced_tree_barely_glitches() {
        let nl = parity_tree(8);
        let patterns = Stimulus::uniform(8).patterns(200, 29);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        // A perfectly balanced XOR tree with unit delays has equal path
        // lengths everywhere: no glitches at all.
        assert!(
            activity.glitch_fraction() < 1e-9,
            "balanced tree glitched: {}",
            activity.glitch_fraction()
        );
    }

    #[test]
    fn unit_vs_analytic_delays() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(100, 31);
        let unit = EventSim::new(&nl, &DelayModel::Unit).activity(&patterns);
        let analytic =
            EventSim::new(&nl, &DelayModel::Analytic { resolution: 8 }).activity(&patterns);
        // Functional activity is delay-independent.
        for i in 0..nl.len() {
            assert!(
                (unit.functional.toggles[i] - analytic.functional.toggles[i]).abs() < 1e-9
            );
        }
    }
}
