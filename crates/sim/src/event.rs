//! Event-driven timing simulation with transport delays.
//!
//! Applies each input vector, propagates events through per-gate delays and
//! counts **every** transition, including the spurious ones caused by
//! unequal path delays. Comparing against the zero-delay count from
//! [`crate::comb`] isolates glitch power — the 10–40% of switching activity
//! the survey attributes to spurious transitions (§III.A.2, \[16\]).

use std::sync::atomic::{AtomicU64, Ordering};

use budget::{BudgetExceeded, ResourceBudget};
use netlist::{GateKind, NetId, Netlist};

use crate::par;
use crate::profile::{ActivityProfile, QueueOccupancy};
use crate::queue::{CalendarQueue, Scheduled};
use crate::stimulus::PatternSet;
use crate::wide::{self, LANES};

/// Reusable per-worker buffers for the event loop: net values, the settled
/// reference state, fanin scratch, the calendar queue and the per-bucket
/// batch/dedup buffers. Nothing in the per-cycle hot path allocates once
/// the arena has warmed up, and [`par_map_with`](crate::par::par_map_with)
/// builds one arena per worker thread, not one per shard.
#[derive(Debug, Default)]
pub struct EventArena {
    values: Vec<bool>,
    settled: Vec<bool>,
    ins: Vec<bool>,
    queue: CalendarQueue,
    /// Transitions drained from one popped bucket, sorted by net.
    batch: Vec<(u32, bool)>,
    /// Nets in the batch whose value actually changed.
    toggled: Vec<u32>,
    /// Current/next wave for the uniform-delay drain, packed
    /// `net << 1 | value`.
    wave: Vec<u32>,
    wave_next: Vec<u32>,
    /// Word-parallel state for the dense 64-transition blocks: current and
    /// next per-net lane words, the block's initial settled words, and the
    /// `(net, toggled-lane-count)` frontier lists.
    wcur: Vec<u64>,
    wnext: Vec<u64>,
    wsettled: Vec<u64>,
    wtoggled: Vec<(u32, u32)>,
    wtoggled_next: Vec<(u32, u32)>,
    win_init: Vec<u64>,
    win_next: Vec<u64>,
    /// Per-net stamp (`== sink_epoch`) marking sinks already evaluated for
    /// the current bucket.
    sink_stamp: Vec<u64>,
    sink_epoch: u64,
}

impl EventArena {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> EventArena {
        EventArena::default()
    }
}

/// Raw integer counts from one contiguous shard of the stream.
struct EventCounts {
    total: Vec<u64>,
    functional: Vec<u64>,
    ones: Vec<u64>,
    /// Events popped off the queue. Every enqueued event is eventually
    /// popped (the per-cycle loop drains the queue), so across a successful
    /// run `processed == enqueued`.
    processed: u64,
    /// Event nodes created (input changes + first-time fanout schedules).
    enqueued: u64,
    /// Pops that caused no transition: evaluations that matched the
    /// current value by the time they applied. Always `<= processed`.
    cancelled: u64,
    /// Work the calendar queue never had to carry: same-instant duplicate
    /// schedules folded into a pending slot, fanout sinks already
    /// evaluated in the current bucket's batch, and no-change evaluations
    /// suppressed at schedule time. The old heap engine enqueued (and
    /// popped, and mostly cancelled) each of these individually, so
    /// `enqueued + coalesced` here equals the old engine's `enqueued`.
    coalesced: u64,
    /// Popped-bucket size histogram (empty unless obs is enabled).
    occupancy: QueueOccupancy,
}

/// How per-gate delays are assigned.
#[derive(Debug, Clone)]
pub enum DelayModel {
    /// Every gate has delay 1 (buffers included).
    Unit,
    /// Analytic delays: `base_delay(kind, fanin)` scaled to integer ticks.
    Analytic {
        /// Ticks per delay unit (resolution of the analytic model).
        resolution: u32,
    },
    /// Explicit per-net delays in ticks (indexed by raw net id).
    PerNet(Vec<u32>),
}

impl DelayModel {
    pub(crate) fn delay(&self, nl: &Netlist, net: NetId) -> u32 {
        match self {
            DelayModel::Unit => 1,
            DelayModel::Analytic { resolution } => {
                let kind = nl.kind(net);
                let fanin = nl.fanins(net).len();
                ((kind.base_delay(fanin) * *resolution as f64).round() as u32).max(1)
            }
            DelayModel::PerNet(d) => d[net.index()].max(1),
        }
    }
}

/// Result of a timing simulation.
#[derive(Debug, Clone)]
pub struct TimingActivity {
    /// All transitions per net per cycle (functional + spurious).
    pub total: ActivityProfile,
    /// Functional (zero-delay) transitions per net per cycle.
    pub functional: ActivityProfile,
}

impl TimingActivity {
    /// Glitch (spurious) transitions per cycle on net `i`.
    pub fn glitch_rate(&self, net: NetId) -> f64 {
        (self.total.toggles[net.index()] - self.functional.toggles[net.index()]).max(0.0)
    }

    /// Total glitch transitions per cycle over all nets.
    pub fn total_glitches_per_cycle(&self) -> f64 {
        self.total
            .toggles
            .iter()
            .zip(self.functional.toggles.iter())
            .map(|(t, f)| (t - f).max(0.0))
            .sum()
    }

    /// Fraction of all transitions that are spurious (the §III.A.2 number).
    pub fn glitch_fraction(&self) -> f64 {
        let total = self.total.total_toggles_per_cycle();
        if total == 0.0 {
            0.0
        } else {
            self.total_glitches_per_cycle() / total
        }
    }
}

/// Event-driven simulator bound to one combinational netlist.
///
/// ```
/// use netlist::gen::array_multiplier;
/// use sim::event::{DelayModel, EventSim};
/// use sim::stimulus::Stimulus;
///
/// let (mult, _) = array_multiplier(4);
/// let patterns = Stimulus::uniform(8).patterns(200, 1);
/// let timing = EventSim::new(&mult, &DelayModel::Unit).activity(&patterns);
/// // Array multipliers glitch heavily (survey §III.A.2).
/// assert!(timing.glitch_fraction() > 0.1);
/// ```
#[derive(Debug)]
pub struct EventSim<'a> {
    nl: &'a Netlist,
    order: Vec<NetId>,
    /// Flat copies of the netlist's per-net tables in CSR layout. The
    /// event hot loop reads only these contiguous arrays — gate kind,
    /// fanin ids and fanout ids are each one indexed load away, with none
    /// of the netlist's per-gate vector indirections.
    kinds: Vec<GateKind>,
    fanin_off: Vec<u32>,
    fanin_idx: Vec<u32>,
    fanout_off: Vec<u32>,
    fanout_idx: Vec<u32>,
    delays: Vec<u32>,
    /// One packed record per net for the drain loop: a sink evaluation is
    /// one 16-byte load plus two value loads and a shift.
    sinks: Vec<SinkEval>,
    /// Largest per-net delay; sizes the calendar queue's wheel.
    max_delay: u32,
    /// `Some(d)` when every net has the same delay `d`. Uniform delays
    /// collapse the calendar queue to a two-array wavefront (see
    /// [`EventSim::shard_counts`]); `None` takes the general queue path.
    uniform_delay: Option<u32>,
    /// Use the [`LANES`]-word (256-lane) dense blocks ahead of the 64-lane
    /// ones. Off under `LPOPT_WIDE_SCALAR=1`; counters and activity are
    /// bit-identical either way (lanes evolve independently, so the wide
    /// popcount sums decompose exactly into the 64-lane ones).
    wide: bool,
    obs: obs::Obs,
}

/// Packed evaluation record for one net, sized to four per cache line.
///
/// Gates with one or two fanins — the overwhelming majority of real
/// netlists — evaluate as a 4-entry truth table: `lut >> ((a << 1) | b)`,
/// no gate-kind match, no fanin-slice walk. One-input gates duplicate
/// their fanin into both slots so only the `a == b` LUT rows are ever
/// addressed. `a == GENERIC` routes wider gates (e.g. `Mux`, n-ary
/// `And`/`Xor`) to [`EventSim::eval_net`]. `delay` rides along so the
/// reschedule that follows every evaluation hits the same cache line.
#[derive(Debug, Clone, Copy)]
struct SinkEval {
    a: u32,
    b: u32,
    lut: u32,
    delay: u32,
}

/// Marker in [`SinkEval::a`] for nets outside the 2-input LUT fast path.
const GENERIC: u32 = u32::MAX;

impl<'a> EventSim<'a> {
    /// Bind a simulator with the given delay model.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential or cyclic.
    pub fn new(nl: &'a Netlist, model: &DelayModel) -> EventSim<'a> {
        assert!(nl.is_combinational(), "EventSim requires combinational netlist");
        let order = nl.topo_order().expect("netlist must be acyclic");
        let n = nl.len();
        let mut kinds = Vec::with_capacity(n);
        let mut fanin_off = Vec::with_capacity(n + 1);
        let mut fanin_idx = Vec::new();
        fanin_off.push(0u32);
        for net in nl.iter_nets() {
            kinds.push(nl.kind(net));
            fanin_idx.extend(nl.fanins(net).iter().map(|x| x.index() as u32));
            fanin_off.push(fanin_idx.len() as u32);
        }
        let mut fanout_off = Vec::with_capacity(n + 1);
        let mut fanout_idx = Vec::new();
        fanout_off.push(0u32);
        for outs in &nl.fanouts() {
            fanout_idx.extend(outs.iter().map(|x| x.index() as u32));
            fanout_off.push(fanout_idx.len() as u32);
        }
        let delays: Vec<u32> = nl.iter_nets().map(|net| model.delay(nl, net)).collect();
        let max_delay = delays.iter().copied().max().unwrap_or(1);
        let uniform_delay = match delays.first() {
            Some(&d) if delays.iter().all(|&x| x == d) => Some(d),
            _ => None,
        };
        let mut sinks = Vec::with_capacity(n);
        for si in 0..n {
            let mut e = SinkEval { a: GENERIC, b: 0, lut: 0, delay: delays[si] };
            let kind = kinds[si];
            if !matches!(kind, GateKind::Input | GateKind::Const(_)) {
                let ins = &fanin_idx[fanin_off[si] as usize..fanin_off[si + 1] as usize];
                match *ins {
                    [a] => {
                        e.a = a;
                        e.b = a;
                        for bits in 0..4u32 {
                            // Duplicated fanin: only rows with a == b occur.
                            if bits >> 1 == bits & 1 && kind.eval(&[bits & 1 != 0]) {
                                e.lut |= 1 << bits;
                            }
                        }
                    }
                    [a, b] => {
                        e.a = a;
                        e.b = b;
                        for bits in 0..4u32 {
                            if kind.eval(&[bits >> 1 != 0, bits & 1 != 0]) {
                                e.lut |= 1 << bits;
                            }
                        }
                    }
                    _ => {}
                }
            }
            sinks.push(e);
        }
        EventSim {
            nl,
            order,
            kinds,
            fanin_off,
            fanin_idx,
            fanout_off,
            fanout_idx,
            delays,
            sinks,
            max_delay,
            uniform_delay,
            wide: !wide::scalar_env(),
            obs: obs::Obs::disabled(),
        }
    }

    /// Disable the uniform-delay wavefront fast path, forcing the general
    /// calendar-queue drain. Only for equivalence tests: results must be
    /// bit-identical either way.
    #[cfg(test)]
    pub(crate) fn force_general_queue(mut self) -> EventSim<'a> {
        self.uniform_delay = None;
        self
    }

    /// Force (or lift) the 64-lane reference path (no 256-lane dense
    /// blocks). Benchmarks use this to measure the wide speedup
    /// in-process, tests to pin bit-identity.
    pub fn with_scalar_reference(mut self, scalar: bool) -> EventSim<'a> {
        self.wide = !scalar;
        self
    }

    /// Evaluate net `si` straight off the CSR tables, reading fanin values
    /// in place — no gather into a scratch buffer. Matches
    /// [`GateKind::eval`] exactly for every evaluable kind.
    ///
    /// The n-ary kinds fold with non-short-circuiting `&`/`|`/`^`: fanin
    /// values are effectively random, so `all`/`any`-style early exits
    /// would cost a mispredicted branch per fanin where the plain bit op
    /// costs one ALU instruction.
    #[inline(always)]
    fn eval_net(&self, si: usize, values: &[bool]) -> bool {
        let ins = &self.fanin_idx[self.fanin_off[si] as usize..self.fanin_off[si + 1] as usize];
        match self.kinds[si] {
            GateKind::And => ins.iter().fold(true, |a, &x| a & values[x as usize]),
            GateKind::Or => ins.iter().fold(false, |a, &x| a | values[x as usize]),
            GateKind::Nand => !ins.iter().fold(true, |a, &x| a & values[x as usize]),
            GateKind::Nor => !ins.iter().fold(false, |a, &x| a | values[x as usize]),
            GateKind::Not => !values[ins[0] as usize],
            GateKind::Buf | GateKind::Dff => values[ins[0] as usize],
            GateKind::Xor => ins.iter().fold(false, |a, &x| a ^ values[x as usize]),
            GateKind::Xnor => !ins.iter().fold(false, |a, &x| a ^ values[x as usize]),
            GateKind::Mux => {
                if values[ins[0] as usize] {
                    values[ins[2] as usize]
                } else {
                    values[ins[1] as usize]
                }
            }
            GateKind::Const(v) => v,
            // Inputs have no fanin and are never anyone's fanout sink.
            GateKind::Input => {
                debug_assert!(false, "inputs are never evaluated as sinks");
                values[si]
            }
        }
    }

    /// [`EventSim::eval_net`] on 64 lanes at once: same CSR walk, same
    /// [`GateKind::eval_word`] semantics, one `u64` word per net.
    #[inline(always)]
    fn eval_net_word(&self, si: usize, w: &[u64]) -> u64 {
        let ins = &self.fanin_idx[self.fanin_off[si] as usize..self.fanin_off[si + 1] as usize];
        match self.kinds[si] {
            GateKind::And => ins.iter().fold(u64::MAX, |a, &x| a & w[x as usize]),
            GateKind::Or => ins.iter().fold(0, |a, &x| a | w[x as usize]),
            GateKind::Nand => !ins.iter().fold(u64::MAX, |a, &x| a & w[x as usize]),
            GateKind::Nor => !ins.iter().fold(0, |a, &x| a | w[x as usize]),
            GateKind::Not => !w[ins[0] as usize],
            GateKind::Buf | GateKind::Dff => w[ins[0] as usize],
            GateKind::Xor => ins.iter().fold(0, |a, &x| a ^ w[x as usize]),
            GateKind::Xnor => !ins.iter().fold(0, |a, &x| a ^ w[x as usize]),
            GateKind::Mux => {
                let s = w[ins[0] as usize];
                (s & w[ins[2] as usize]) | (!s & w[ins[1] as usize])
            }
            GateKind::Const(v) => {
                if v {
                    u64::MAX
                } else {
                    0
                }
            }
            GateKind::Input => {
                debug_assert!(false, "inputs are never evaluated as sinks");
                w[si]
            }
        }
    }

    /// [`EventSim::eval_net_word`] on [`LANES`] words (256 lanes) at once.
    /// `w` is lane-grouped: net `x`'s words sit at `w[x*LANES .. +LANES]`.
    /// Lane `l` is exactly `eval_net_word` over lane `l` of every net.
    #[inline(always)]
    fn eval_net_wide(&self, si: usize, w: &[u64]) -> [u64; LANES] {
        #[inline(always)]
        fn ld(w: &[u64], x: u32) -> [u64; LANES] {
            let mut out = [0u64; LANES];
            out.copy_from_slice(&w[x as usize * LANES..][..LANES]);
            out
        }
        #[inline(always)]
        fn fold(ins: &[u32], w: &[u64], init: u64, f: impl Fn(u64, u64) -> u64) -> [u64; LANES] {
            let mut acc = [init; LANES];
            for &x in ins {
                let base = x as usize * LANES;
                for l in 0..LANES {
                    acc[l] = f(acc[l], w[base + l]);
                }
            }
            acc
        }
        #[inline(always)]
        fn notl(mut a: [u64; LANES]) -> [u64; LANES] {
            for l in 0..LANES {
                a[l] = !a[l];
            }
            a
        }
        let ins = &self.fanin_idx[self.fanin_off[si] as usize..self.fanin_off[si + 1] as usize];
        match self.kinds[si] {
            GateKind::And => fold(ins, w, u64::MAX, |a, x| a & x),
            GateKind::Or => fold(ins, w, 0, |a, x| a | x),
            GateKind::Nand => notl(fold(ins, w, u64::MAX, |a, x| a & x)),
            GateKind::Nor => notl(fold(ins, w, 0, |a, x| a | x)),
            GateKind::Not => notl(ld(w, ins[0])),
            GateKind::Buf | GateKind::Dff => ld(w, ins[0]),
            GateKind::Xor => fold(ins, w, 0, |a, x| a ^ x),
            GateKind::Xnor => notl(fold(ins, w, 0, |a, x| a ^ x)),
            GateKind::Mux => {
                let (s, a, b) = (ld(w, ins[0]), ld(w, ins[1]), ld(w, ins[2]));
                let mut out = [0u64; LANES];
                for l in 0..LANES {
                    out[l] = (s[l] & b[l]) | (!s[l] & a[l]);
                }
                out
            }
            GateKind::Const(v) => [if v { u64::MAX } else { 0 }; LANES],
            GateKind::Input => {
                debug_assert!(false, "inputs are never evaluated as sinks");
                ld(w, si as u32)
            }
        }
    }

    /// Attach an observability handle. Event counters (`sim.event.cycles`,
    /// `.processed`, `.enqueued`, `.cancelled`, `.coalesced`) accumulate as
    /// plain `u64`s inside each shard and flush once per successful
    /// activity run, along with the `sim.event.occupancy.*` bucket-size
    /// histogram gauges. The histogram profiles the queue, so runs that
    /// qualify for the dense word path (uniform delays, unlimited
    /// step/queue budgets) report counters only.
    pub fn with_obs(mut self, obs: obs::Obs) -> EventSim<'a> {
        self.obs = obs;
        self
    }

    /// Per-net delay in ticks used by this simulator.
    pub fn delay_of(&self, net: NetId) -> u32 {
        self.delays[net.index()]
    }

    fn settle(&self, values: &mut [bool], ins: &mut Vec<bool>) {
        for &net in &self.order {
            let kind = self.nl.kind(net);
            if kind.is_source() {
                if let GateKind::Const(v) = kind {
                    values[net.index()] = v;
                }
                continue;
            }
            ins.clear();
            ins.extend(self.nl.fanins(net).iter().map(|x| values[x.index()]));
            values[net.index()] = kind.eval(ins);
        }
    }

    /// Cross-check event-loop convergence against a real settle pass (the
    /// invariant the settled-diff functional counting rests on).
    #[cfg(debug_assertions)]
    fn debug_check_settled(&self, pattern: &[bool], arena: &mut EventArena) {
        let mut chk = arena.settled.clone();
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            chk[pi.index()] = pattern[i];
        }
        self.settle(&mut chk, &mut arena.ins);
        debug_assert_eq!(chk, arena.values, "event sim must settle to functional values");
    }

    /// Apply `pattern` to the inputs of `values` and settle in place.
    fn apply_and_settle(&self, pattern: &[bool], values: &mut [bool], ins: &mut Vec<bool>) {
        assert_eq!(pattern.len(), self.nl.num_inputs(), "pattern width");
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = pattern[i];
        }
        self.settle(values, ins);
    }

    /// Simulate 64 consecutive cycle transitions bit-parallel (lane `k` =
    /// the transition into `chunk[k]`, starting from the settled state of
    /// the pattern before it).
    ///
    /// Under a uniform delay, transport-delay event propagation *is*
    /// synchronous relaxation: every net's value at tick `t` is its gate
    /// function applied to its fanins' values at tick `t - 1`, and the
    /// sparse event queue is merely a work-list implementation of that
    /// iteration. Since a combinational cycle depends only on its
    /// (previous, current) pattern pair, 64 independent transitions pack
    /// into one `u64` lane word per net and relax together; per-net toggle
    /// counts fall out of `popcount(prev ^ next)` per tick, functional
    /// toggles and signal probabilities out of popcounts of the
    /// settled-word diff. Results — activity *and* event counters — are
    /// bit-identical to the wavefront path by construction (and by the
    /// `dense_word_blocks_match_sparse_event_loop` test):
    ///
    /// * `processed`/`enqueued`: an event is enqueued exactly when an
    ///   evaluation toggles, so both equal seed toggles + gate toggles —
    ///   pure popcounts.
    /// * `coalesced` (sink-stamp hits + suppressed no-change evals): each
    ///   lane toggle of net `u` visits every fanout edge of `u` next tick,
    ///   and each visit either enqueues or coalesces, so per tick it is
    ///   `Σ_toggled popcount(u) · fanout(u) − next-tick enqueues`.
    /// * `cancelled` is identically 0, as on the wavefront path.
    ///
    /// Only called when the queue/step budgets are unlimited
    /// (budget-limited runs keep the event paths' exact enforcement
    /// points); the deadline is still polled every tick. Obs counters are
    /// derived exactly from the popcounts above at no marginal cost, so
    /// the path runs under an enabled handle too; the per-wave occupancy
    /// histogram is the one diagnostic this path does not produce — there
    /// is no queue to profile, and recovering per-lane wave sizes costs
    /// ~O(events), which would break the <2% obs overhead contract — so
    /// dense-eligible runs skip it on every path (see `shard_counts`).
    /// On return `arena.values` holds the settled state of `chunk[63]`,
    /// ready for the sparse remainder loop or the next block.
    fn dense_block(
        &self,
        prev: &[bool],
        chunk: &[Vec<bool>],
        arena: &mut EventArena,
        counts: &mut EventCounts,
        budget: &ResourceBudget,
        local_steps: &mut u64,
    ) -> Result<(), BudgetExceeded> {
        debug_assert_eq!(chunk.len(), 64);
        let n = self.nl.len();
        let inputs = self.nl.inputs();
        arena.wcur.clear();
        arena.wcur.resize(n, 0);
        arena.wnext.clear();
        arena.wnext.resize(n, 0);
        arena.wsettled.clear();
        arena.wsettled.resize(n, 0);
        arena.win_init.clear();
        arena.win_init.resize(inputs.len(), 0);
        arena.win_next.clear();
        arena.win_next.resize(inputs.len(), 0);
        for j in 0..inputs.len() {
            let mut init = prev[j] as u64;
            let mut next = 0u64;
            for (k, pattern) in chunk.iter().enumerate() {
                if k > 0 {
                    init |= (chunk[k - 1][j] as u64) << k;
                }
                next |= (pattern[j] as u64) << k;
            }
            arena.win_init[j] = init;
            arena.win_next[j] = next;
        }
        // Settle every lane's initial state in topological order.
        for (j, &pi) in inputs.iter().enumerate() {
            arena.wcur[pi.index()] = arena.win_init[j];
        }
        for &net in &self.order {
            let si = net.index();
            match self.kinds[si] {
                GateKind::Input => {}
                _ => arena.wcur[si] = self.eval_net_word(si, &arena.wcur),
            }
        }
        arena.wsettled.copy_from_slice(&arena.wcur);
        // Tick 0: the input transitions seed the frontier.
        arena.wtoggled.clear();
        for (j, &pi) in inputs.iter().enumerate() {
            let i = pi.index();
            let diff = arena.win_init[j] ^ arena.win_next[j];
            if diff != 0 {
                arena.wcur[i] = arena.win_next[j];
                let pc = diff.count_ones();
                counts.total[i] += pc as u64;
                counts.processed += pc as u64;
                counts.enqueued += pc as u64;
                *local_steps += pc as u64;
                arena.wtoggled.push((i as u32, pc));
            }
        }
        // Jacobi relaxation: each tick evaluates the distinct sinks of the
        // previous tick's toggled nets against the *old* words (double
        // buffer), exactly the event engine's apply-then-evaluate order.
        while !arena.wtoggled.is_empty() {
            budget.check_deadline()?;
            arena.wnext.copy_from_slice(&arena.wcur);
            arena.sink_epoch += 1;
            arena.wtoggled_next.clear();
            let mut visits = 0u64;
            let mut enq = 0u64;
            for &(u, pc) in &arena.wtoggled {
                let lo = self.fanout_off[u as usize] as usize;
                let hi = self.fanout_off[u as usize + 1] as usize;
                visits += (hi - lo) as u64 * pc as u64;
                for &sink in &self.fanout_idx[lo..hi] {
                    let si = sink as usize;
                    if arena.sink_stamp[si] == arena.sink_epoch {
                        continue;
                    }
                    arena.sink_stamp[si] = arena.sink_epoch;
                    let out = self.eval_net_word(si, &arena.wcur);
                    let diff = out ^ arena.wcur[si];
                    if diff != 0 {
                        arena.wnext[si] = out;
                        let pc = diff.count_ones();
                        counts.total[si] += pc as u64;
                        enq += pc as u64;
                        arena.wtoggled_next.push((sink, pc));
                    }
                }
            }
            counts.processed += enq;
            counts.enqueued += enq;
            counts.coalesced += visits - enq;
            *local_steps += enq;
            std::mem::swap(&mut arena.wcur, &mut arena.wnext);
            std::mem::swap(&mut arena.wtoggled, &mut arena.wtoggled_next);
        }
        // Functional toggles and signal probabilities for all 64 lanes.
        for i in 0..n {
            counts.functional[i] += u64::from((arena.wsettled[i] ^ arena.wcur[i]).count_ones());
            counts.ones[i] += u64::from(arena.wcur[i].count_ones());
        }
        // Hand the last lane's settled state back to the scalar loop.
        for i in 0..n {
            arena.values[i] = arena.wcur[i] >> 63 & 1 != 0;
        }
        #[cfg(debug_assertions)]
        {
            let mut chk = vec![false; n];
            self.apply_and_settle(&chunk[63], &mut chk, &mut arena.ins);
            debug_assert_eq!(chk, arena.values, "dense block must exit on the settled state");
        }
        Ok(())
    }

    /// [`EventSim::dense_block`] on `64 * LANES` consecutive transitions
    /// (256 lanes at the default [`LANES`]), with lane-grouped wide words
    /// per net so each relaxation step folds whole [`crate::wide::WideWord`]s.
    ///
    /// Counters stay bit-identical to running the [`LANES`] 64-lane blocks
    /// separately: lanes evolve independently under the Jacobi iteration,
    /// every per-tick count is a popcount sum over lanes (which decomposes
    /// exactly), and a lane whose block has already settled contributes
    /// zero toggles, zero visits and zero enqueues to the extra ticks.
    fn dense_block_wide(
        &self,
        prev: &[bool],
        chunk: &[Vec<bool>],
        arena: &mut EventArena,
        counts: &mut EventCounts,
        budget: &ResourceBudget,
        local_steps: &mut u64,
    ) -> Result<(), BudgetExceeded> {
        debug_assert_eq!(chunk.len(), 64 * LANES);
        let n = self.nl.len();
        let inputs = self.nl.inputs();
        arena.wcur.clear();
        arena.wcur.resize(n * LANES, 0);
        arena.wnext.clear();
        arena.wnext.resize(n * LANES, 0);
        arena.wsettled.clear();
        arena.wsettled.resize(n * LANES, 0);
        arena.win_init.clear();
        arena.win_init.resize(inputs.len() * LANES, 0);
        arena.win_next.clear();
        arena.win_next.resize(inputs.len() * LANES, 0);
        for j in 0..inputs.len() {
            for l in 0..LANES {
                let base = 64 * l;
                let mut init = if l == 0 {
                    prev[j] as u64
                } else {
                    chunk[base - 1][j] as u64
                };
                let mut next = 0u64;
                for k in 0..64 {
                    if k > 0 {
                        init |= (chunk[base + k - 1][j] as u64) << k;
                    }
                    next |= (chunk[base + k][j] as u64) << k;
                }
                arena.win_init[j * LANES + l] = init;
                arena.win_next[j * LANES + l] = next;
            }
        }
        // Settle every lane's initial state in topological order.
        for (j, &pi) in inputs.iter().enumerate() {
            arena.wcur[pi.index() * LANES..][..LANES]
                .copy_from_slice(&arena.win_init[j * LANES..][..LANES]);
        }
        for &net in &self.order {
            let si = net.index();
            if self.kinds[si] != GateKind::Input {
                let out = self.eval_net_wide(si, &arena.wcur);
                arena.wcur[si * LANES..][..LANES].copy_from_slice(&out);
            }
        }
        arena.wsettled.copy_from_slice(&arena.wcur);
        // Tick 0: the input transitions seed the frontier.
        arena.wtoggled.clear();
        for (j, &pi) in inputs.iter().enumerate() {
            let i = pi.index();
            let mut pc = 0u32;
            for l in 0..LANES {
                pc += (arena.win_init[j * LANES + l] ^ arena.win_next[j * LANES + l]).count_ones();
            }
            if pc != 0 {
                arena.wcur[i * LANES..][..LANES]
                    .copy_from_slice(&arena.win_next[j * LANES..][..LANES]);
                counts.total[i] += pc as u64;
                counts.processed += pc as u64;
                counts.enqueued += pc as u64;
                *local_steps += pc as u64;
                arena.wtoggled.push((i as u32, pc));
            }
        }
        // Jacobi relaxation, double-buffered exactly like the 64-lane path.
        while !arena.wtoggled.is_empty() {
            budget.check_deadline()?;
            arena.wnext.copy_from_slice(&arena.wcur);
            arena.sink_epoch += 1;
            arena.wtoggled_next.clear();
            let mut visits = 0u64;
            let mut enq = 0u64;
            for &(u, pc) in &arena.wtoggled {
                let lo = self.fanout_off[u as usize] as usize;
                let hi = self.fanout_off[u as usize + 1] as usize;
                visits += (hi - lo) as u64 * pc as u64;
                for &sink in &self.fanout_idx[lo..hi] {
                    let si = sink as usize;
                    if arena.sink_stamp[si] == arena.sink_epoch {
                        continue;
                    }
                    arena.sink_stamp[si] = arena.sink_epoch;
                    let out = self.eval_net_wide(si, &arena.wcur);
                    let mut pc = 0u32;
                    for l in 0..LANES {
                        pc += (out[l] ^ arena.wcur[si * LANES + l]).count_ones();
                    }
                    if pc != 0 {
                        arena.wnext[si * LANES..][..LANES].copy_from_slice(&out);
                        counts.total[si] += pc as u64;
                        enq += pc as u64;
                        arena.wtoggled_next.push((sink, pc));
                    }
                }
            }
            counts.processed += enq;
            counts.enqueued += enq;
            counts.coalesced += visits - enq;
            *local_steps += enq;
            std::mem::swap(&mut arena.wcur, &mut arena.wnext);
            std::mem::swap(&mut arena.wtoggled, &mut arena.wtoggled_next);
        }
        // Functional toggles and signal probabilities for all lanes.
        for i in 0..n {
            for l in 0..LANES {
                counts.functional[i] +=
                    u64::from((arena.wsettled[i * LANES + l] ^ arena.wcur[i * LANES + l]).count_ones());
                counts.ones[i] += u64::from(arena.wcur[i * LANES + l].count_ones());
            }
        }
        // Hand the last lane's settled state back to the scalar loop.
        for i in 0..n {
            arena.values[i] = arena.wcur[i * LANES + LANES - 1] >> 63 & 1 != 0;
        }
        #[cfg(debug_assertions)]
        {
            let mut chk = vec![false; n];
            self.apply_and_settle(&chunk[64 * LANES - 1], &mut chk, &mut arena.ins);
            debug_assert_eq!(chk, arena.values, "wide block must exit on the settled state");
        }
        Ok(())
    }

    /// Count transitions over one contiguous shard.
    ///
    /// `prev_pattern` is the pattern applied in the cycle just before this
    /// shard: a combinational settled state depends only on the current
    /// pattern, so one uncounted settle reconstructs exactly the state the
    /// serial run would have carried in — shards are embarrassingly
    /// parallel and the merged counts stay bit-identical.
    /// Events processed count toward the shared `steps` tally (flushed
    /// every 1024 pops, so the atomic stays off the per-event path); queue
    /// length is compared against the pre-resolved limit before every node
    /// creation (one register compare); the wall clock is polled once per
    /// cycle and once per flush. Unlike the cycle-based engines,
    /// event-driven cost is unknowable up front — a glitchy circuit can
    /// schedule orders of magnitude more events than cycles — so these are
    /// the runtime guards that make the engine safe to call under a budget
    /// at all.
    ///
    /// The inner loop drains the calendar queue one *timestamp* at a time:
    /// first every transition in the bucket is applied (they touch
    /// distinct nets, so application order is immaterial), then each
    /// distinct fanout sink is evaluated exactly once and rescheduled.
    /// This is bit-identical to the old per-event loop: the heap's
    /// peek-ahead coalescing kept only the last same-instant evaluation of
    /// a sink, which — because events at one instant popped in net order —
    /// was always the one that saw every same-instant fanin transition
    /// already applied. Evaluating once after applying the whole batch
    /// computes exactly that value, while skipping the redundant earlier
    /// evaluations instead of enqueueing and cancelling them.
    fn shard_counts(
        &self,
        prev_pattern: Option<&[bool]>,
        patterns: &[Vec<bool>],
        arena: &mut EventArena,
        budget: &ResourceBudget,
        steps: &AtomicU64,
    ) -> Result<EventCounts, BudgetExceeded> {
        const FLUSH: u64 = 1024;
        let max_steps = budget.max_sim_steps_or(u64::MAX);
        let max_queue = budget.max_event_queue_or(u64::MAX);
        let mut local_steps = 0u64;
        let n = self.nl.len();
        // Dense 64-lane blocks need exact budget-enforcement points to be
        // irrelevant: unlimited step/queue budgets. Observability is fine —
        // the counters are derived exactly at no marginal cost.
        let dense_ok =
            self.uniform_delay.is_some() && max_steps == u64::MAX && max_queue == u64::MAX;
        // The occupancy histogram profiles the *queue*: it is recorded only
        // on runs that exercise the queue/wavefront engines. Dense-eligible
        // runs skip it on every path — including each shard's sub-64
        // remainder patterns, so the gauges stay `--jobs` invariant
        // (eligibility depends on the delay model and budget, never on
        // sharding) — and an exact dense histogram would cost ~O(events),
        // violating the <2% enabled-obs overhead contract.
        let record_occupancy = self.obs.is_enabled() && !dense_ok;
        let mut counts = EventCounts {
            total: vec![0u64; n],
            functional: vec![0u64; n],
            ones: vec![0u64; n],
            processed: 0,
            enqueued: 0,
            cancelled: 0,
            coalesced: 0,
            occupancy: QueueOccupancy::default(),
        };
        arena.values.clear();
        arena.values.resize(n, false);
        arena.settled.clear();
        arena.settled.resize(n, false);
        arena.queue.reset(n, self.max_delay);
        arena.sink_stamp.clear();
        arena.sink_stamp.resize(n, 0);
        arena.sink_epoch = 0;
        let (mut prev, rest): (&[bool], _) = match prev_pattern {
            Some(p) => {
                // Reconstruct the pre-shard settled state; the previous
                // shard already counted this cycle.
                self.apply_and_settle(p, &mut arena.values, &mut arena.ins);
                (p, patterns)
            }
            None => {
                let Some((head, rest)) = patterns.split_first() else {
                    return Ok(counts);
                };
                self.apply_and_settle(head, &mut arena.values, &mut arena.ins);
                for i in 0..n {
                    counts.ones[i] += arena.values[i] as u64;
                }
                (head, rest)
            }
        };
        let mut idx = 0;
        while idx < rest.len() {
            if dense_ok && self.wide && rest.len() - idx >= 64 * LANES {
                let chunk = &rest[idx..idx + 64 * LANES];
                for pattern in chunk {
                    assert_eq!(pattern.len(), self.nl.num_inputs(), "pattern width");
                }
                self.dense_block_wide(prev, chunk, arena, &mut counts, budget, &mut local_steps)?;
                prev = &chunk[64 * LANES - 1];
                idx += 64 * LANES;
                continue;
            }
            if dense_ok && rest.len() - idx >= 64 {
                let chunk = &rest[idx..idx + 64];
                for pattern in chunk {
                    assert_eq!(pattern.len(), self.nl.num_inputs(), "pattern width");
                }
                self.dense_block(prev, chunk, arena, &mut counts, budget, &mut local_steps)?;
                prev = &chunk[63];
                idx += 64;
                continue;
            }
            let pattern = &rest[idx];
            idx += 1;
            prev = pattern;
            assert_eq!(pattern.len(), self.nl.num_inputs(), "pattern width");
            budget.check_deadline()?;
            // Snapshot the previous settled state. Functional toggles are
            // the settled-to-settled diff, and the event loop provably
            // converges to the zero-delay settled state — so the diff is
            // taken after the queue drains, replacing the full per-cycle
            // settle pass the old engine ran just to count them.
            arena.settled.copy_from_slice(&arena.values);
            if self.uniform_delay.is_some() {
                // Uniform-delay wavefront drain. With one delay `d`
                // everywhere, every event scheduled while draining wave `t`
                // lands at exactly `t + d`, so the calendar queue
                // degenerates to two flat arrays: the wave being applied
                // and the wave being built. The general path's remaining
                // queue work provably never happens here — slot coalescing
                // needs one net scheduled twice at one instant (the sink
                // stamp already dedups a wave's evaluations), a stale pop
                // (`cancelled`) needs the net's value to change between
                // schedule and pop (its next pop *is* that event), and an
                // earlier-slot reschedule needs two live nodes per net.
                // Entries pack `net << 1 | value` so the per-wave
                // determinism sort is a plain `u32` sort.
                arena.wave_next.clear();
                for (i, &pi) in self.nl.inputs().iter().enumerate() {
                    if arena.values[pi.index()] != pattern[i] {
                        if arena.wave_next.len() as u64 >= max_queue {
                            return Err(
                                budget.event_queue_exceeded(arena.wave_next.len() as u64 + 1)
                            );
                        }
                        arena.wave_next.push((pi.index() as u32) << 1 | pattern[i] as u32);
                        counts.enqueued += 1;
                    }
                }
                while !arena.wave_next.is_empty() {
                    std::mem::swap(&mut arena.wave, &mut arena.wave_next);
                    arena.wave_next.clear();
                    // No per-wave net sort: unlike the calendar queue's
                    // pop contract (which incremental wave *recording*
                    // relies on), nothing here observes intra-wave order —
                    // the whole wave is applied before any sink runs, and
                    // the sink stamp dedups evaluations to the same value
                    // whichever fanin visits first.
                    if record_occupancy {
                        counts.occupancy.record(arena.wave.len());
                    }
                    counts.processed += arena.wave.len() as u64;
                    local_steps += arena.wave.len() as u64;
                    if local_steps >= FLUSH {
                        let tally = steps.fetch_add(local_steps, Ordering::Relaxed) + local_steps;
                        local_steps = 0;
                        if tally >= max_steps {
                            return Err(budget.sim_steps_exceeded(tally));
                        }
                        budget.check_deadline()?;
                    }
                    for &packed in &arena.wave {
                        let i = (packed >> 1) as usize;
                        debug_assert_ne!(
                            arena.values[i],
                            packed & 1 != 0,
                            "uniform-delay pops always toggle"
                        );
                        arena.values[i] = packed & 1 != 0;
                        counts.total[i] += 1;
                    }
                    arena.sink_epoch += 1;
                    for &packed in &arena.wave {
                        let raw = (packed >> 1) as usize;
                        let lo = self.fanout_off[raw] as usize;
                        let hi = self.fanout_off[raw + 1] as usize;
                        for &sink in &self.fanout_idx[lo..hi] {
                            let si = sink as usize;
                            if arena.sink_stamp[si] == arena.sink_epoch {
                                counts.coalesced += 1;
                                continue;
                            }
                            arena.sink_stamp[si] = arena.sink_epoch;
                            let e = self.sinks[si];
                            let out = if e.a != GENERIC {
                                let row = ((arena.values[e.a as usize] as u32) << 1)
                                    | arena.values[e.b as usize] as u32;
                                e.lut >> row & 1 != 0
                            } else {
                                self.eval_net(si, &arena.values)
                            };
                            if out == arena.values[si] {
                                // The general path's schedule-time
                                // suppression: an unchanged sink with no
                                // pending node cannot affect the run.
                                counts.coalesced += 1;
                                continue;
                            }
                            if arena.wave_next.len() as u64 >= max_queue {
                                return Err(
                                    budget.event_queue_exceeded(arena.wave_next.len() as u64 + 1)
                                );
                            }
                            arena.wave_next.push(sink << 1 | out as u32);
                            counts.enqueued += 1;
                        }
                    }
                }
                // Functional toggles and signal probabilities from the
                // settled-state diff.
                for i in 0..n {
                    counts.functional[i] += (arena.settled[i] != arena.values[i]) as u64;
                    counts.ones[i] += arena.values[i] as u64;
                }
                #[cfg(debug_assertions)]
                self.debug_check_settled(pattern, arena);
                continue;
            }
            // Event-driven propagation from the input changes.
            arena.queue.begin_cycle();
            for (i, &pi) in self.nl.inputs().iter().enumerate() {
                if arena.values[pi.index()] != pattern[i] {
                    if arena.queue.pending() >= max_queue {
                        return Err(budget.event_queue_exceeded(arena.queue.pending() + 1));
                    }
                    arena.queue.schedule(pi.index() as u32, 0, pattern[i]);
                    counts.enqueued += 1;
                }
            }
            while let Some(time) = arena.queue.pop_bucket(&mut arena.batch) {
                if record_occupancy {
                    counts.occupancy.record(arena.batch.len());
                }
                counts.processed += arena.batch.len() as u64;
                local_steps += arena.batch.len() as u64;
                if local_steps >= FLUSH {
                    let tally = steps.fetch_add(local_steps, Ordering::Relaxed) + local_steps;
                    local_steps = 0;
                    if tally >= max_steps {
                        return Err(budget.sim_steps_exceeded(tally));
                    }
                    budget.check_deadline()?;
                }
                // Apply the whole batch (one entry per net), remembering
                // which nets actually changed.
                arena.toggled.clear();
                for &(raw, value) in &arena.batch {
                    let i = raw as usize;
                    if arena.values[i] == value {
                        counts.cancelled += 1;
                        continue;
                    }
                    arena.values[i] = value;
                    counts.total[i] += 1;
                    arena.toggled.push(raw);
                }
                // Evaluate each distinct sink of the changed nets once.
                arena.sink_epoch += 1;
                for &raw in &arena.toggled {
                    let lo = self.fanout_off[raw as usize] as usize;
                    let hi = self.fanout_off[raw as usize + 1] as usize;
                    for &sink in &self.fanout_idx[lo..hi] {
                        let si = sink as usize;
                        if arena.sink_stamp[si] == arena.sink_epoch {
                            counts.coalesced += 1;
                            continue;
                        }
                        arena.sink_stamp[si] = arena.sink_epoch;
                        let e = self.sinks[si];
                        let out = if e.a != GENERIC {
                            let row = ((arena.values[e.a as usize] as u32) << 1)
                                | arena.values[e.b as usize] as u32;
                            e.lut >> row & 1 != 0
                        } else {
                            self.eval_net(si, &arena.values)
                        };
                        let t = time + e.delay as u64;
                        if arena.queue.pending() >= max_queue {
                            return Err(budget.event_queue_exceeded(arena.queue.pending() + 1));
                        }
                        // No-change outputs on a sink with no pending
                        // event are suppressed inside the queue (the old
                        // engine enqueued, popped and cancelled them).
                        match arena.queue.schedule_transition(sink, t, out, out == arena.values[si])
                        {
                            Scheduled::New => counts.enqueued += 1,
                            Scheduled::Coalesced | Scheduled::Suppressed => counts.coalesced += 1,
                        }
                    }
                }
            }
            // Functional toggles and signal probabilities from the
            // settled-state diff.
            for i in 0..n {
                counts.functional[i] += (arena.settled[i] != arena.values[i]) as u64;
                counts.ones[i] += arena.values[i] as u64;
            }
            #[cfg(debug_assertions)]
            self.debug_check_settled(pattern, arena);
        }
        let tally = steps.fetch_add(local_steps, Ordering::Relaxed) + local_steps;
        if local_steps > 0 && tally >= max_steps {
            return Err(budget.sim_steps_exceeded(tally));
        }
        Ok(counts)
    }

    /// Simulate a pattern stream and return total + functional activity.
    ///
    /// Each vector is applied after the previous one has fully settled
    /// (transport-delay semantics, no inertial filtering — a conservative
    /// upper bound on glitching, as in \[16\]).
    pub fn activity(&self, patterns: &PatternSet) -> TimingActivity {
        self.activity_jobs(patterns, 1)
    }

    /// [`EventSim::activity`] under a [`ResourceBudget`] (serial).
    pub fn try_activity(
        &self,
        patterns: &PatternSet,
        budget: &ResourceBudget,
    ) -> Result<TimingActivity, BudgetExceeded> {
        self.try_activity_jobs(patterns, 1, budget)
    }

    /// [`EventSim::activity`] sharded over up to `jobs` worker threads
    /// (`0` = all cores).
    ///
    /// Each shard re-settles the pattern preceding it (combinational state
    /// has no deeper history) and then simulates its cycles with a private
    /// arena; integer counts merge in fixed shard order, so the result is
    /// **bit-identical** to the serial run for every thread count.
    pub fn activity_jobs(&self, patterns: &PatternSet, jobs: usize) -> TimingActivity {
        match self.try_activity_jobs(patterns, jobs, &ResourceBudget::unlimited()) {
            Ok(a) => a,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// [`EventSim::activity_jobs`] under a [`ResourceBudget`].
    ///
    /// The step limit counts *events processed* (summed across shards via
    /// a shared counter, flushed every 1024 pops), the queue limit bounds
    /// the pending events of each shard's calendar queue, and the deadline
    /// is polled per cycle. On exhaustion the run stops with a typed
    /// [`BudgetExceeded`] — a successful run is still bit-identical to the
    /// unbudgeted one.
    pub fn try_activity_jobs(
        &self,
        patterns: &PatternSet,
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<TimingActivity, BudgetExceeded> {
        let n = self.nl.len();
        budget.check_deadline()?;
        let steps = AtomicU64::new(0);
        // Work items are the cycles *after* the first; each shard needs at
        // least one.
        let transitions = patterns.len().saturating_sub(1);
        let shards = par::num_threads(jobs).min(transitions.max(1)).max(1);
        let counts = if shards <= 1 {
            par::record_shard_gauges(&self.obs, "event", &[transitions.max(1)]);
            vec![self.shard_counts(None, patterns, &mut EventArena::new(), budget, &steps)?]
        } else {
            // Shards reuse one arena per worker thread (par_map_with), so
            // queue wheels and value buffers warm up once per core.
            // Shard s covers transition range r => patterns[r.start+1 ..
            // r.end+1), seeded by patterns[r.start]; shard 0 also owns the
            // initialization cycle 0.
            // One shard's work: (uncounted seed pattern, counted patterns).
            type Shard<'a> = (Option<&'a [bool]>, &'a [Vec<bool>]);
            let work: Vec<Shard> = par::shard_ranges(transitions, shards)
                .into_iter()
                .enumerate()
                .map(|(s, r)| {
                    if s == 0 {
                        (None, &patterns[0..r.end + 1])
                    } else {
                        (
                            Some(patterns[r.start].as_slice()),
                            &patterns[r.start + 1..r.end + 1],
                        )
                    }
                })
                .collect();
            if self.obs.is_enabled() {
                let sizes: Vec<usize> = work.iter().map(|(_, slice)| slice.len()).collect();
                par::record_shard_gauges(&self.obs, "event", &sizes);
            }
            par::par_map_with(&work, shards, EventArena::new, |_, (prev, slice), arena| {
                self.shard_counts(*prev, slice, arena, budget, &steps)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
        };
        // Fixed-order deterministic reduction.
        let mut total = vec![0u64; n];
        let mut functional = vec![0u64; n];
        let mut ones = vec![0u64; n];
        for c in &counts {
            for i in 0..n {
                total[i] += c.total[i];
                functional[i] += c.functional[i];
                ones[i] += c.ones[i];
            }
        }
        if self.obs.is_enabled() {
            // Event totals are thread-count invariant: each shard replays
            // exactly the event waves the serial run would, so the merged
            // sums match for every `jobs` setting. Only successful runs
            // flush (an exhausted budget abandons partial shard counts).
            self.obs.add("sim.event.cycles", patterns.len() as u64);
            self.obs
                .add("sim.event.processed", counts.iter().map(|c| c.processed).sum());
            self.obs
                .add("sim.event.enqueued", counts.iter().map(|c| c.enqueued).sum());
            self.obs
                .add("sim.event.cancelled", counts.iter().map(|c| c.cancelled).sum());
            self.obs
                .add("sim.event.coalesced", counts.iter().map(|c| c.coalesced).sum());
            let mut occupancy = QueueOccupancy::default();
            for c in &counts {
                occupancy.merge(&c.occupancy);
            }
            occupancy.flush(&self.obs);
        }
        let cycles = patterns.len();
        let denom = cycles.saturating_sub(1).max(1) as f64;
        let make = |toggles: Vec<u64>| ActivityProfile {
            toggles: toggles.iter().map(|&t| t as f64 / denom).collect(),
            probability: ones.iter().map(|&o| o as f64 / cycles.max(1) as f64).collect(),
            cycles,
        };
        Ok(TimingActivity {
            total: make(total),
            functional: make(functional),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;
    use netlist::gen::{array_multiplier, parity_tree, ripple_adder};

    fn glitchy_pair() -> netlist::Netlist {
        // y = a & !a through different depths: a classic static-1 hazard
        // shape, y = (a AND b) where b = NOT(NOT(NOT a)) — when a rises,
        // the AND sees (1, old 1) briefly.
        let mut nl = netlist::Netlist::new("hazard");
        let a = nl.add_input("a");
        let n1 = nl.add_gate(netlist::GateKind::Not, &[a]);
        let n2 = nl.add_gate(netlist::GateKind::Not, &[n1]);
        let n3 = nl.add_gate(netlist::GateKind::Not, &[n2]);
        let y = nl.add_gate(netlist::GateKind::And, &[a, n3]);
        nl.mark_output(y, "y");
        nl
    }

    #[test]
    fn hazard_produces_glitches() {
        let nl = glitchy_pair();
        let patterns: PatternSet = (0..50).map(|k| vec![k % 2 == 1]).collect();
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        // Functionally y is always 0 (a & !a), so functional toggles = 0,
        // but rising a reaches the AND before the inverter chain flips.
        let y = nl.outputs()[0].0;
        assert!(activity.functional.toggles[y.index()] < 1e-9);
        assert!(
            activity.total.toggles[y.index()] > 0.5,
            "glitch rate {}",
            activity.total.toggles[y.index()]
        );
        assert!(activity.glitch_fraction() > 0.0);
    }

    #[test]
    fn event_sim_settles_to_functional_values() {
        let (nl, _) = ripple_adder(6);
        let patterns = Stimulus::uniform(12).patterns(50, 17);
        let sim = EventSim::new(&nl, &DelayModel::Analytic { resolution: 4 });
        // The debug_assert inside activity() verifies settling every cycle.
        let activity = sim.activity(&patterns);
        // Total >= functional on every net.
        for i in 0..nl.len() {
            assert!(
                activity.total.toggles[i] >= activity.functional.toggles[i] - 1e-9,
                "net {i}"
            );
        }
    }

    #[test]
    fn uniform_wavefront_matches_general_queue_bit_exactly() {
        // Same netlist, same patterns: the uniform-delay wavefront drain
        // and the general calendar-queue drain must agree on every
        // activity number *and* every obs counter.
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::uniform(10).patterns(300, 41);
        for delay in [1u32, 3] {
            let model = DelayModel::PerNet(vec![delay; nl.len()]);
            let run = |sim: EventSim| {
                let obs = obs::Obs::enabled();
                let act = sim.with_obs(obs.clone()).activity(&patterns);
                (act, obs.snapshot())
            };
            let (fast, fast_snap) = run(EventSim::new(&nl, &model));
            let (gen, gen_snap) = run(EventSim::new(&nl, &model).force_general_queue());
            assert_eq!(fast.total.toggles, gen.total.toggles, "delay {delay}");
            assert_eq!(fast.functional.toggles, gen.functional.toggles);
            assert_eq!(fast.total.probability, gen.total.probability);
            for k in [
                "sim.event.processed",
                "sim.event.enqueued",
                "sim.event.cancelled",
                "sim.event.coalesced",
            ] {
                assert_eq!(fast_snap.counter(k), gen_snap.counter(k), "{k} at delay {delay}");
            }
        }
    }

    #[test]
    fn dense_word_blocks_match_sparse_event_loop() {
        // With no budget limits the unit-delay run takes the dense 64-lane
        // word path; forcing the general queue runs the same patterns
        // through the calendar queue, and a roomy-but-finite step budget
        // forces the sparse wavefront. Every activity number and every
        // derived event counter must agree exactly (obs is enabled, so the
        // counters come from the real merge path). 150 patterns = two
        // dense blocks plus a sparse remainder, so the block-chaining
        // handoff is covered too.
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::uniform(10).patterns(150, 59);
        let run = |sim: EventSim, budget: &ResourceBudget| {
            let mut arena = EventArena::new();
            let steps = AtomicU64::new(0);
            sim.with_obs(obs::Obs::enabled())
                .shard_counts(None, &patterns, &mut arena, budget, &steps)
                .expect("budget never trips")
        };
        let unlimited = ResourceBudget::unlimited();
        let roomy = ResourceBudget::unlimited().with_max_sim_steps(1 << 40);
        let fast = run(EventSim::new(&nl, &DelayModel::Unit), &unlimited);
        let general = run(EventSim::new(&nl, &DelayModel::Unit).force_general_queue(), &unlimited);
        let wavefront = run(EventSim::new(&nl, &DelayModel::Unit), &roomy);
        for slow in [&general, &wavefront] {
            assert_eq!(fast.total, slow.total);
            assert_eq!(fast.functional, slow.functional);
            assert_eq!(fast.ones, slow.ones);
            assert_eq!(fast.processed, slow.processed);
            assert_eq!(fast.enqueued, slow.enqueued);
            assert_eq!(fast.cancelled, slow.cancelled);
            assert_eq!(fast.coalesced, slow.coalesced);
        }
        // The occupancy histogram profiles the queue, so only the runs
        // that exercised one record it — and those two agree exactly.
        assert_eq!(fast.occupancy, QueueOccupancy::default());
        assert_eq!(general.occupancy, wavefront.occupancy);
        assert!(general.occupancy.total() > 0);
    }

    #[test]
    fn multiplier_glitch_fraction_in_survey_range() {
        let (nl, _) = array_multiplier(6);
        let patterns = Stimulus::uniform(12).patterns(200, 23);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        let fraction = activity.glitch_fraction();
        assert!(
            fraction > 0.10,
            "array multipliers glitch heavily, got {fraction}"
        );
    }

    #[test]
    fn balanced_tree_barely_glitches() {
        let nl = parity_tree(8);
        let patterns = Stimulus::uniform(8).patterns(200, 29);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let activity = sim.activity(&patterns);
        // A perfectly balanced XOR tree with unit delays has equal path
        // lengths everywhere: no glitches at all.
        assert!(
            activity.glitch_fraction() < 1e-9,
            "balanced tree glitched: {}",
            activity.glitch_fraction()
        );
    }

    #[test]
    fn parallel_timing_activity_is_bit_identical() {
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::uniform(10).patterns(150, 41);
        let sim = EventSim::new(&nl, &DelayModel::Analytic { resolution: 4 });
        let serial = sim.activity(&patterns);
        for jobs in [1, 2, 3, 4, 7, 8] {
            let par = sim.activity_jobs(&patterns, jobs);
            assert_eq!(par.total, serial.total, "total, jobs={jobs}");
            assert_eq!(par.functional, serial.functional, "functional, jobs={jobs}");
        }
    }

    #[test]
    fn event_budget_trips_on_glitchy_run() {
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::uniform(10).patterns(400, 41);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        // A multiplier schedules far more than 2000 events over 400 cycles.
        let tight = ResourceBudget::unlimited().with_max_sim_steps(2000);
        let err = sim.try_activity(&patterns, &tight).unwrap_err();
        assert_eq!(err.resource, budget::Resource::SimSteps);
        assert!(err.used >= 1024, "tripped after at least one flush");
        // Parallel runs trip too (shared counter across shards).
        for jobs in [2, 4] {
            assert!(sim.try_activity_jobs(&patterns, jobs, &tight).is_err());
        }
        // A one-event queue cannot hold any fanout wave.
        let starved = ResourceBudget::unlimited().with_max_event_queue(1);
        let err = sim.try_activity(&patterns, &starved).unwrap_err();
        assert_eq!(err.resource, budget::Resource::EventQueue);
    }

    #[test]
    fn budgeted_event_run_matches_unbudgeted() {
        let (nl, _) = ripple_adder(5);
        let patterns = Stimulus::uniform(10).patterns(120, 19);
        let sim = EventSim::new(&nl, &DelayModel::Unit);
        let plain = sim.activity(&patterns);
        let roomy = ResourceBudget::unlimited()
            .with_max_sim_steps(1 << 30)
            .with_max_event_queue(1 << 20)
            .with_deadline_ms(60_000);
        for jobs in [1, 3] {
            let guarded = sim.try_activity_jobs(&patterns, jobs, &roomy).unwrap();
            assert_eq!(guarded.total, plain.total, "jobs={jobs}");
            assert_eq!(guarded.functional, plain.functional, "jobs={jobs}");
        }
    }

    #[test]
    fn event_counters_are_consistent_and_jobs_invariant() {
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::uniform(10).patterns(150, 41);
        // Mixed per-net delays exercise the general calendar queue; unit
        // delays take the dense/wavefront fast paths. Counter invariants
        // and jobs-invariance must hold on both.
        let mixed = DelayModel::PerNet((0..nl.len()).map(|i| 1 + (i as u32 & 1)).collect());
        for model in [DelayModel::Unit, mixed] {
            let run = |jobs: usize| {
                let obs = obs::Obs::enabled();
                let sim = EventSim::new(&nl, &model).with_obs(obs.clone());
                sim.activity_jobs(&patterns, jobs);
                obs.snapshot()
            };
            let serial = run(1);
            let processed = serial.counter("sim.event.processed").unwrap();
            let enqueued = serial.counter("sim.event.enqueued").unwrap();
            let cancelled = serial.counter("sim.event.cancelled").unwrap();
            let coalesced = serial.counter("sim.event.coalesced").unwrap();
            assert!(processed > 0);
            assert_eq!(processed, enqueued, "every enqueued event is popped");
            assert!(cancelled <= processed);
            assert!(coalesced > 0, "a multiplier reconverges heavily");
            assert_eq!(serial.counter("sim.event.cycles"), Some(150));
            // The occupancy histogram covers every popped bucket — but
            // only on runs that exercise a queue; the dense word path
            // (unit delays, unlimited budget) reports counters only.
            let buckets: u64 = ["le1", "le2", "le4", "le8", "le16", "gt16"]
                .iter()
                .map(|b| {
                    serial
                        .gauge(&format!("sim.event.occupancy.{b}"))
                        .unwrap_or(0.0) as u64
                })
                .sum();
            if matches!(model, DelayModel::Unit) {
                assert_eq!(buckets, 0, "dense-eligible runs skip the histogram");
            } else {
                assert!(buckets > 0 && buckets <= processed);
            }
            for jobs in [2, 4] {
                let par = run(jobs);
                assert_eq!(par.counters, serial.counters, "jobs={jobs}");
                assert_eq!(
                    par.gauge("sim.event.occupancy.le1"),
                    serial.gauge("sim.event.occupancy.le1"),
                    "occupancy is jobs-invariant"
                );
            }
        }
    }

    #[test]
    fn unit_vs_analytic_delays() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(100, 31);
        let unit = EventSim::new(&nl, &DelayModel::Unit).activity(&patterns);
        let analytic =
            EventSim::new(&nl, &DelayModel::Analytic { resolution: 8 }).activity(&patterns);
        // Functional activity is delay-independent.
        for i in 0..nl.len() {
            assert!(
                (unit.functional.toggles[i] - analytic.functional.toggles[i]).abs() < 1e-9
            );
        }
    }
}
