//! Cycle-based sequential simulation.
//!
//! Evaluates one clock cycle at a time: combinational settle, then all
//! flip-flops capture simultaneously (respecting load-enables). Counts
//! toggles at register *outputs* and register *inputs* separately — the
//! survey's retiming section (§III.C.2, \[29\]) rests on the observation that
//! flip-flops filter glitches, so their outputs switch less than their
//! inputs.

use budget::{BudgetExceeded, ResourceBudget};
use netlist::{GateKind, NetId, Netlist};

use crate::par;
use crate::profile::ActivityProfile;
use crate::stimulus::PatternSet;
use crate::wide::{self, LANES};

/// Cycles below which the wide path is not worth its fixed costs (the
/// serial cone-forwarding pass plus one full settle per lane boundary).
const WIDE_MIN_CYCLES: usize = 4 * 64 * LANES;

/// Cycle-accurate sequential simulator.
#[derive(Debug)]
pub struct SeqSim<'a> {
    nl: &'a Netlist,
    order: Vec<NetId>,
    /// `order` restricted to the fanin cone of the flip-flop D/enable
    /// nets: the only nets the state-forwarding pass of
    /// [`SeqSim::activity_jobs`] has to evaluate.
    state_order: Vec<NetId>,
    obs: obs::Obs,
    wide: bool,
}

/// Reusable per-worker buffers for sequential simulation.
#[derive(Debug, Default)]
struct SeqArena {
    values: Vec<bool>,
    prev_values: Vec<bool>,
    ins: Vec<bool>,
    d_now: Vec<bool>,
    prev_d: Vec<bool>,
    state: Vec<bool>,
    /// Lane-grouped word buffers for the wide path (`net * LANES + w`).
    w_vals: Vec<u64>,
    w_prev: Vec<u64>,
    w_ins: Vec<u64>,
    w_state: Vec<u64>,
    w_prev_d: Vec<u64>,
}

/// Bit mask over `64 * LANES` lane bits with the first `nbits` set,
/// split into `LANES` words.
fn prefix_mask(nbits: usize) -> [u64; LANES] {
    let mut m = [0u64; LANES];
    for (w, word) in m.iter_mut().enumerate() {
        let lo = w * 64;
        *word = if nbits >= lo + 64 {
            u64::MAX
        } else if nbits > lo {
            (1u64 << (nbits - lo)) - 1
        } else {
            0
        };
    }
    m
}

/// Raw integer counts from one contiguous shard of a sequential run.
struct SeqCounts {
    toggles: Vec<u64>,
    ones: Vec<u64>,
    ff_out: Vec<u64>,
    ff_in: Vec<u64>,
    ff_load: Vec<u64>,
}

/// Activity measured by a sequential run.
#[derive(Debug, Clone)]
pub struct SeqActivity {
    /// Zero-delay per-net activity (registers included).
    pub profile: ActivityProfile,
    /// Per-flip-flop toggles/cycle at the register *output* (Q).
    pub ff_output_toggles: Vec<f64>,
    /// Per-flip-flop toggles/cycle at the register *data input* (D).
    pub ff_input_toggles: Vec<f64>,
    /// Per-flip-flop fraction of cycles the register actually loaded
    /// (1.0 when no enable is attached).
    pub ff_load_fraction: Vec<f64>,
}

impl<'a> SeqSim<'a> {
    /// Bind a simulator to a (possibly sequential) netlist.
    ///
    /// # Panics
    ///
    /// Panics if the combinational part is cyclic.
    pub fn new(nl: &'a Netlist) -> SeqSim<'a> {
        let order = nl.topo_order().expect("combinational part must be acyclic");
        // Mark the cone of nets feeding any flip-flop input (D or enable).
        let mut in_cone = vec![false; nl.len()];
        let mut stack: Vec<NetId> = nl
            .dffs()
            .iter()
            .flat_map(|&d| nl.fanins(d).iter().copied())
            .collect();
        while let Some(net) = stack.pop() {
            if std::mem::replace(&mut in_cone[net.index()], true) {
                continue;
            }
            stack.extend(nl.fanins(net).iter().copied());
        }
        let state_order = order.iter().copied().filter(|n| in_cone[n.index()]).collect();
        SeqSim {
            nl,
            order,
            state_order,
            obs: obs::Obs::disabled(),
            wide: !wide::scalar_env(),
        }
    }

    /// Force (`true`) or re-enable the default for the scalar one-cycle
    /// reference path. The wide path is bit-identical by construction;
    /// this exists so tests and benches can compare the two in-process
    /// without touching `LPOPT_WIDE_SCALAR`.
    pub fn with_scalar_reference(mut self, scalar: bool) -> SeqSim<'a> {
        self.wide = if scalar { false } else { !wide::scalar_env() };
        self
    }

    /// Attach an observability handle. Work counters (`sim.seq.cycles`,
    /// `sim.seq.ff_loads`) flush once per successful activity run; the
    /// per-cycle hot loop never touches the handle. The state-forwarding
    /// pass is deliberately *not* counted — its extra settles depend on
    /// the shard layout, and counters must stay thread-count invariant.
    pub fn with_obs(mut self, obs: obs::Obs) -> SeqSim<'a> {
        self.obs = obs;
        self
    }

    /// Initial register state from the netlist's declared init values.
    pub fn initial_state(&self) -> Vec<bool> {
        self.nl.dffs().iter().map(|&d| self.nl.dff_init(d)).collect()
    }

    /// Evaluate the combinational logic for one cycle.
    ///
    /// `state` holds flip-flop values in [`Netlist::dffs`] order. Returns
    /// all net values (flip-flop nets carry the *current* state).
    pub fn settle(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        let mut values = Vec::new();
        let mut ins = Vec::new();
        self.settle_into(state, inputs, &mut values, &mut ins, &self.order);
        values
    }

    /// Settle into caller-provided buffers, evaluating only `subset`
    /// (either the full topological order or the flip-flop input cone).
    fn settle_into(
        &self,
        state: &[bool],
        inputs: &[bool],
        values: &mut Vec<bool>,
        ins: &mut Vec<bool>,
        subset: &[NetId],
    ) {
        assert_eq!(inputs.len(), self.nl.num_inputs(), "input width");
        assert_eq!(state.len(), self.nl.num_dffs(), "state width");
        values.clear();
        values.resize(self.nl.len(), false);
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for (i, &dff) in self.nl.dffs().iter().enumerate() {
            values[dff.index()] = state[i];
        }
        for &net in subset {
            let kind = self.nl.kind(net);
            if kind.is_source() || kind == GateKind::Dff {
                if let GateKind::Const(v) = kind {
                    values[net.index()] = v;
                }
                continue;
            }
            ins.clear();
            ins.extend(self.nl.fanins(net).iter().map(|x| values[x.index()]));
            values[net.index()] = kind.eval(ins);
        }
    }

    /// Next register state given settled values.
    pub fn next_state(&self, state: &[bool], values: &[bool]) -> Vec<bool> {
        self.nl
            .dffs()
            .iter()
            .enumerate()
            .map(|(i, &dff)| {
                let fanins = self.nl.fanins(dff);
                let d = values[fanins[0].index()];
                if fanins.len() == 2 && !values[fanins[1].index()] {
                    state[i] // hold: enable low
                } else {
                    d
                }
            })
            .collect()
    }

    /// Run one cycle: returns (primary outputs, next state).
    pub fn step(&self, state: &[bool], inputs: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let values = self.settle(state, inputs);
        let outputs = self
            .nl
            .outputs()
            .iter()
            .map(|(net, _)| values[net.index()])
            .collect();
        let next = self.next_state(state, &values);
        (outputs, next)
    }

    /// Run a whole pattern stream from the declared initial state and
    /// return the output trace.
    pub fn run(&self, patterns: &PatternSet) -> Vec<Vec<bool>> {
        let mut state = self.initial_state();
        let mut trace = Vec::with_capacity(patterns.len());
        for p in patterns {
            let (out, next) = self.step(&state, p);
            trace.push(out);
            state = next;
        }
        trace
    }

    /// Count activity over one contiguous shard of the stream.
    ///
    /// `start_state` is the register state before the shard's first
    /// counted cycle. `prev_pattern` is the pattern of the cycle just
    /// before the shard (None for the stream head): the worker re-settles
    /// it, uncounted, to reconstruct the settled values and D inputs the
    /// serial run would compare against.
    fn shard_counts(
        &self,
        start_state: &[bool],
        prev_pattern: Option<&[bool]>,
        patterns: &[Vec<bool>],
        arena: &mut SeqArena,
        budget: &ResourceBudget,
    ) -> Result<SeqCounts, BudgetExceeded> {
        if self.wide && patterns.len() >= WIDE_MIN_CYCLES {
            return self.shard_counts_wide(start_state, prev_pattern, patterns, arena, budget);
        }
        let n = self.nl.len();
        let ndff = self.nl.num_dffs();
        let mut counts = SeqCounts {
            toggles: vec![0u64; n],
            ones: vec![0u64; n],
            ff_out: vec![0u64; ndff],
            ff_in: vec![0u64; ndff],
            ff_load: vec![0u64; ndff],
        };
        arena.state.clear();
        arena.state.extend_from_slice(start_state);
        let mut have_prev = false;
        if let Some(p) = prev_pattern {
            self.settle_into(&arena.state, p, &mut arena.prev_values, &mut arena.ins, &self.order);
            arena.prev_d.clear();
            arena.prev_d.extend(
                self.nl
                    .dffs()
                    .iter()
                    .map(|&dff| arena.prev_values[self.nl.fanins(dff)[0].index()]),
            );
            let next = self.next_state(&arena.state, &arena.prev_values);
            arena.state.clear();
            arena.state.extend_from_slice(&next);
            have_prev = true;
        }
        for (cycle, p) in patterns.iter().enumerate() {
            // One clock read per 64 cycles keeps the deadline guard off the
            // per-cycle path.
            if cycle & 0x3F == 0 {
                budget.check_deadline()?;
            }
            self.settle_into(&arena.state, p, &mut arena.values, &mut arena.ins, &self.order);
            for i in 0..n {
                counts.ones[i] += arena.values[i] as u64;
            }
            if have_prev {
                for i in 0..n {
                    if arena.prev_values[i] != arena.values[i] {
                        counts.toggles[i] += 1;
                    }
                }
            }
            arena.d_now.clear();
            arena.d_now.extend(
                self.nl
                    .dffs()
                    .iter()
                    .map(|&dff| arena.values[self.nl.fanins(dff)[0].index()]),
            );
            if have_prev {
                for i in 0..ndff {
                    if arena.prev_d[i] != arena.d_now[i] {
                        counts.ff_in[i] += 1;
                    }
                }
            }
            let next = self.next_state(&arena.state, &arena.values);
            for i in 0..ndff {
                if next[i] != arena.state[i] {
                    counts.ff_out[i] += 1;
                }
                let fanins = self.nl.fanins(self.nl.dffs()[i]);
                let loaded = fanins.len() < 2 || arena.values[fanins[1].index()];
                counts.ff_load[i] += loaded as u64;
            }
            std::mem::swap(&mut arena.prev_values, &mut arena.values);
            std::mem::swap(&mut arena.prev_d, &mut arena.d_now);
            arena.state.clear();
            arena.state.extend_from_slice(&next);
            have_prev = true;
        }
        Ok(counts)
    }

    /// Wide-word shard measurement: the shard's cycle stream is split into
    /// `64 * LANES` contiguous chunks ("virtual streams"), one per lane
    /// bit, and the whole netlist settles all chunks together with one
    /// [`GateKind::eval_wide`] sweep per step. Register state still feeds
    /// forward serially *within* each chunk (that dependence is inherent),
    /// so a cone-only forwarding pass — the same trick the sharded path
    /// already plays across threads — first computes the state entering
    /// every chunk, and one full settle per chunk boundary seeds the
    /// cross-chunk toggle and D-input comparisons. All counts are exact
    /// integer popcounts over the same per-cycle comparisons the scalar
    /// loop makes, so the result is bit-identical by construction.
    fn shard_counts_wide(
        &self,
        start_state: &[bool],
        prev_pattern: Option<&[bool]>,
        patterns: &[Vec<bool>],
        arena: &mut SeqArena,
        budget: &ResourceBudget,
    ) -> Result<SeqCounts, BudgetExceeded> {
        const LANE_BITS: usize = 64 * LANES;
        let n = self.nl.len();
        let ndff = self.nl.num_dffs();
        let cycles = patterns.len();
        let len = cycles.div_ceil(LANE_BITS);
        let mut counts = SeqCounts {
            toggles: vec![0u64; n],
            ones: vec![0u64; n],
            ff_out: vec![0u64; ndff],
            ff_in: vec![0u64; ndff],
            ff_load: vec![0u64; ndff],
        };
        arena.w_state.clear();
        arena.w_state.resize(ndff * LANES, 0);
        arena.w_prev.clear();
        arena.w_prev.resize(n * LANES, 0);
        arena.w_prev_d.clear();
        arena.w_prev_d.resize(ndff * LANES, 0);
        arena.w_vals.clear();
        arena.w_vals.resize(n * LANES, 0);
        // Lanes whose step-0 cycle has a predecessor to compare against.
        let mut prev_valid = [0u64; LANES];

        // Chunk 0 starts where the scalar path would: re-settle the
        // uncounted previous pattern if the shard has one.
        arena.state.clear();
        arena.state.extend_from_slice(start_state);
        if let Some(p) = prev_pattern {
            self.settle_into(&arena.state, p, &mut arena.prev_values, &mut arena.ins, &self.order);
            prev_valid[0] |= 1;
            for i in 0..n {
                if arena.prev_values[i] {
                    arena.w_prev[i * LANES] |= 1;
                }
            }
            for (r, &dff) in self.nl.dffs().iter().enumerate() {
                if arena.prev_values[self.nl.fanins(dff)[0].index()] {
                    arena.w_prev_d[r * LANES] |= 1;
                }
            }
            let next = self.next_state(&arena.state, &arena.prev_values);
            arena.state.clear();
            arena.state.extend_from_slice(&next);
        }
        for (r, &s) in arena.state.iter().enumerate() {
            if s {
                arena.w_state[r * LANES] |= 1;
            }
        }

        // Serial forwarding pass over the flip-flop cone: register state
        // entering each chunk, plus a full settle at each chunk boundary.
        let mut c = 0usize;
        for lane in 1..LANE_BITS {
            let target = lane * len;
            if target >= cycles {
                break; // this chunk (and all later ones) is empty
            }
            while c < target {
                if c & 0x3F == 0 {
                    budget.check_deadline()?;
                }
                let boundary = c == target - 1;
                let subset = if boundary { &self.order } else { &self.state_order };
                self.settle_into(&arena.state, &patterns[c], &mut arena.values, &mut arena.ins, subset);
                let next = self.next_state(&arena.state, &arena.values);
                if boundary {
                    let (w, b) = (lane / 64, lane % 64);
                    prev_valid[w] |= 1 << b;
                    for i in 0..n {
                        if arena.values[i] {
                            arena.w_prev[i * LANES + w] |= 1 << b;
                        }
                    }
                    for (r, &dff) in self.nl.dffs().iter().enumerate() {
                        if arena.values[self.nl.fanins(dff)[0].index()] {
                            arena.w_prev_d[r * LANES + w] |= 1 << b;
                        }
                    }
                    for (r, &s) in next.iter().enumerate() {
                        if s {
                            arena.w_state[r * LANES + w] |= 1 << b;
                        }
                    }
                }
                arena.state.clear();
                arena.state.extend_from_slice(&next);
                c += 1;
            }
        }

        // Word-parallel main pass: step `t` evaluates cycle
        // `lane * len + t` of every still-live chunk at once. Live lanes
        // always form a prefix (chunk starts are evenly spaced), so tail
        // masking is a prefix mask.
        for t in 0..len {
            budget.check_deadline()?;
            let nvalid = (cycles - 1 - t) / len + 1;
            let mask = prefix_mask(nvalid);
            for (i, &pi) in self.nl.inputs().iter().enumerate() {
                let base = pi.index() * LANES;
                arena.w_vals[base..base + LANES].fill(0);
                for s in 0..nvalid {
                    if patterns[s * len + t][i] {
                        arena.w_vals[base + s / 64] |= 1 << (s % 64);
                    }
                }
            }
            for (r, &dff) in self.nl.dffs().iter().enumerate() {
                arena.w_vals[dff.index() * LANES..][..LANES]
                    .copy_from_slice(&arena.w_state[r * LANES..][..LANES]);
            }
            for &net in &self.order {
                let kind = self.nl.kind(net);
                if kind.is_source() || kind == GateKind::Dff {
                    if let GateKind::Const(v) = kind {
                        arena.w_vals[net.index() * LANES..][..LANES]
                            .fill(if v { u64::MAX } else { 0 });
                    }
                    continue;
                }
                arena.w_ins.clear();
                for f in self.nl.fanins(net) {
                    arena
                        .w_ins
                        .extend_from_slice(&arena.w_vals[f.index() * LANES..][..LANES]);
                }
                let out = kind.eval_wide::<LANES>(&arena.w_ins);
                arena.w_vals[net.index() * LANES..][..LANES].copy_from_slice(&out);
            }
            // Toggles at step 0 only count lanes with a seeded predecessor.
            let tmask: [u64; LANES] = if t == 0 {
                std::array::from_fn(|w| mask[w] & prev_valid[w])
            } else {
                mask
            };
            for i in 0..n {
                let vw = &arena.w_vals[i * LANES..][..LANES];
                let pw = &arena.w_prev[i * LANES..][..LANES];
                for w in 0..LANES {
                    counts.ones[i] += u64::from((vw[w] & mask[w]).count_ones());
                    counts.toggles[i] += u64::from(((vw[w] ^ pw[w]) & tmask[w]).count_ones());
                }
            }
            for (r, &dff) in self.nl.dffs().iter().enumerate() {
                let fanins = self.nl.fanins(dff);
                let d_base = fanins[0].index() * LANES;
                for w in 0..LANES {
                    let d = arena.w_vals[d_base + w];
                    counts.ff_in[r] +=
                        u64::from(((d ^ arena.w_prev_d[r * LANES + w]) & tmask[w]).count_ones());
                    let en = if fanins.len() == 2 {
                        arena.w_vals[fanins[1].index() * LANES + w]
                    } else {
                        u64::MAX
                    };
                    let st = arena.w_state[r * LANES + w];
                    let next = (en & d) | (!en & st);
                    counts.ff_out[r] += u64::from(((next ^ st) & mask[w]).count_ones());
                    counts.ff_load[r] += u64::from((en & mask[w]).count_ones());
                    arena.w_state[r * LANES + w] = next;
                    arena.w_prev_d[r * LANES + w] = d;
                }
            }
            std::mem::swap(&mut arena.w_vals, &mut arena.w_prev);
        }
        Ok(counts)
    }

    /// Measure sequential activity over a pattern stream.
    pub fn activity(&self, patterns: &PatternSet) -> SeqActivity {
        self.activity_jobs(patterns, 1)
    }

    /// [`SeqSim::activity`] under a [`ResourceBudget`] (serial).
    pub fn try_activity(
        &self,
        patterns: &PatternSet,
        budget: &ResourceBudget,
    ) -> Result<SeqActivity, BudgetExceeded> {
        self.try_activity_jobs(patterns, 1, budget)
    }

    /// [`SeqSim::activity`] sharded over up to `jobs` worker threads
    /// (`0` = all cores).
    ///
    /// Register state carries across every cycle, so a cheap serial
    /// forward pass first computes the state at each shard boundary — it
    /// evaluates only the fanin cone of the flip-flop D/enable nets
    /// ([`state_order`](SeqSim::new)), not the whole netlist. Workers then
    /// measure their shards in parallel with full settles, and integer
    /// counts merge in fixed shard order: the result is **bit-identical**
    /// to the serial run for every thread count. (Amdahl caps the speedup
    /// at full-settle-cost / cone-settle-cost; circuits whose combinational
    /// bulk does not feed state parallelize best.)
    pub fn activity_jobs(&self, patterns: &PatternSet, jobs: usize) -> SeqActivity {
        match self.try_activity_jobs(patterns, jobs, &ResourceBudget::unlimited()) {
            Ok(a) => a,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// [`SeqSim::activity_jobs`] under a [`ResourceBudget`].
    ///
    /// Like the zero-delay combinational engine, total work is known up
    /// front (`cycles × nets` evaluations, plus the state-forwarding pass),
    /// so the step limit is enforced by a single precheck; the deadline is
    /// polled once per 64 cycles inside each shard.
    pub fn try_activity_jobs(
        &self,
        patterns: &PatternSet,
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<SeqActivity, BudgetExceeded> {
        let n = patterns.len();
        budget.check_sim_steps(n as u64 * self.nl.len().max(1) as u64)?;
        budget.check_deadline()?;
        let shards = par::num_threads(jobs).min(n.max(1)).max(1);
        let ranges = par::shard_ranges(n, shards);
        let counts = if ranges.len() <= 1 {
            par::record_shard_gauges(&self.obs, "seq", &[n]);
            vec![self.shard_counts(
                &self.initial_state(),
                None,
                patterns,
                &mut SeqArena::default(),
                budget,
            )?]
        } else {
            // Serial state-forwarding pass over the flip-flop cone: record
            // the register state entering cycle `start - 1` of every shard
            // after the first.
            let mut checkpoints: Vec<Vec<bool>> = Vec::with_capacity(ranges.len() - 1);
            let mut state = self.initial_state();
            let mut values = Vec::new();
            let mut ins = Vec::new();
            let last_needed = ranges.last().expect("nonempty").start - 1;
            for (c, p) in patterns.iter().enumerate().take(last_needed + 1) {
                if c & 0x3F == 0 {
                    budget.check_deadline()?;
                }
                if ranges[checkpoints.len() + 1].start - 1 == c {
                    checkpoints.push(state.clone());
                    if checkpoints.len() == ranges.len() - 1 {
                        break;
                    }
                }
                self.settle_into(&state, p, &mut values, &mut ins, &self.state_order);
                state = self.next_state(&state, &values);
            }
            // One shard's work: (register state entering the shard,
            // uncounted previous pattern, counted patterns).
            type Shard<'a> = (Vec<bool>, Option<&'a [bool]>, &'a [Vec<bool>]);
            let work: Vec<Shard> = ranges
                .iter()
                .enumerate()
                .map(|(s, r)| {
                    if s == 0 {
                        (self.initial_state(), None, &patterns[r.start..r.end])
                    } else {
                        (
                            checkpoints[s - 1].clone(),
                            Some(patterns[r.start - 1].as_slice()),
                            &patterns[r.start..r.end],
                        )
                    }
                })
                .collect();
            if self.obs.is_enabled() {
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                par::record_shard_gauges(&self.obs, "seq", &sizes);
            }
            par::par_map_with(&work, shards, SeqArena::default, |_, (start, prev, slice), arena| {
                self.shard_counts(start, *prev, slice, arena, budget)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
        };
        // Fixed-order deterministic reduction.
        let nn = self.nl.len();
        let ndff = self.nl.num_dffs();
        let mut toggles = vec![0u64; nn];
        let mut ones = vec![0u64; nn];
        let mut ff_out = vec![0u64; ndff];
        let mut ff_in = vec![0u64; ndff];
        let mut ff_load = vec![0u64; ndff];
        for c in &counts {
            for i in 0..nn {
                toggles[i] += c.toggles[i];
                ones[i] += c.ones[i];
            }
            for i in 0..ndff {
                ff_out[i] += c.ff_out[i];
                ff_in[i] += c.ff_in[i];
                ff_load[i] += c.ff_load[i];
            }
        }
        if self.obs.is_enabled() {
            self.obs.add("sim.seq.cycles", n as u64);
            self.obs
                .add("sim.seq.ff_loads", ff_load.iter().copied().sum());
        }
        let cycles = n;
        let denom = cycles.saturating_sub(1).max(1) as f64;
        Ok(SeqActivity {
            profile: ActivityProfile {
                toggles: toggles.iter().map(|&t| t as f64 / denom).collect(),
                probability: ones
                    .iter()
                    .map(|&o| o as f64 / cycles.max(1) as f64)
                    .collect(),
                cycles,
            },
            ff_output_toggles: ff_out.iter().map(|&t| t as f64 / cycles.max(1) as f64).collect(),
            ff_input_toggles: ff_in.iter().map(|&t| t as f64 / denom).collect(),
            ff_load_fraction: ff_load
                .iter()
                .map(|&l| l as f64 / cycles.max(1) as f64)
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::gen::{counter, lfsr, pipelined_multiplier, shift_register};

    #[test]
    fn counter_trace() {
        let nl = counter(4);
        let sim = SeqSim::new(&nl);
        let patterns: PatternSet = (0..10).map(|_| vec![true]).collect();
        let trace = sim.run(&patterns);
        for (k, out) in trace.iter().enumerate() {
            let v: usize = out.iter().enumerate().map(|(i, &b)| (b as usize) << i).sum();
            assert_eq!(v, k % 16, "cycle {k}");
        }
    }

    #[test]
    fn lfsr_activity_is_high() {
        let nl = lfsr(8, &[7, 5, 4, 3]);
        let sim = SeqSim::new(&nl);
        let patterns: PatternSet = (0..300).map(|_| vec![]).collect();
        let activity = sim.activity(&patterns);
        // A maximal-ish LFSR keeps its bits near p=0.5 and toggling.
        let avg: f64 = activity.ff_output_toggles.iter().sum::<f64>() / 8.0;
        assert!(avg > 0.3, "avg ff toggle {avg}");
    }

    #[test]
    fn shift_register_ff_toggles_track_input() {
        let nl = shift_register(4);
        let sim = SeqSim::new(&nl);
        // Constant input: after flushing, no toggles at all.
        let patterns: PatternSet = (0..50).map(|_| vec![true]).collect();
        let activity = sim.activity(&patterns);
        for (i, &t) in activity.ff_output_toggles.iter().enumerate() {
            assert!(t < 0.15, "stage {i} toggles {t}");
        }
    }

    #[test]
    fn enabled_dff_holds_and_load_fraction_measured() {
        // Register with enable tied to an input; data toggles every cycle.
        let mut nl = netlist::Netlist::new("gated");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q = nl.add_dff_en(d, en, false);
        nl.mark_output(q, "q");
        let sim = SeqSim::new(&nl);
        // Enable low half the time.
        let patterns: PatternSet = (0..100)
            .map(|k| vec![k % 2 == 0, k % 4 < 2])
            .collect();
        let activity = sim.activity(&patterns);
        assert!((activity.ff_load_fraction[0] - 0.5).abs() < 0.05);
        // Output toggles less often than data input.
        assert!(activity.ff_output_toggles[0] < activity.ff_input_toggles[0]);
    }

    #[test]
    fn parallel_seq_activity_is_bit_identical() {
        use crate::stimulus::Stimulus;
        let nl = pipelined_multiplier(4);
        let sim = SeqSim::new(&nl);
        let patterns = Stimulus::uniform(8).patterns(333, 19);
        let serial = sim.activity(&patterns);
        for jobs in [1, 2, 3, 4, 7, 8] {
            let par = sim.activity_jobs(&patterns, jobs);
            assert_eq!(par.profile, serial.profile, "profile, jobs={jobs}");
            assert_eq!(par.ff_output_toggles, serial.ff_output_toggles, "jobs={jobs}");
            assert_eq!(par.ff_input_toggles, serial.ff_input_toggles, "jobs={jobs}");
            assert_eq!(par.ff_load_fraction, serial.ff_load_fraction, "jobs={jobs}");
        }
    }

    #[test]
    fn wide_path_is_bit_identical_to_scalar() {
        use crate::stimulus::Stimulus;
        // Long enough to clear WIDE_MIN_CYCLES, and deliberately not a
        // multiple of 64*LANES so trailing chunks go partial or empty.
        let cases: [(netlist::Netlist, usize); 3] = [
            (pipelined_multiplier(3), 1500),
            (counter(5), 1100),
            (lfsr(7, &[6, 5]), 4 * 64 * crate::wide::LANES),
        ];
        for (nl, cycles) in &cases {
            let patterns = Stimulus::uniform(nl.num_inputs()).patterns(*cycles, 23);
            let wide = SeqSim::new(nl).activity(&patterns);
            let scalar = SeqSim::new(nl).with_scalar_reference(true).activity(&patterns);
            assert_eq!(wide.profile, scalar.profile, "{} profile", nl.name());
            assert_eq!(wide.ff_output_toggles, scalar.ff_output_toggles, "{}", nl.name());
            assert_eq!(wide.ff_input_toggles, scalar.ff_input_toggles, "{}", nl.name());
            assert_eq!(wide.ff_load_fraction, scalar.ff_load_fraction, "{}", nl.name());
            // Sharded runs mix wide and scalar shards; still identical.
            for jobs in [2, 5] {
                let par = SeqSim::new(nl).activity_jobs(&patterns, jobs);
                assert_eq!(par.profile, scalar.profile, "{} jobs={jobs}", nl.name());
            }
        }
    }

    #[test]
    fn seq_step_budget_prechecks_work() {
        use crate::stimulus::Stimulus;
        let nl = pipelined_multiplier(4);
        let sim = SeqSim::new(&nl);
        let patterns = Stimulus::uniform(8).patterns(50, 3);
        let work = 50 * nl.len() as u64;
        let tight = ResourceBudget::unlimited().with_max_sim_steps(work);
        assert!(sim.try_activity(&patterns, &tight).is_err());
        let roomy = ResourceBudget::unlimited().with_max_sim_steps(work + 1);
        let guarded = sim.try_activity(&patterns, &roomy).unwrap();
        let plain = sim.activity(&patterns);
        assert_eq!(guarded.profile, plain.profile, "budget path is bit-identical");
        for jobs in [2, 4] {
            let p = sim.try_activity_jobs(&patterns, jobs, &roomy).unwrap();
            assert_eq!(p.profile, plain.profile, "jobs={jobs}");
        }
    }

    #[test]
    fn pipelined_multiplier_outputs_eventually_correct() {
        let nl = pipelined_multiplier(4);
        let sim = SeqSim::new(&nl);
        let a = 11u64;
        let b = 13u64;
        let input: Vec<bool> = (0..4)
            .map(|i| a >> i & 1 == 1)
            .chain((0..4).map(|i| b >> i & 1 == 1))
            .collect();
        let patterns: PatternSet = (0..4).map(|_| input.clone()).collect();
        let trace = sim.run(&patterns);
        let last = trace.last().unwrap();
        let v: u64 = last.iter().enumerate().map(|(i, &x)| (x as u64) << i).sum();
        assert_eq!(v, a * b);
    }

    #[test]
    fn ff_outputs_switch_less_than_inputs_on_glitchless_counter() {
        // Even without glitches, the D of high counter bits computes
        // carries that change more often than the stored bit flips.
        let nl = counter(6);
        let sim = SeqSim::new(&nl);
        let patterns: PatternSet = (0..200).map(|_| vec![true]).collect();
        let activity = sim.activity(&patterns);
        let in_total: f64 = activity.ff_input_toggles.iter().sum();
        let out_total: f64 = activity.ff_output_toggles.iter().sum();
        assert!(out_total <= in_total + 1e-9);
    }
}
