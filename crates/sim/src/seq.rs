//! Cycle-based sequential simulation.
//!
//! Evaluates one clock cycle at a time: combinational settle, then all
//! flip-flops capture simultaneously (respecting load-enables). Counts
//! toggles at register *outputs* and register *inputs* separately — the
//! survey's retiming section (§III.C.2, \[29\]) rests on the observation that
//! flip-flops filter glitches, so their outputs switch less than their
//! inputs.

use netlist::{GateKind, NetId, Netlist};

use crate::profile::ActivityProfile;
use crate::stimulus::PatternSet;

/// Cycle-accurate sequential simulator.
#[derive(Debug)]
pub struct SeqSim<'a> {
    nl: &'a Netlist,
    order: Vec<NetId>,
}

/// Activity measured by a sequential run.
#[derive(Debug, Clone)]
pub struct SeqActivity {
    /// Zero-delay per-net activity (registers included).
    pub profile: ActivityProfile,
    /// Per-flip-flop toggles/cycle at the register *output* (Q).
    pub ff_output_toggles: Vec<f64>,
    /// Per-flip-flop toggles/cycle at the register *data input* (D).
    pub ff_input_toggles: Vec<f64>,
    /// Per-flip-flop fraction of cycles the register actually loaded
    /// (1.0 when no enable is attached).
    pub ff_load_fraction: Vec<f64>,
}

impl<'a> SeqSim<'a> {
    /// Bind a simulator to a (possibly sequential) netlist.
    ///
    /// # Panics
    ///
    /// Panics if the combinational part is cyclic.
    pub fn new(nl: &'a Netlist) -> SeqSim<'a> {
        let order = nl.topo_order().expect("combinational part must be acyclic");
        SeqSim { nl, order }
    }

    /// Initial register state from the netlist's declared init values.
    pub fn initial_state(&self) -> Vec<bool> {
        self.nl.dffs().iter().map(|&d| self.nl.dff_init(d)).collect()
    }

    /// Evaluate the combinational logic for one cycle.
    ///
    /// `state` holds flip-flop values in [`Netlist::dffs`] order. Returns
    /// all net values (flip-flop nets carry the *current* state).
    pub fn settle(&self, state: &[bool], inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.nl.num_inputs(), "input width");
        assert_eq!(state.len(), self.nl.num_dffs(), "state width");
        let mut values = vec![false; self.nl.len()];
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for (i, &dff) in self.nl.dffs().iter().enumerate() {
            values[dff.index()] = state[i];
        }
        for &net in &self.order {
            let kind = self.nl.kind(net);
            if kind.is_source() || kind == GateKind::Dff {
                if let GateKind::Const(v) = kind {
                    values[net.index()] = v;
                }
                continue;
            }
            let ins: Vec<bool> = self
                .nl
                .fanins(net)
                .iter()
                .map(|x| values[x.index()])
                .collect();
            values[net.index()] = kind.eval(&ins);
        }
        values
    }

    /// Next register state given settled values.
    pub fn next_state(&self, state: &[bool], values: &[bool]) -> Vec<bool> {
        self.nl
            .dffs()
            .iter()
            .enumerate()
            .map(|(i, &dff)| {
                let fanins = self.nl.fanins(dff);
                let d = values[fanins[0].index()];
                if fanins.len() == 2 && !values[fanins[1].index()] {
                    state[i] // hold: enable low
                } else {
                    d
                }
            })
            .collect()
    }

    /// Run one cycle: returns (primary outputs, next state).
    pub fn step(&self, state: &[bool], inputs: &[bool]) -> (Vec<bool>, Vec<bool>) {
        let values = self.settle(state, inputs);
        let outputs = self
            .nl
            .outputs()
            .iter()
            .map(|(net, _)| values[net.index()])
            .collect();
        let next = self.next_state(state, &values);
        (outputs, next)
    }

    /// Run a whole pattern stream from the declared initial state and
    /// return the output trace.
    pub fn run(&self, patterns: &PatternSet) -> Vec<Vec<bool>> {
        let mut state = self.initial_state();
        let mut trace = Vec::with_capacity(patterns.len());
        for p in patterns {
            let (out, next) = self.step(&state, p);
            trace.push(out);
            state = next;
        }
        trace
    }

    /// Measure sequential activity over a pattern stream.
    pub fn activity(&self, patterns: &PatternSet) -> SeqActivity {
        let n = self.nl.len();
        let ndff = self.nl.num_dffs();
        let mut toggles = vec![0u64; n];
        let mut ones = vec![0u64; n];
        let mut ff_out = vec![0u64; ndff];
        let mut ff_in = vec![0u64; ndff];
        let mut ff_load = vec![0u64; ndff];
        let mut state = self.initial_state();
        let mut prev_values: Option<Vec<bool>> = None;
        let mut prev_d: Option<Vec<bool>> = None;
        for p in patterns {
            let values = self.settle(&state, p);
            for i in 0..n {
                ones[i] += values[i] as u64;
            }
            if let Some(prev) = &prev_values {
                for i in 0..n {
                    if prev[i] != values[i] {
                        toggles[i] += 1;
                    }
                }
            }
            let d_now: Vec<bool> = self
                .nl
                .dffs()
                .iter()
                .map(|&dff| values[self.nl.fanins(dff)[0].index()])
                .collect();
            if let Some(prev) = &prev_d {
                for i in 0..ndff {
                    if prev[i] != d_now[i] {
                        ff_in[i] += 1;
                    }
                }
            }
            let next = self.next_state(&state, &values);
            for i in 0..ndff {
                if next[i] != state[i] {
                    ff_out[i] += 1;
                }
                let fanins = self.nl.fanins(self.nl.dffs()[i]);
                let loaded = fanins.len() < 2 || values[fanins[1].index()];
                ff_load[i] += loaded as u64;
            }
            prev_values = Some(values);
            prev_d = Some(d_now);
            state = next;
        }
        let cycles = patterns.len();
        let denom = cycles.saturating_sub(1).max(1) as f64;
        SeqActivity {
            profile: ActivityProfile {
                toggles: toggles.iter().map(|&t| t as f64 / denom).collect(),
                probability: ones
                    .iter()
                    .map(|&o| o as f64 / cycles.max(1) as f64)
                    .collect(),
                cycles,
            },
            ff_output_toggles: ff_out.iter().map(|&t| t as f64 / cycles.max(1) as f64).collect(),
            ff_input_toggles: ff_in.iter().map(|&t| t as f64 / denom).collect(),
            ff_load_fraction: ff_load
                .iter()
                .map(|&l| l as f64 / cycles.max(1) as f64)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::gen::{counter, lfsr, pipelined_multiplier, shift_register};

    #[test]
    fn counter_trace() {
        let nl = counter(4);
        let sim = SeqSim::new(&nl);
        let patterns: PatternSet = (0..10).map(|_| vec![true]).collect();
        let trace = sim.run(&patterns);
        for (k, out) in trace.iter().enumerate() {
            let v: usize = out.iter().enumerate().map(|(i, &b)| (b as usize) << i).sum();
            assert_eq!(v, k % 16, "cycle {k}");
        }
    }

    #[test]
    fn lfsr_activity_is_high() {
        let nl = lfsr(8, &[7, 5, 4, 3]);
        let sim = SeqSim::new(&nl);
        let patterns: PatternSet = (0..300).map(|_| vec![]).collect();
        let activity = sim.activity(&patterns);
        // A maximal-ish LFSR keeps its bits near p=0.5 and toggling.
        let avg: f64 = activity.ff_output_toggles.iter().sum::<f64>() / 8.0;
        assert!(avg > 0.3, "avg ff toggle {avg}");
    }

    #[test]
    fn shift_register_ff_toggles_track_input() {
        let nl = shift_register(4);
        let sim = SeqSim::new(&nl);
        // Constant input: after flushing, no toggles at all.
        let patterns: PatternSet = (0..50).map(|_| vec![true]).collect();
        let activity = sim.activity(&patterns);
        for (i, &t) in activity.ff_output_toggles.iter().enumerate() {
            assert!(t < 0.15, "stage {i} toggles {t}");
        }
    }

    #[test]
    fn enabled_dff_holds_and_load_fraction_measured() {
        // Register with enable tied to an input; data toggles every cycle.
        let mut nl = netlist::Netlist::new("gated");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q = nl.add_dff_en(d, en, false);
        nl.mark_output(q, "q");
        let sim = SeqSim::new(&nl);
        // Enable low half the time.
        let patterns: PatternSet = (0..100)
            .map(|k| vec![k % 2 == 0, k % 4 < 2])
            .collect();
        let activity = sim.activity(&patterns);
        assert!((activity.ff_load_fraction[0] - 0.5).abs() < 0.05);
        // Output toggles less often than data input.
        assert!(activity.ff_output_toggles[0] < activity.ff_input_toggles[0]);
    }

    #[test]
    fn pipelined_multiplier_outputs_eventually_correct() {
        let nl = pipelined_multiplier(4);
        let sim = SeqSim::new(&nl);
        let a = 11u64;
        let b = 13u64;
        let input: Vec<bool> = (0..4)
            .map(|i| a >> i & 1 == 1)
            .chain((0..4).map(|i| b >> i & 1 == 1))
            .collect();
        let patterns: PatternSet = (0..4).map(|_| input.clone()).collect();
        let trace = sim.run(&patterns);
        let last = trace.last().unwrap();
        let v: u64 = last.iter().enumerate().map(|(i, &x)| (x as u64) << i).sum();
        assert_eq!(v, a * b);
    }

    #[test]
    fn ff_outputs_switch_less_than_inputs_on_glitchless_counter() {
        // Even without glitches, the D of high counter bits computes
        // carries that change more often than the stored bit flips.
        let nl = counter(6);
        let sim = SeqSim::new(&nl);
        let patterns: PatternSet = (0..200).map(|_| vec![true]).collect();
        let activity = sim.activity(&patterns);
        let in_total: f64 = activity.ff_input_toggles.iter().sum();
        let out_total: f64 = activity.ff_output_toggles.iter().sum();
        assert!(out_total <= in_total + 1e-9);
    }
}
