//! Bit-parallel zero-delay functional simulation.
//!
//! Packs 64 consecutive input patterns into one machine word per net and
//! evaluates the whole netlist in topological order. Transition counts are
//! *functional* (settled value changes between cycles) — the lower bound a
//! perfectly path-balanced circuit would achieve.

use budget::{BudgetExceeded, ResourceBudget};
use netlist::{GateKind, NetId, Netlist};

use crate::par;
use crate::profile::ActivityProfile;
use crate::stimulus::{PackedPatterns, PatternSet};
use crate::wide::{self, LANES};

/// Reusable scratch buffers for [`CombSim`] hot loops.
///
/// One arena per worker thread: the estimation loops evaluate thousands of
/// 64-pattern blocks, and reusing these buffers removes every per-block
/// allocation (`values`, fanin scratch, packed input words).
#[derive(Debug, Default)]
pub struct CombArena {
    values: Vec<u64>,
    scratch: Vec<u64>,
    words: Vec<u64>,
}

impl CombArena {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> CombArena {
        CombArena::default()
    }
}

/// Raw integer counts from one contiguous shard of a pattern stream.
/// Merged in fixed shard order by [`CombSim::activity_jobs`].
struct ShardCounts {
    toggles: Vec<u64>,
    ones: Vec<u64>,
    /// Settled values of the shard's first cycle (for the cross-shard
    /// boundary toggle with the previous shard's `last`).
    first: Vec<bool>,
    last: Vec<bool>,
    cycles: usize,
}

/// Zero-delay bit-parallel simulator bound to one netlist.
#[derive(Debug)]
pub struct CombSim<'a> {
    nl: &'a Netlist,
    order: Vec<NetId>,
    obs: obs::Obs,
    /// Use the wide ([`LANES`]-block) evaluation path for full groups.
    /// `LPOPT_WIDE_SCALAR=1` (or [`CombSim::with_scalar_reference`]) forces
    /// the scalar `u64` reference path instead; both produce bit-identical
    /// counts.
    wide: bool,
}

impl<'a> CombSim<'a> {
    /// Bind a simulator to a combinational netlist.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is sequential or cyclic (use
    /// [`crate::seq::SeqSim`] for sequential circuits).
    pub fn new(nl: &'a Netlist) -> CombSim<'a> {
        assert!(nl.is_combinational(), "CombSim requires combinational netlist");
        let order = nl.topo_order().expect("netlist must be acyclic");
        CombSim {
            nl,
            order,
            obs: obs::Obs::disabled(),
            wide: !wide::scalar_env(),
        }
    }

    /// Force (or lift) the scalar one-word-at-a-time reference path. The
    /// wide path is the default; benchmarks use this to measure the wide
    /// speedup in-process, tests to pin bit-identity.
    pub fn with_scalar_reference(mut self, scalar: bool) -> CombSim<'a> {
        self.wide = !scalar;
        self
    }

    /// Attach an observability handle. Work counters (`sim.comb.cycles`,
    /// `sim.comb.gate_evals`) flush once per successful activity run; the
    /// per-block hot loop never touches the handle.
    pub fn with_obs(mut self, obs: obs::Obs) -> CombSim<'a> {
        self.obs = obs;
        self
    }

    /// Evaluate a block of up to 64 patterns; `words[i]` holds the packed
    /// values of input `i` (bit `k` = value in pattern `k`). Returns packed
    /// values per net.
    pub fn eval_words(&self, words: &[u64]) -> Vec<u64> {
        let mut values = Vec::new();
        let mut scratch = Vec::new();
        self.eval_words_into(words, &mut values, &mut scratch);
        values
    }

    /// Like [`CombSim::eval_words`], but into caller-provided buffers so
    /// tight estimation loops evaluate block after block with zero
    /// allocations. `values` is resized to `nl.len()`; `scratch` is fanin
    /// scratch space.
    pub fn eval_words_into(&self, words: &[u64], values: &mut Vec<u64>, scratch: &mut Vec<u64>) {
        assert_eq!(words.len(), self.nl.num_inputs(), "input word count");
        values.clear();
        values.resize(self.nl.len(), 0);
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = words[i];
        }
        for &net in &self.order {
            let kind = self.nl.kind(net);
            if kind == GateKind::Input {
                continue;
            }
            scratch.clear();
            scratch.extend(self.nl.fanins(net).iter().map(|x| values[x.index()]));
            values[net.index()] = kind.eval_word(scratch);
        }
    }

    /// Evaluate [`LANES`] 64-pattern blocks at once (one wide word — 256
    /// patterns — per pass over the netlist), the wide sibling of
    /// [`CombSim::eval_words_into`].
    ///
    /// `inputs` is one wide group straight out of
    /// [`PackedPatterns::wide_block`]: `width * LANES` words with input
    /// `i`'s lanes contiguous at `[i * LANES ..]`. `values` comes back
    /// lane-grouped the same way (`values[LANES*net + lane]` is block
    /// `lane`'s word for `net`), so each gate's lanes sit in one cache
    /// line and the per-gate fold vectorizes to 256-bit ops with **no
    /// per-block gather**. Lane `lane` is bit-identical to
    /// `eval_words_into` over that lane's block.
    pub fn eval_wide_into(&self, inputs: &[u64], values: &mut Vec<u64>, scratch: &mut Vec<u64>) {
        assert_eq!(
            inputs.len(),
            self.nl.num_inputs() * LANES,
            "input word count"
        );
        values.clear();
        values.resize(LANES * self.nl.len(), 0);
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            let base = LANES * pi.index();
            values[base..base + LANES].copy_from_slice(&inputs[i * LANES..(i + 1) * LANES]);
        }
        // The common arities (1..=3 cover every gate the generators emit)
        // gather fanin lanes into fixed-size stack buffers, so the slice
        // length reaching `eval_wide` is a compile-time constant and the
        // whole gather + fold stays unrolled in vector registers. The heap
        // scratch remains as the any-arity spill path.
        #[inline(always)]
        fn gather<const F: usize>(values: &[u64], fanins: &[NetId]) -> [u64; F] {
            let mut buf = [0u64; F];
            for (f, &x) in fanins.iter().enumerate() {
                let base = LANES * x.index();
                buf[f * LANES..(f + 1) * LANES]
                    .copy_from_slice(&values[base..base + LANES]);
            }
            buf
        }
        for &net in &self.order {
            let kind = self.nl.kind(net);
            if kind == GateKind::Input {
                continue;
            }
            let fanins = self.nl.fanins(net);
            let out = match fanins.len() {
                1 => kind.eval_wide::<LANES>(&gather::<LANES>(values, fanins)),
                2 => kind.eval_wide::<LANES>(&gather::<{ 2 * LANES }>(values, fanins)),
                3 => kind.eval_wide::<LANES>(&gather::<{ 3 * LANES }>(values, fanins)),
                _ => {
                    scratch.clear();
                    for &x in fanins {
                        let base = LANES * x.index();
                        scratch.extend_from_slice(&values[base..base + LANES]);
                    }
                    kind.eval_wide::<LANES>(scratch)
                }
            };
            let base = LANES * net.index();
            values[base..base + LANES].copy_from_slice(&out);
        }
    }

    /// Evaluate a full pattern set; returns the output values per cycle.
    pub fn eval_outputs(&self, patterns: &PatternSet) -> Vec<Vec<bool>> {
        let mut arena = CombArena::new();
        let mut out = Vec::with_capacity(patterns.len());
        for chunk in patterns.chunks(64) {
            pack_into(chunk, self.nl.num_inputs(), &mut arena.words);
            self.eval_words_into(&arena.words, &mut arena.values, &mut arena.scratch);
            for (k, _) in chunk.iter().enumerate() {
                out.push(
                    self.nl
                        .outputs()
                        .iter()
                        .map(|(net, _)| arena.values[net.index()] >> k & 1 == 1)
                        .collect(),
                );
            }
        }
        out
    }

    /// Count toggles/ones over one contiguous run of pre-packed 64-cycle
    /// blocks, reusing the arena's buffers. Deadline checks are amortized
    /// to one clock read per ~16 blocks (~1024 cycles) so the budgeted
    /// path adds nothing measurable to the hot loop.
    ///
    /// Aligned runs of [`LANES`] full blocks go through the wide path
    /// ([`CombSim::eval_wide_into`], one netlist walk per 256 patterns,
    /// zero input gather); the remainder — any partial tail block, or
    /// everything under the scalar-reference flag — falls back to the
    /// single-block path. Counting happens per lane with the same bit
    /// tricks either way, so the totals are bit-identical.
    ///
    /// Shard boundaries are aligned to wide groups by the caller, so
    /// `blocks.start % LANES == 0` whenever the wide path is live.
    fn shard_counts(
        &self,
        packed: &PackedPatterns,
        blocks: std::ops::Range<usize>,
        arena: &mut CombArena,
        budget: &ResourceBudget,
    ) -> Result<ShardCounts, BudgetExceeded> {
        let n = self.nl.len();
        let mut cycles = 0usize;
        let mut counts = ShardCounts {
            toggles: vec![0u64; n],
            ones: vec![0u64; n],
            first: vec![false; n],
            last: vec![false; n],
            cycles: 0,
        };
        let mut have_prev = false;
        let mut block = blocks.start;
        let mut step = 0usize;
        while block < blocks.end {
            if step & 0xF == 0 {
                budget.check_deadline()?;
            }
            // Only the stream's final block can be partial, so checking
            // the group's last block covers the whole group.
            if self.wide
                && block.is_multiple_of(LANES)
                && block + LANES <= blocks.end
                && packed.block_cycles(block + LANES - 1) == 64
            {
                self.eval_wide_into(
                    packed.wide_block(block / LANES),
                    &mut arena.values,
                    &mut arena.scratch,
                );
                accumulate_group(&mut counts, &arena.values, have_prev);
                have_prev = true;
                cycles += 64 * LANES;
                block += LANES;
                step += LANES;
            } else {
                arena.words.clear();
                arena.words.resize(packed.width(), 0);
                packed.block_into(block, &mut arena.words);
                self.eval_words_into(&arena.words, &mut arena.values, &mut arena.scratch);
                let w = packed.block_cycles(block);
                cycles += w;
                accumulate_lane(&mut counts, &arena.values, 1, 0, w, have_prev);
                have_prev = true;
                block += 1;
                step += 1;
            }
        }
        counts.cycles = cycles;
        Ok(counts)
    }

    /// Measure the zero-delay activity profile over a pattern stream.
    ///
    /// Toggles are counted between consecutive cycles, including across
    /// 64-pattern block boundaries.
    pub fn activity(&self, patterns: &PatternSet) -> ActivityProfile {
        self.activity_jobs(patterns, 1)
    }

    /// [`CombSim::activity`] under a [`ResourceBudget`] (serial).
    pub fn try_activity(
        &self,
        patterns: &PatternSet,
        budget: &ResourceBudget,
    ) -> Result<ActivityProfile, BudgetExceeded> {
        self.try_activity_jobs(patterns, 1, budget)
    }

    /// [`CombSim::activity`] sharded over up to `jobs` worker threads
    /// (`0` = all cores).
    ///
    /// The stream splits into contiguous runs of 64-pattern blocks, one
    /// worker arena per shard; per-shard integer counts merge in fixed
    /// shard order (adding the one boundary toggle between consecutive
    /// shards), so the result is **bit-identical** to the serial profile
    /// for every thread count.
    pub fn activity_jobs(&self, patterns: &PatternSet, jobs: usize) -> ActivityProfile {
        match self.try_activity_jobs(patterns, jobs, &ResourceBudget::unlimited()) {
            Ok(p) => p,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// [`CombSim::activity_jobs`] under a [`ResourceBudget`].
    ///
    /// Simulation work is `cycles × nets` net evaluations, checked against
    /// the step limit **up front** (the cost of a zero-delay run is known
    /// exactly before it starts), so an over-budget request fails in O(1)
    /// instead of wasting the whole allowance first. The deadline is
    /// polled once per 1024 cycles inside each shard.
    pub fn try_activity_jobs(
        &self,
        patterns: &PatternSet,
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<ActivityProfile, BudgetExceeded> {
        self.try_activity_packed_jobs(&PackedPatterns::pack(patterns), jobs, budget)
    }

    /// [`CombSim::activity`] over a pre-packed stream (serial).
    ///
    /// Packing is O(cycles × inputs); optimization loops that re-measure
    /// the same stimulus per candidate should pack once with
    /// [`PackedPatterns::pack`] and call this (or the incremental engine in
    /// [`crate::incr`]) instead of re-packing through the `PatternSet`
    /// entry points.
    pub fn activity_packed(&self, packed: &PackedPatterns) -> ActivityProfile {
        match self.try_activity_packed_jobs(packed, 1, &ResourceBudget::unlimited()) {
            Ok(p) => p,
            Err(e) => unreachable!("unlimited budget reported exhaustion: {e}"),
        }
    }

    /// [`CombSim::try_activity_jobs`] over a pre-packed stream. All
    /// `PatternSet` entry points funnel here after packing once, so the
    /// counts (and the obs counters) are bit-identical between the packed
    /// and unpacked APIs.
    pub fn try_activity_packed_jobs(
        &self,
        packed: &PackedPatterns,
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<ActivityProfile, BudgetExceeded> {
        let n = self.nl.len();
        budget.check_sim_steps(packed.cycles() as u64 * n.max(1) as u64)?;
        budget.check_deadline()?;
        let blocks = packed.num_blocks();
        // Shard over wide groups so every shard's block range starts
        // group-aligned and the wide path covers all its full groups.
        let groups = packed.num_wide_blocks();
        let shards = par::num_threads(jobs).min(groups).max(1);
        let counts = if shards <= 1 {
            par::record_shard_gauges(&self.obs, "comb", &[packed.cycles()]);
            vec![self.shard_counts(packed, 0..blocks, &mut CombArena::new(), budget)?]
        } else {
            let ranges: Vec<std::ops::Range<usize>> = par::shard_ranges(groups, shards)
                .into_iter()
                .map(|r| (r.start * LANES)..(r.end * LANES).min(blocks))
                .collect();
            if self.obs.is_enabled() {
                let sizes: Vec<usize> = ranges
                    .iter()
                    .map(|r| (r.end * 64).min(packed.cycles()) - r.start * 64)
                    .collect();
                par::record_shard_gauges(&self.obs, "comb", &sizes);
            }
            par::par_map_with(&ranges, shards, CombArena::new, |_, range, arena| {
                self.shard_counts(packed, range.clone(), arena, budget)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
        };
        // Fixed-order deterministic reduction.
        let mut toggles = vec![0u64; n];
        let mut ones = vec![0u64; n];
        let mut cycles = 0usize;
        for (s, c) in counts.iter().enumerate() {
            cycles += c.cycles;
            for i in 0..n {
                toggles[i] += c.toggles[i];
                ones[i] += c.ones[i];
                // Boundary toggle between shard s-1's last and s's first cycle.
                if s > 0 && counts[s - 1].last[i] != c.first[i] {
                    toggles[i] += 1;
                }
            }
        }
        if self.obs.is_enabled() {
            // Counted analytically at the merge point (never per block):
            // every block evaluates each non-source net exactly once, and
            // both totals depend only on the stream, so they are identical
            // for every `jobs` setting.
            self.obs.add("sim.comb.cycles", cycles as u64);
            let evaluated = self.nl.len() - self.nl.num_inputs();
            self.obs
                .add("sim.comb.gate_evals", blocks as u64 * evaluated as u64);
        }
        let denom = (cycles.saturating_sub(1)).max(1) as f64;
        Ok(ActivityProfile {
            toggles: toggles.iter().map(|&t| t as f64 / denom).collect(),
            probability: ones.iter().map(|&o| o as f64 / cycles.max(1) as f64).collect(),
            cycles,
        })
    }

    /// Check functional equivalence with another netlist over a pattern set
    /// (same input count and output count required). Returns the first
    /// mismatching cycle, if any.
    pub fn equivalent_on(&self, other: &Netlist, patterns: &PatternSet) -> Option<usize> {
        let other_sim = CombSim::new(other);
        let a = self.eval_outputs(patterns);
        let b = other_sim.eval_outputs(patterns);
        a.iter().zip(b.iter()).position(|(x, y)| x != y)
    }
}

/// Fold one evaluated block (lane `lane` at the given `stride` within
/// `values`) of `w` valid cycles into the shard counts. This is the single
/// source of truth for the toggle/ones bit tricks, shared by the 1-block
/// and 4-block paths so they stay bit-identical.
#[inline(always)]
fn accumulate_lane(
    counts: &mut ShardCounts,
    values: &[u64],
    stride: usize,
    lane: usize,
    w: usize,
    have_prev: bool,
) {
    let n = counts.toggles.len();
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    for i in 0..n {
        let v = values[i * stride + lane] & mask;
        counts.ones[i] += v.count_ones() as u64;
        // Toggles within the block: v XOR (v >> 1), w-1 positions.
        let within = (v ^ (v >> 1)) & if w >= 1 { (1u64 << (w - 1)) - 1 } else { 0 };
        counts.toggles[i] += within.count_ones() as u64;
        // Toggle across the 64-cycle block boundary.
        if have_prev && counts.last[i] != (v & 1 == 1) {
            counts.toggles[i] += 1;
        }
        if !have_prev {
            counts.first[i] = v & 1 == 1;
        }
        counts.last[i] = v >> (w - 1) & 1 == 1;
    }
}

/// Fold one full wide group (all [`LANES`] blocks at 64 valid cycles,
/// lane-grouped as produced by [`CombSim::eval_wide_into`]) into the shard
/// counts in a single pass over `values`. The per-lane bit tricks are the
/// same as [`accumulate_lane`]'s, and the cross-lane boundary toggles are
/// the same comparisons `accumulate_lane` makes through `counts.last`, so
/// the integer sums — and therefore the profile — are bit-identical to
/// folding the lanes one at a time. One pass instead of [`LANES`] strided
/// ones matters: accumulation is roughly half the packed sweep, and this
/// keeps each net's lanes in one cache line with the popcounts pipelined.
#[inline(always)]
fn accumulate_group(counts: &mut ShardCounts, values: &[u64], have_prev: bool) {
    let n = counts.toggles.len();
    const WITHIN: u64 = (1u64 << 63) - 1;
    for i in 0..n {
        let v: &[u64] = &values[i * LANES..(i + 1) * LANES];
        let mut ones = 0u64;
        let mut toggles = 0u64;
        for l in 0..LANES {
            ones += v[l].count_ones() as u64;
            toggles += ((v[l] ^ (v[l] >> 1)) & WITHIN).count_ones() as u64;
        }
        for l in 1..LANES {
            toggles += (v[l - 1] >> 63) ^ (v[l] & 1);
        }
        if have_prev && counts.last[i] != (v[0] & 1 == 1) {
            toggles += 1;
        }
        if !have_prev {
            counts.first[i] = v[0] & 1 == 1;
        }
        counts.last[i] = v[LANES - 1] >> 63 & 1 == 1;
        counts.ones[i] += ones;
        counts.toggles[i] += toggles;
    }
}

/// Pack per-cycle patterns into one word per input, reusing `words`.
fn pack_into(chunk: &[Vec<bool>], width: usize, words: &mut Vec<u64>) {
    words.clear();
    words.resize(width, 0);
    for (k, pattern) in chunk.iter().enumerate() {
        assert_eq!(pattern.len(), width, "pattern width");
        for (i, &b) in pattern.iter().enumerate() {
            if b {
                words[i] |= 1 << k;
            }
        }
    }
}

/// Exhaustively check two small combinational netlists for equivalence.
///
/// # Panics
///
/// Panics if the netlists have more than 20 inputs or differing interfaces.
pub fn equivalent_exhaustive(a: &Netlist, b: &Netlist) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input count differs");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output count differs");
    let n = a.num_inputs();
    assert!(n <= 20, "too many inputs for exhaustive check");
    let patterns: PatternSet = (0..1usize << n)
        .map(|bits| (0..n).map(|i| bits >> i & 1 == 1).collect())
        .collect();
    CombSim::new(a).equivalent_on(b, &patterns).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::Stimulus;
    use netlist::gen::{array_multiplier, parity_tree, ripple_adder};

    #[test]
    fn words_match_scalar_eval() {
        let (nl, _) = ripple_adder(4);
        let sim = CombSim::new(&nl);
        let patterns = Stimulus::uniform(8).patterns(64, 5);
        let outs = sim.eval_outputs(&patterns);
        for (k, pattern) in patterns.iter().enumerate() {
            assert_eq!(outs[k], nl.eval_comb(pattern), "cycle {k}");
        }
    }

    #[test]
    fn partial_block_handled() {
        let nl = parity_tree(6);
        let sim = CombSim::new(&nl);
        let patterns = Stimulus::uniform(6).patterns(37, 9); // not a multiple of 64
        let outs = sim.eval_outputs(&patterns);
        assert_eq!(outs.len(), 37);
        for (k, pattern) in patterns.iter().enumerate() {
            assert_eq!(outs[k], nl.eval_comb(pattern));
        }
    }

    #[test]
    fn activity_counts_known_stream() {
        // Single inverter; input toggles every cycle.
        let mut nl = netlist::Netlist::new("inv");
        let a = nl.add_input("a");
        let y = nl.add_gate(netlist::GateKind::Not, &[a]);
        nl.mark_output(y, "y");
        let patterns: PatternSet = (0..100).map(|k| vec![k % 2 == 1]).collect();
        let profile = CombSim::new(&nl).activity(&patterns);
        assert!((profile.toggles[a.index()] - 1.0).abs() < 1e-9);
        assert!((profile.toggles[y.index()] - 1.0).abs() < 1e-9);
        assert!((profile.probability[a.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn activity_across_block_boundaries() {
        // 130 cycles of alternating input: 129 toggles over 129 steps.
        let mut nl = netlist::Netlist::new("buf");
        let a = nl.add_input("a");
        let y = nl.add_gate(netlist::GateKind::Buf, &[a]);
        nl.mark_output(y, "y");
        let patterns: PatternSet = (0..130).map(|k| vec![k % 2 == 0]).collect();
        let profile = CombSim::new(&nl).activity(&patterns);
        assert!((profile.toggles[y.index()] - 1.0).abs() < 1e-9);
        assert_eq!(profile.cycles, 130);
    }

    #[test]
    fn uniform_inputs_give_half_probability() {
        let (nl, _) = array_multiplier(4);
        let patterns = Stimulus::uniform(8).patterns(2000, 11);
        let profile = CombSim::new(&nl).activity(&patterns);
        for &pi in nl.inputs() {
            assert!((profile.probability[pi.index()] - 0.5).abs() < 0.05);
            assert!((profile.toggles[pi.index()] - 0.5).abs() < 0.05);
        }
    }

    #[test]
    fn exhaustive_equivalence_detects_difference() {
        let (a, _) = ripple_adder(3);
        let (b, _) = ripple_adder(3);
        assert!(equivalent_exhaustive(&a, &b));
        // Build a same-interface circuit that is clearly not an adder.
        let mut c = netlist::Netlist::new("broken");
        let inputs: Vec<_> = (0..6).map(|i| c.add_input(format!("x{i}"))).collect();
        for w in 0..a.num_outputs() {
            let g = c.add_gate(netlist::GateKind::Xor, &[inputs[w % 6], inputs[(w + 1) % 6]]);
            c.mark_output(g, format!("s{w}"));
        }
        assert_eq!(c.num_outputs(), a.num_outputs());
        assert!(!equivalent_exhaustive(&a, &c));
    }

    #[test]
    fn parallel_activity_is_bit_identical() {
        let (nl, _) = array_multiplier(5);
        let sim = CombSim::new(&nl);
        // 1000 cycles: 16 blocks, exercising uneven shard splits and the
        // partial final block.
        let patterns = Stimulus::uniform(10).patterns(1000, 13);
        let serial = sim.activity(&patterns);
        for jobs in [1, 2, 3, 4, 7, 8] {
            let par = sim.activity_jobs(&patterns, jobs);
            assert_eq!(par, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn eval_words_into_matches_eval_words() {
        let (nl, _) = ripple_adder(5);
        let sim = CombSim::new(&nl);
        let patterns = Stimulus::uniform(10).patterns(64, 3);
        let mut words = vec![0u64; 10];
        for (k, p) in patterns.iter().enumerate() {
            for (i, &b) in p.iter().enumerate() {
                if b {
                    words[i] |= 1 << k;
                }
            }
        }
        let fresh = sim.eval_words(&words);
        let mut values = vec![0xDEAD_BEEFu64; 3]; // stale garbage must be cleared
        let mut scratch = vec![7u64; 9];
        sim.eval_words_into(&words, &mut values, &mut scratch);
        assert_eq!(values, fresh);
    }

    #[test]
    fn eval_wide_matches_single_block_lanes() {
        let (nl, _) = array_multiplier(5);
        let sim = CombSim::new(&nl);
        let packed = Stimulus::uniform(10).packed(64 * LANES, 21);
        let mut wide = Vec::new();
        let mut scratch = Vec::new();
        sim.eval_wide_into(packed.wide_block(0), &mut wide, &mut scratch);
        let mut narrow = Vec::new();
        let mut words = vec![0u64; 10];
        for lane in 0..LANES {
            packed.block_into(lane, &mut words);
            sim.eval_words_into(&words, &mut narrow, &mut scratch);
            for i in 0..nl.len() {
                assert_eq!(wide[LANES * i + lane], narrow[i], "net {i} lane {lane}");
            }
        }
    }

    #[test]
    fn scalar_reference_is_bit_identical() {
        let (nl, _) = array_multiplier(5);
        let patterns = Stimulus::correlated(vec![0.4; 10]).patterns(777, 19);
        let fast = CombSim::new(&nl).activity(&patterns);
        let scalar = CombSim::new(&nl)
            .with_scalar_reference(true)
            .activity(&patterns);
        assert_eq!(fast, scalar);
    }

    #[test]
    fn quad_and_scalar_block_paths_agree() {
        // 300 cycles: one quad group (256) plus scalar blocks including a
        // partial tail — the boundary between the paths must not lose or
        // double-count toggles.
        let (nl, _) = ripple_adder(6);
        let sim = CombSim::new(&nl);
        let patterns = Stimulus::correlated(vec![0.3; 12]).patterns(300, 77);
        let fast = sim.activity(&patterns);
        // Reference: per-cycle scalar evaluation.
        let mut toggles = vec![0u64; nl.len()];
        let mut ones = vec![0u64; nl.len()];
        let mut arena = CombArena::new();
        let mut prev: Vec<u64> = Vec::new();
        for (k, p) in patterns.iter().enumerate() {
            pack_into(std::slice::from_ref(p), nl.num_inputs(), &mut arena.words);
            sim.eval_words_into(&arena.words, &mut arena.values, &mut arena.scratch);
            for i in 0..nl.len() {
                let v = arena.values[i] & 1;
                ones[i] += v;
                if k > 0 && prev[i] != v {
                    toggles[i] += 1;
                }
            }
            prev = arena.values.iter().map(|&v| v & 1).collect();
        }
        let denom = (patterns.len() - 1) as f64;
        for i in 0..nl.len() {
            assert!((fast.toggles[i] - toggles[i] as f64 / denom).abs() < 1e-12, "net {i}");
            assert!(
                (fast.probability[i] - ones[i] as f64 / patterns.len() as f64).abs() < 1e-12,
                "net {i}"
            );
        }
    }

    #[test]
    fn step_budget_prechecks_work() {
        let (nl, _) = ripple_adder(4);
        let sim = CombSim::new(&nl);
        let patterns = Stimulus::uniform(8).patterns(100, 7);
        let work = 100 * nl.len() as u64;
        let tight = ResourceBudget::unlimited().with_max_sim_steps(work);
        let err = sim.try_activity(&patterns, &tight).unwrap_err();
        assert_eq!(err.resource, budget::Resource::SimSteps);
        assert_eq!(err.used, work);
        let roomy = ResourceBudget::unlimited().with_max_sim_steps(work + 1);
        let ok = sim.try_activity(&patterns, &roomy).unwrap();
        assert_eq!(ok, sim.activity(&patterns), "budget path is bit-identical");
        // Parallel budgeted path matches too.
        for jobs in [2, 4] {
            assert_eq!(sim.try_activity_jobs(&patterns, jobs, &roomy).unwrap(), ok);
        }
    }

    #[test]
    fn biased_stream_lowers_activity() {
        let (nl, _) = array_multiplier(4);
        let uniform = Stimulus::uniform(8).patterns(2000, 3);
        let quiet = Stimulus::correlated(vec![0.05; 8]).patterns(2000, 3);
        let sim = CombSim::new(&nl);
        let a_uniform = sim.activity(&uniform).total_toggles_per_cycle();
        let a_quiet = sim.activity(&quiet).total_toggles_per_cycle();
        assert!(
            a_quiet < 0.5 * a_uniform,
            "correlated inputs should slash activity: {a_quiet} vs {a_uniform}"
        );
    }
}
