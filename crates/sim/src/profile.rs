//! Per-net switching-activity profiles.

use netlist::{NetId, Netlist};

/// Per-net activity measured (or estimated) over a stream of cycles.
///
/// `toggles[i]` is the average number of transitions per clock cycle on net
/// `i`; `probability[i]` is the fraction of time the net is 1. For
/// zero-delay profiles `toggles[i] ≤ 1`; for timing (event-driven) profiles
/// glitches can push it above 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    /// Average transitions per cycle per net.
    pub toggles: Vec<f64>,
    /// One-probability per net.
    pub probability: Vec<f64>,
    /// Number of cycles observed.
    pub cycles: usize,
}

impl ActivityProfile {
    /// An all-zero profile for `n` nets.
    pub fn zeros(n: usize) -> ActivityProfile {
        ActivityProfile {
            toggles: vec![0.0; n],
            probability: vec![0.0; n],
            cycles: 0,
        }
    }

    /// Average toggles per cycle on `net`.
    pub fn toggle_rate(&self, net: NetId) -> f64 {
        self.toggles[net.index()]
    }

    /// One-probability of `net`.
    pub fn prob(&self, net: NetId) -> f64 {
        self.probability[net.index()]
    }

    /// Sum of toggle rates over all nets (total transitions per cycle).
    pub fn total_toggles_per_cycle(&self) -> f64 {
        self.toggles.iter().sum()
    }

    /// Mean toggle rate across nets.
    pub fn avg_toggles_per_cycle(&self) -> f64 {
        if self.toggles.is_empty() {
            0.0
        } else {
            self.total_toggles_per_cycle() / self.toggles.len() as f64
        }
    }

    /// Capacitance-weighted switched capacitance per cycle:
    /// `Σ_i C_load(i) · toggles(i)` in fF per cycle.
    ///
    /// Uses the netlist's analytic load model (intrinsic cap + fanout pin
    /// caps). This is the `C·N` product of the survey's Eqn. (1).
    pub fn switched_capacitance(&self, nl: &Netlist) -> f64 {
        let fanouts = nl.fanouts();
        let mut total = 0.0;
        for net in nl.iter_nets() {
            let kind = nl.kind(net);
            let fanin = nl.fanins(net).len();
            let mut load = kind.intrinsic_cap(fanin);
            for &sink in &fanouts[net.index()] {
                load += nl.kind(sink).input_cap();
            }
            total += load * self.toggles[net.index()];
        }
        total
    }
}

/// Histogram bin labels for [`QueueOccupancy`], smallest first.
const OCCUPANCY_BINS: [&str; 6] = ["le1", "le2", "le4", "le8", "le16", "gt16"];

/// Histogram of calendar-queue bucket occupancy: how many transitions each
/// popped timestamp carried. Shows where event time goes — a profile
/// dominated by 1-event buckets pays pure queue overhead per transition,
/// while fat buckets amortize fanout evaluation across a whole wave.
///
/// Recorded per shard by the event engine (only when observability is
/// enabled), merged in fixed shard order, and flushed as
/// `sim.event.occupancy.<bin>` gauges. Bucket contents are a property of
/// the event waves, not of the sharding, so the gauges are `--jobs`
/// invariant like the engine's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueOccupancy {
    /// Popped-bucket size counts, binned `<=1, <=2, <=4, <=8, <=16, >16`.
    pub bins: [u64; 6],
}

impl QueueOccupancy {
    /// Record one popped bucket of `len` transitions.
    pub fn record(&mut self, len: usize) {
        let bin = match len {
            0..=1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        };
        self.bins[bin] += 1;
    }

    /// Fold another shard's histogram into this one.
    pub fn merge(&mut self, other: &QueueOccupancy) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
    }

    /// Total buckets recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Publish the histogram as `sim.event.occupancy.<bin>` gauges.
    /// Gauges rather than counters: the histogram describes the most
    /// recent run, and re-runs overwrite it.
    pub fn flush(&self, obs: &obs::Obs) {
        if !obs.is_enabled() || self.total() == 0 {
            return;
        }
        for (label, &count) in OCCUPANCY_BINS.iter().zip(self.bins.iter()) {
            obs.gauge_set(&format!("sim.event.occupancy.{label}"), count as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;

    #[test]
    fn occupancy_bins_and_merge() {
        let mut h = QueueOccupancy::default();
        for len in [0, 1, 2, 3, 4, 5, 8, 9, 16, 17, 1000] {
            h.record(len);
        }
        assert_eq!(h.bins, [2, 1, 2, 2, 2, 2]);
        let mut other = QueueOccupancy::default();
        other.record(1);
        h.merge(&other);
        assert_eq!(h.bins[0], 3);
        assert_eq!(h.total(), 12);
    }

    #[test]
    fn occupancy_flushes_gauges_when_enabled() {
        let mut h = QueueOccupancy::default();
        h.record(1);
        h.record(7);
        let obs = obs::Obs::enabled();
        h.flush(&obs);
        let snap = obs.snapshot();
        assert_eq!(snap.gauge("sim.event.occupancy.le1"), Some(1.0));
        assert_eq!(snap.gauge("sim.event.occupancy.le8"), Some(1.0));
        assert_eq!(snap.gauge("sim.event.occupancy.gt16"), Some(0.0));
        // Disabled handles and empty histograms record nothing.
        h.flush(&obs::Obs::disabled());
        QueueOccupancy::default().flush(&obs::Obs::enabled());
    }

    #[test]
    fn aggregate_measures() {
        let mut p = ActivityProfile::zeros(4);
        p.toggles = vec![0.5, 1.0, 0.0, 0.5];
        assert!((p.total_toggles_per_cycle() - 2.0).abs() < 1e-12);
        assert!((p.avg_toggles_per_cycle() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn switched_capacitance_weighs_fanout() {
        // Net with large fanout should contribute more than a leaf net at
        // the same toggle rate.
        let mut nl = Netlist::new("fanout");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let hub = nl.add_gate(GateKind::And, &[a, b]);
        let g1 = nl.add_gate(GateKind::Not, &[hub]);
        let g2 = nl.add_gate(GateKind::Not, &[hub]);
        let g3 = nl.add_gate(GateKind::Not, &[hub]);
        nl.mark_output(g1, "y1");
        nl.mark_output(g2, "y2");
        nl.mark_output(g3, "y3");

        let mut hub_only = ActivityProfile::zeros(nl.len());
        hub_only.toggles[hub.index()] = 1.0;
        let mut leaf_only = ActivityProfile::zeros(nl.len());
        leaf_only.toggles[g1.index()] = 1.0;
        assert!(hub_only.switched_capacitance(&nl) > leaf_only.switched_capacitance(&nl));
    }
}
