//! Per-net switching-activity profiles.

use netlist::{NetId, Netlist};

/// Per-net activity measured (or estimated) over a stream of cycles.
///
/// `toggles[i]` is the average number of transitions per clock cycle on net
/// `i`; `probability[i]` is the fraction of time the net is 1. For
/// zero-delay profiles `toggles[i] ≤ 1`; for timing (event-driven) profiles
/// glitches can push it above 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityProfile {
    /// Average transitions per cycle per net.
    pub toggles: Vec<f64>,
    /// One-probability per net.
    pub probability: Vec<f64>,
    /// Number of cycles observed.
    pub cycles: usize,
}

impl ActivityProfile {
    /// An all-zero profile for `n` nets.
    pub fn zeros(n: usize) -> ActivityProfile {
        ActivityProfile {
            toggles: vec![0.0; n],
            probability: vec![0.0; n],
            cycles: 0,
        }
    }

    /// Average toggles per cycle on `net`.
    pub fn toggle_rate(&self, net: NetId) -> f64 {
        self.toggles[net.index()]
    }

    /// One-probability of `net`.
    pub fn prob(&self, net: NetId) -> f64 {
        self.probability[net.index()]
    }

    /// Sum of toggle rates over all nets (total transitions per cycle).
    pub fn total_toggles_per_cycle(&self) -> f64 {
        self.toggles.iter().sum()
    }

    /// Mean toggle rate across nets.
    pub fn avg_toggles_per_cycle(&self) -> f64 {
        if self.toggles.is_empty() {
            0.0
        } else {
            self.total_toggles_per_cycle() / self.toggles.len() as f64
        }
    }

    /// Capacitance-weighted switched capacitance per cycle:
    /// `Σ_i C_load(i) · toggles(i)` in fF per cycle.
    ///
    /// Uses the netlist's analytic load model (intrinsic cap + fanout pin
    /// caps). This is the `C·N` product of the survey's Eqn. (1).
    pub fn switched_capacitance(&self, nl: &Netlist) -> f64 {
        let fanouts = nl.fanouts();
        let mut total = 0.0;
        for net in nl.iter_nets() {
            let kind = nl.kind(net);
            let fanin = nl.fanins(net).len();
            let mut load = kind.intrinsic_cap(fanin);
            for &sink in &fanouts[net.index()] {
                load += nl.kind(sink).input_cap();
            }
            total += load * self.toggles[net.index()];
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::GateKind;

    #[test]
    fn aggregate_measures() {
        let mut p = ActivityProfile::zeros(4);
        p.toggles = vec![0.5, 1.0, 0.0, 0.5];
        assert!((p.total_toggles_per_cycle() - 2.0).abs() < 1e-12);
        assert!((p.avg_toggles_per_cycle() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn switched_capacitance_weighs_fanout() {
        // Net with large fanout should contribute more than a leaf net at
        // the same toggle rate.
        let mut nl = Netlist::new("fanout");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let hub = nl.add_gate(GateKind::And, &[a, b]);
        let g1 = nl.add_gate(GateKind::Not, &[hub]);
        let g2 = nl.add_gate(GateKind::Not, &[hub]);
        let g3 = nl.add_gate(GateKind::Not, &[hub]);
        nl.mark_output(g1, "y1");
        nl.mark_output(g2, "y2");
        nl.mark_output(g3, "y3");

        let mut hub_only = ActivityProfile::zeros(nl.len());
        hub_only.toggles[hub.index()] = 1.0;
        let mut leaf_only = ActivityProfile::zeros(nl.len());
        leaf_only.toggles[g1.index()] = 1.0;
        assert!(hub_only.switched_capacitance(&nl) > leaf_only.switched_capacitance(&nl));
    }
}
