//! Wide-word primitives shared by every bit-parallel engine.
//!
//! A [`WideWord`] packs `L` consecutive 64-cycle blocks (256 patterns at
//! the default [`LANES`] = 4), stored lane-grouped so that a gate's fanin
//! words sit contiguously and rustc's autovectorizer can keep the whole
//! fold in one 256-bit register on stable — no `std::simd`, no intrinsics.
//! Widening the entire stack to 512 bits is a one-line change here.
//!
//! Lane `l` of a wide group holds block `wb * LANES + l`, i.e. cycles
//! `64*(wb*LANES + l) .. +64`. All cross-lane concerns (toggles across
//! block boundaries, partial tails) stay with the per-lane `u64` bit
//! tricks the engines already use; a wide group is only ever a batch of
//! independent blocks evaluated together.
//!
//! Setting `LPOPT_WIDE_SCALAR=1` forces every engine back onto the
//! one-`u64`-at-a-time reference path (mirroring `LPOPT_INCR_STRESS`);
//! the proptests in `tests/wide_props.rs` pin bit-identity between the
//! two.

/// Lanes per wide word: 4 × 64 = 256 patterns per evaluation step.
pub const LANES: usize = 4;

/// A wide word at the crate's default lane count.
pub type WideWord = Wide<LANES>;

/// `L` independent 64-pattern words evaluated together.
///
/// `#[repr(transparent)]` over `[u64; L]`, so slices of lane-grouped
/// storage reinterpret freely as scalars for the tail/reference paths.
#[repr(transparent)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wide<const L: usize>(pub [u64; L]);

impl<const L: usize> Wide<L> {
    /// All lanes zero.
    pub const ZERO: Wide<L> = Wide([0; L]);

    /// The same word in every lane.
    #[inline(always)]
    pub fn splat(w: u64) -> Wide<L> {
        Wide([w; L])
    }

    /// Load from the first `L` words of a lane-grouped slice.
    #[inline(always)]
    pub fn from_slice(words: &[u64]) -> Wide<L> {
        let mut out = [0u64; L];
        out.copy_from_slice(&words[..L]);
        Wide(out)
    }

    /// Store into the first `L` words of a lane-grouped slice.
    #[inline(always)]
    pub fn write_to(self, out: &mut [u64]) {
        out[..L].copy_from_slice(&self.0);
    }

    /// Total set bits across all lanes.
    #[inline(always)]
    pub fn count_ones(self) -> u64 {
        let mut n = 0u64;
        for l in 0..L {
            n += u64::from(self.0[l].count_ones());
        }
        n
    }
}

impl<const L: usize> std::ops::BitAnd for Wide<L> {
    type Output = Wide<L>;
    #[inline(always)]
    fn bitand(mut self, rhs: Wide<L>) -> Wide<L> {
        for l in 0..L {
            self.0[l] &= rhs.0[l];
        }
        self
    }
}

impl<const L: usize> std::ops::BitOr for Wide<L> {
    type Output = Wide<L>;
    #[inline(always)]
    fn bitor(mut self, rhs: Wide<L>) -> Wide<L> {
        for l in 0..L {
            self.0[l] |= rhs.0[l];
        }
        self
    }
}

impl<const L: usize> std::ops::BitXor for Wide<L> {
    type Output = Wide<L>;
    #[inline(always)]
    fn bitxor(mut self, rhs: Wide<L>) -> Wide<L> {
        for l in 0..L {
            self.0[l] ^= rhs.0[l];
        }
        self
    }
}

impl<const L: usize> std::ops::Not for Wide<L> {
    type Output = Wide<L>;
    #[inline(always)]
    fn not(mut self) -> Wide<L> {
        for l in 0..L {
            self.0[l] = !self.0[l];
        }
        self
    }
}

/// `LPOPT_WIDE_SCALAR=1` forces the scalar `u64` reference path in every
/// engine (any value but `"0"` counts). Read at engine construction, like
/// `LPOPT_INCR_STRESS`.
pub fn scalar_env() -> bool {
    std::env::var_os("LPOPT_WIDE_SCALAR").is_some_and(|v| v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_are_per_lane() {
        let a = Wide([0b1100, 0b1010, u64::MAX, 0]);
        let b = Wide([0b1010, 0b1100, 0, u64::MAX]);
        assert_eq!((a & b).0, [0b1000, 0b1000, 0, 0]);
        assert_eq!((a | b).0, [0b1110, 0b1110, u64::MAX, u64::MAX]);
        assert_eq!((a ^ b).0, [0b0110, 0b0110, u64::MAX, u64::MAX]);
        assert_eq!((!Wide::<4>::ZERO).0, [u64::MAX; 4]);
        assert_eq!(a.count_ones(), 2 + 2 + 64);
    }

    #[test]
    fn slice_roundtrip() {
        let mut buf = [0u64; LANES];
        let w = WideWord::splat(0xDEAD_BEEF);
        w.write_to(&mut buf);
        assert_eq!(WideWord::from_slice(&buf), w);
    }
}
