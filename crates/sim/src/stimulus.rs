//! Input-pattern sources for activity measurement.
//!
//! The survey's architecture-level section stresses that *known signal
//! statistics* give better power estimates than random streams (\[21\]\[22\]);
//! these generators produce streams with controlled one-probability and
//! temporal correlation so experiments can sweep those statistics.

use netlist::Rng64;

/// A stream of input patterns (one `Vec<bool>` per clock cycle).
pub type PatternSet = Vec<Vec<bool>>;

/// Statistical description of an input stream.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// Independent uniform bits (`P(1) = 0.5`, no temporal correlation).
    Uniform {
        /// Number of input bits per pattern.
        width: usize,
    },
    /// Independent biased bits: `P(input_i = 1) = probs[i]`.
    Biased {
        /// Per-input one-probabilities.
        probs: Vec<f64>,
    },
    /// Temporally correlated bits: each input is a two-state Markov chain
    /// that *toggles* with probability `toggle[i]` per cycle (steady-state
    /// one-probability 0.5, switching activity `toggle[i]`).
    Correlated {
        /// Per-input per-cycle toggle probabilities.
        toggle: Vec<f64>,
    },
    /// A binary up-counter over the inputs (LSB is input 0); models
    /// address-bus style sequential data for the bus-coding experiments.
    Counting {
        /// Number of input bits per pattern.
        width: usize,
    },
}

impl Stimulus {
    /// Uniform stream over `width` inputs.
    pub fn uniform(width: usize) -> Stimulus {
        Stimulus::Uniform { width }
    }

    /// Biased stream with the given per-input one-probabilities.
    pub fn biased(probs: Vec<f64>) -> Stimulus {
        Stimulus::Biased { probs }
    }

    /// Correlated stream with the given per-input toggle rates.
    pub fn correlated(toggle: Vec<f64>) -> Stimulus {
        Stimulus::Correlated { toggle }
    }

    /// Counting (address-like) stream over `width` inputs.
    pub fn counting(width: usize) -> Stimulus {
        Stimulus::Counting { width }
    }

    /// Number of bits per pattern.
    pub fn width(&self) -> usize {
        match self {
            Stimulus::Uniform { width } | Stimulus::Counting { width } => *width,
            Stimulus::Biased { probs } => probs.len(),
            Stimulus::Correlated { toggle } => toggle.len(),
        }
    }

    /// Generate `cycles` patterns deterministically from `seed`.
    pub fn patterns(&self, cycles: usize, seed: u64) -> PatternSet {
        let mut rng = Rng64::new(seed);
        let width = self.width();
        let mut out = Vec::with_capacity(cycles);
        match self {
            Stimulus::Uniform { .. } => {
                for _ in 0..cycles {
                    out.push((0..width).map(|_| rng.flip()).collect());
                }
            }
            Stimulus::Biased { probs } => {
                for _ in 0..cycles {
                    out.push(probs.iter().map(|&p| rng.chance(p)).collect());
                }
            }
            Stimulus::Correlated { toggle } => {
                let mut state: Vec<bool> = (0..width).map(|_| rng.flip()).collect();
                for _ in 0..cycles {
                    out.push(state.clone());
                    for (bit, &t) in state.iter_mut().zip(toggle.iter()) {
                        if rng.chance(t) {
                            *bit = !*bit;
                        }
                    }
                }
            }
            Stimulus::Counting { .. } => {
                for k in 0..cycles {
                    out.push((0..width).map(|i| k >> i & 1 == 1).collect());
                }
            }
        }
        out
    }

    /// The expected per-input one-probability of this stream.
    pub fn expected_probability(&self, input: usize) -> f64 {
        match self {
            Stimulus::Uniform { .. } | Stimulus::Correlated { .. } => 0.5,
            Stimulus::Biased { probs } => probs[input],
            Stimulus::Counting { .. } => 0.5,
        }
    }
}

/// Measured per-input statistics of a pattern set.
#[derive(Debug, Clone, PartialEq)]
pub struct InputStats {
    /// Fraction of cycles each input was 1.
    pub probability: Vec<f64>,
    /// Per-cycle toggle rate of each input.
    pub toggle_rate: Vec<f64>,
}

/// Measure one-probability and toggle rate of each input column.
///
/// # Panics
///
/// Panics if the pattern set is empty or ragged.
pub fn measure(patterns: &PatternSet) -> InputStats {
    assert!(!patterns.is_empty(), "need at least one pattern");
    let width = patterns[0].len();
    let mut ones = vec![0usize; width];
    let mut toggles = vec![0usize; width];
    for (k, p) in patterns.iter().enumerate() {
        assert_eq!(p.len(), width, "ragged pattern set");
        for (i, &b) in p.iter().enumerate() {
            ones[i] += b as usize;
            if k > 0 && patterns[k - 1][i] != b {
                toggles[i] += 1;
            }
        }
    }
    let n = patterns.len() as f64;
    InputStats {
        probability: ones.iter().map(|&o| o as f64 / n).collect(),
        toggle_rate: toggles.iter().map(|&t| t as f64 / (n - 1.0).max(1.0)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_statistics() {
        let patterns = Stimulus::uniform(8).patterns(4000, 1);
        let stats = measure(&patterns);
        for i in 0..8 {
            assert!((stats.probability[i] - 0.5).abs() < 0.05, "p[{i}]");
            assert!((stats.toggle_rate[i] - 0.5).abs() < 0.05, "t[{i}]");
        }
    }

    #[test]
    fn biased_statistics() {
        let probs = vec![0.1, 0.5, 0.9];
        let patterns = Stimulus::biased(probs.clone()).patterns(6000, 2);
        let stats = measure(&patterns);
        for i in 0..3 {
            assert!(
                (stats.probability[i] - probs[i]).abs() < 0.04,
                "p[{i}] = {}",
                stats.probability[i]
            );
        }
        // Independent bias p has toggle rate 2p(1-p).
        let expected_toggle = 2.0 * 0.1 * 0.9;
        assert!((stats.toggle_rate[0] - expected_toggle).abs() < 0.04);
    }

    #[test]
    fn correlated_statistics() {
        let patterns = Stimulus::correlated(vec![0.05, 0.8]).patterns(6000, 3);
        let stats = measure(&patterns);
        assert!((stats.toggle_rate[0] - 0.05).abs() < 0.02);
        assert!((stats.toggle_rate[1] - 0.8).abs() < 0.03);
    }

    #[test]
    fn counting_statistics() {
        let patterns = Stimulus::counting(4).patterns(16, 0);
        // LSB toggles every cycle; bit 3 toggles twice in 16 cycles... once
        // going 0111->1000 and that's it within 0..15.
        let stats = measure(&patterns);
        assert!((stats.toggle_rate[0] - 1.0).abs() < 1e-9);
        assert!(stats.toggle_rate[3] < stats.toggle_rate[1]);
        // Pattern k encodes k.
        for (k, p) in patterns.iter().enumerate() {
            let v: usize = p.iter().enumerate().map(|(i, &b)| (b as usize) << i).sum();
            assert_eq!(v, k);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Stimulus::uniform(5).patterns(100, 42);
        let b = Stimulus::uniform(5).patterns(100, 42);
        assert_eq!(a, b);
        let c = Stimulus::uniform(5).patterns(100, 43);
        assert_ne!(a, c);
    }
}
