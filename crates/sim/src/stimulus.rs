//! Input-pattern sources for activity measurement.
//!
//! The survey's architecture-level section stresses that *known signal
//! statistics* give better power estimates than random streams (\[21\]\[22\]);
//! these generators produce streams with controlled one-probability and
//! temporal correlation so experiments can sweep those statistics.

use netlist::Rng64;

use crate::wide::LANES;

/// A stream of input patterns (one `Vec<bool>` per clock cycle).
pub type PatternSet = Vec<Vec<bool>>;

/// Statistical description of an input stream.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// Independent uniform bits (`P(1) = 0.5`, no temporal correlation).
    Uniform {
        /// Number of input bits per pattern.
        width: usize,
    },
    /// Independent biased bits: `P(input_i = 1) = probs[i]`.
    Biased {
        /// Per-input one-probabilities.
        probs: Vec<f64>,
    },
    /// Temporally correlated bits: each input is a two-state Markov chain
    /// that *toggles* with probability `toggle[i]` per cycle (steady-state
    /// one-probability 0.5, switching activity `toggle[i]`).
    Correlated {
        /// Per-input per-cycle toggle probabilities.
        toggle: Vec<f64>,
    },
    /// A binary up-counter over the inputs (LSB is input 0); models
    /// address-bus style sequential data for the bus-coding experiments.
    Counting {
        /// Number of input bits per pattern.
        width: usize,
    },
}

impl Stimulus {
    /// Uniform stream over `width` inputs.
    pub fn uniform(width: usize) -> Stimulus {
        Stimulus::Uniform { width }
    }

    /// Biased stream with the given per-input one-probabilities.
    pub fn biased(probs: Vec<f64>) -> Stimulus {
        Stimulus::Biased { probs }
    }

    /// Correlated stream with the given per-input toggle rates.
    pub fn correlated(toggle: Vec<f64>) -> Stimulus {
        Stimulus::Correlated { toggle }
    }

    /// Counting (address-like) stream over `width` inputs.
    pub fn counting(width: usize) -> Stimulus {
        Stimulus::Counting { width }
    }

    /// Number of bits per pattern.
    pub fn width(&self) -> usize {
        match self {
            Stimulus::Uniform { width } | Stimulus::Counting { width } => *width,
            Stimulus::Biased { probs } => probs.len(),
            Stimulus::Correlated { toggle } => toggle.len(),
        }
    }

    /// Generate `cycles` patterns deterministically from `seed`.
    pub fn patterns(&self, cycles: usize, seed: u64) -> PatternSet {
        let mut rng = Rng64::new(seed);
        let width = self.width();
        let mut out = Vec::with_capacity(cycles);
        match self {
            Stimulus::Uniform { .. } => {
                for _ in 0..cycles {
                    out.push((0..width).map(|_| rng.flip()).collect());
                }
            }
            Stimulus::Biased { probs } => {
                for _ in 0..cycles {
                    out.push(probs.iter().map(|&p| rng.chance(p)).collect());
                }
            }
            Stimulus::Correlated { toggle } => {
                let mut state: Vec<bool> = (0..width).map(|_| rng.flip()).collect();
                for _ in 0..cycles {
                    out.push(state.clone());
                    for (bit, &t) in state.iter_mut().zip(toggle.iter()) {
                        if rng.chance(t) {
                            *bit = !*bit;
                        }
                    }
                }
            }
            Stimulus::Counting { .. } => {
                for k in 0..cycles {
                    out.push((0..width).map(|i| k >> i & 1 == 1).collect());
                }
            }
        }
        out
    }

    /// The expected per-input one-probability of this stream.
    pub fn expected_probability(&self, input: usize) -> f64 {
        match self {
            Stimulus::Uniform { .. } | Stimulus::Correlated { .. } => 0.5,
            Stimulus::Biased { probs } => probs[input],
            Stimulus::Counting { .. } => 0.5,
        }
    }
}

/// A pattern set pre-packed into 64-cycle words (bit `k` of block `b` is
/// the input's value in cycle `64*b + k`).
///
/// The bit-parallel engines consume patterns in exactly this layout;
/// packing once per pass instead of once per `activity` call removes a
/// per-candidate O(cycles × width) transpose from the optimization inner
/// loops.
///
/// Storage is **wide-word-major**: blocks are grouped [`LANES`] at a time,
/// and within a group each input's lanes sit contiguously —
/// `words[wb * width * LANES + input * LANES + lane]` holds block
/// `wb * LANES + lane`. A gate's wide evaluation therefore reads its
/// fanin group as one contiguous `[u64; LANES]` with no per-block gather;
/// blocks past the stream's end pad their lanes with zeros.
#[derive(Debug, Clone)]
pub struct PackedPatterns {
    width: usize,
    cycles: usize,
    /// Wide-word-major, lane-grouped per input (see the type docs).
    words: Vec<u64>,
}

impl PackedPatterns {
    /// Pack a [`PatternSet`] into words.
    ///
    /// # Panics
    ///
    /// Panics if the pattern set is ragged.
    pub fn pack(patterns: &PatternSet) -> PackedPatterns {
        let width = patterns.first().map_or(0, Vec::len);
        let cycles = patterns.len();
        let nwide = cycles.div_ceil(64).div_ceil(LANES);
        let mut words = vec![0u64; nwide * width * LANES];
        for (k, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), width, "ragged pattern set");
            let block = k / 64;
            let base = (block / LANES) * width * LANES + block % LANES;
            let bit = k % 64;
            for (i, &b) in p.iter().enumerate() {
                words[base + i * LANES] |= (b as u64) << bit;
            }
        }
        PackedPatterns {
            width,
            cycles,
            words,
        }
    }

    /// Number of input bits per pattern.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of cycles in the stream.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Number of 64-cycle blocks (the last may be partial).
    pub fn num_blocks(&self) -> usize {
        self.cycles.div_ceil(64)
    }

    /// Number of valid cycles in block `b` (64 for all but a partial tail).
    pub fn block_cycles(&self, b: usize) -> usize {
        (self.cycles - b * 64).min(64)
    }

    /// Number of [`LANES`]-block wide groups (the last may cover blocks
    /// past the stream's end; their lanes are zero).
    pub fn num_wide_blocks(&self) -> usize {
        self.num_blocks().div_ceil(LANES)
    }

    /// The packed words of wide group `wb`: `width * LANES` words, input
    /// `i`'s lanes at `[i * LANES .. (i + 1) * LANES]`.
    pub fn wide_block(&self, wb: usize) -> &[u64] {
        let stride = self.width * LANES;
        &self.words[wb * stride..(wb + 1) * stride]
    }

    /// The packed word of `input` in block `b`.
    pub fn word(&self, input: usize, b: usize) -> u64 {
        debug_assert!(input < self.width && b < self.num_blocks());
        self.words[(b / LANES) * self.width * LANES + input * LANES + b % LANES]
    }

    /// Copy block `b`'s words into `out` (one `u64` per input) — the
    /// scalar engines' view of a single 64-cycle block.
    pub fn block_into(&self, b: usize, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.width);
        let base = (b / LANES) * self.width * LANES + b % LANES;
        for (i, w) in out.iter_mut().enumerate() {
            *w = self.words[base + i * LANES];
        }
    }

    /// Value of `input` in `cycle`.
    pub fn bit(&self, input: usize, cycle: usize) -> bool {
        debug_assert!(input < self.width && cycle < self.cycles);
        self.word(input, cycle / 64) >> (cycle % 64) & 1 == 1
    }
}

impl Stimulus {
    /// Generate `cycles` patterns from `seed`, pre-packed into words.
    pub fn packed(&self, cycles: usize, seed: u64) -> PackedPatterns {
        PackedPatterns::pack(&self.patterns(cycles, seed))
    }
}

/// Measured per-input statistics of a pattern set.
#[derive(Debug, Clone, PartialEq)]
pub struct InputStats {
    /// Fraction of cycles each input was 1.
    pub probability: Vec<f64>,
    /// Per-cycle toggle rate of each input.
    pub toggle_rate: Vec<f64>,
}

/// Measure one-probability and toggle rate of each input column.
///
/// # Panics
///
/// Panics if the pattern set is empty or ragged.
pub fn measure(patterns: &PatternSet) -> InputStats {
    assert!(!patterns.is_empty(), "need at least one pattern");
    let width = patterns[0].len();
    let mut ones = vec![0usize; width];
    let mut toggles = vec![0usize; width];
    for (k, p) in patterns.iter().enumerate() {
        assert_eq!(p.len(), width, "ragged pattern set");
        for (i, &b) in p.iter().enumerate() {
            ones[i] += b as usize;
            if k > 0 && patterns[k - 1][i] != b {
                toggles[i] += 1;
            }
        }
    }
    let n = patterns.len() as f64;
    InputStats {
        probability: ones.iter().map(|&o| o as f64 / n).collect(),
        toggle_rate: toggles.iter().map(|&t| t as f64 / (n - 1.0).max(1.0)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_statistics() {
        let patterns = Stimulus::uniform(8).patterns(4000, 1);
        let stats = measure(&patterns);
        for i in 0..8 {
            assert!((stats.probability[i] - 0.5).abs() < 0.05, "p[{i}]");
            assert!((stats.toggle_rate[i] - 0.5).abs() < 0.05, "t[{i}]");
        }
    }

    #[test]
    fn biased_statistics() {
        let probs = vec![0.1, 0.5, 0.9];
        let patterns = Stimulus::biased(probs.clone()).patterns(6000, 2);
        let stats = measure(&patterns);
        for i in 0..3 {
            assert!(
                (stats.probability[i] - probs[i]).abs() < 0.04,
                "p[{i}] = {}",
                stats.probability[i]
            );
        }
        // Independent bias p has toggle rate 2p(1-p).
        let expected_toggle = 2.0 * 0.1 * 0.9;
        assert!((stats.toggle_rate[0] - expected_toggle).abs() < 0.04);
    }

    #[test]
    fn correlated_statistics() {
        let patterns = Stimulus::correlated(vec![0.05, 0.8]).patterns(6000, 3);
        let stats = measure(&patterns);
        assert!((stats.toggle_rate[0] - 0.05).abs() < 0.02);
        assert!((stats.toggle_rate[1] - 0.8).abs() < 0.03);
    }

    #[test]
    fn counting_statistics() {
        let patterns = Stimulus::counting(4).patterns(16, 0);
        // LSB toggles every cycle; bit 3 toggles twice in 16 cycles... once
        // going 0111->1000 and that's it within 0..15.
        let stats = measure(&patterns);
        assert!((stats.toggle_rate[0] - 1.0).abs() < 1e-9);
        assert!(stats.toggle_rate[3] < stats.toggle_rate[1]);
        // Pattern k encodes k.
        for (k, p) in patterns.iter().enumerate() {
            let v: usize = p.iter().enumerate().map(|(i, &b)| (b as usize) << i).sum();
            assert_eq!(v, k);
        }
    }

    #[test]
    fn packed_roundtrip_matches_patterns() {
        // 100 cycles: one full block plus a 36-cycle tail.
        let patterns = Stimulus::uniform(5).patterns(100, 42);
        let packed = PackedPatterns::pack(&patterns);
        assert_eq!(packed.width(), 5);
        assert_eq!(packed.cycles(), 100);
        assert_eq!(packed.num_blocks(), 2);
        assert_eq!(packed.block_cycles(0), 64);
        assert_eq!(packed.block_cycles(1), 36);
        for (k, p) in patterns.iter().enumerate() {
            for (i, &b) in p.iter().enumerate() {
                assert_eq!(packed.bit(i, k), b, "input {i} cycle {k}");
            }
        }
        // Tail bits beyond the stream are zero.
        let mut tail = vec![0u64; packed.width()];
        packed.block_into(1, &mut tail);
        for &w in &tail {
            assert_eq!(w >> 36, 0);
        }
        // Padding lanes of the last wide group are zero too.
        assert_eq!(packed.num_wide_blocks(), 1);
        let wide = packed.wide_block(0);
        for i in 0..packed.width() {
            assert_eq!(wide[i * LANES], packed.word(i, 0));
            assert_eq!(wide[i * LANES + 1], packed.word(i, 1));
            assert_eq!(wide[i * LANES + 2], 0);
            assert_eq!(wide[i * LANES + 3], 0);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Stimulus::uniform(5).patterns(100, 42);
        let b = Stimulus::uniform(5).patterns(100, 42);
        assert_eq!(a, b);
        let c = Stimulus::uniform(5).patterns(100, 43);
        assert_ne!(a, c);
    }
}
