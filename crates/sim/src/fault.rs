//! Fault injection: stuck-at faults and transient bit flips (SEUs).
//!
//! Two complementary mechanisms:
//!
//! * **Structural** injection ([`inject_stuck_at`]) rewrites a copy of the
//!   netlist so every consumer of the faulty net reads a constant — the
//!   classic stuck-at-0/1 model used for test-pattern grading. The
//!   interface (inputs, outputs, flip-flops) is preserved exactly, so the
//!   faulty copy drops into any simulator or estimator unchanged.
//! * **Behavioral** forcing ([`FaultSim`]) overrides the value of one net
//!   *during* a running simulation without cloning the netlist — either
//!   for the whole run (stuck-at) or for a single cycle (a single-event
//!   upset). This is what the coverage and SEU-propagation loops use: one
//!   golden run, then thousands of cheap forced runs in parallel.
//!
//! Fault campaigns accept a [`ResourceBudget`]: total work is counted as
//! `cycles × nets` per faulty run against the step limit (shared across
//! worker threads), with deadline checks between runs, so an oversized
//! campaign fails with a typed error instead of running all night.

use std::sync::atomic::{AtomicU64, Ordering};

use budget::{BudgetExceeded, ResourceBudget};
use netlist::{GateKind, NetId, Netlist};

use crate::par;
use crate::stimulus::PatternSet;
use crate::wide::{self, LANES};

/// The supported fault models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Net permanently reads 0 to all consumers.
    StuckAt0,
    /// Net permanently reads 1 to all consumers.
    StuckAt1,
    /// Transient single-event upset: the net's settled value is inverted
    /// for exactly one cycle, then the circuit runs on normally (a flip
    /// captured by a register persists in state, as in a real SEU).
    BitFlip {
        /// The 0-based cycle at which the flip occurs.
        cycle: usize,
    },
}

impl FaultKind {
    /// Short mnemonic for diagnostics (`sa0`, `sa1`, `seu@<cycle>`).
    pub fn describe(self) -> String {
        match self {
            FaultKind::StuckAt0 => "sa0".to_string(),
            FaultKind::StuckAt1 => "sa1".to_string(),
            FaultKind::BitFlip { cycle } => format!("seu@{cycle}"),
        }
    }
}

/// One fault site: a net and the model applied to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The faulty net.
    pub net: NetId,
    /// The fault model.
    pub kind: FaultKind,
}

/// Typed errors from fault construction and campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// The fault names a net the netlist does not contain.
    UnknownNet {
        /// The offending net index.
        net: usize,
        /// Number of nets in the netlist.
        len: usize,
    },
    /// A transient fault names a cycle outside the pattern stream.
    CycleOutOfRange {
        /// The requested flip cycle.
        cycle: usize,
        /// Number of cycles in the stream.
        cycles: usize,
    },
    /// The campaign ran out of budget.
    Budget(BudgetExceeded),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownNet { net, len } => {
                write!(f, "fault site n{net} out of range (netlist has {len} nets)")
            }
            FaultError::CycleOutOfRange { cycle, cycles } => {
                write!(f, "flip cycle {cycle} out of range (stream has {cycles} cycles)")
            }
            FaultError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FaultError {}

impl From<BudgetExceeded> for FaultError {
    fn from(e: BudgetExceeded) -> FaultError {
        FaultError::Budget(e)
    }
}

/// A structurally faulty copy of `nl`: every consumer of `net` (fanins and
/// primary outputs) is rewired to a fresh constant. The original gate
/// remains in place driving nothing, so net indices, interface and state
/// elements are unchanged.
pub fn inject_stuck_at(nl: &Netlist, net: NetId, value: bool) -> Result<Netlist, FaultError> {
    if net.index() >= nl.len() {
        return Err(FaultError::UnknownNet {
            net: net.index(),
            len: nl.len(),
        });
    }
    let mut faulty = nl.clone();
    let stuck = faulty.add_const(value);
    faulty.replace_uses(net, stuck);
    Ok(faulty)
}

/// Every stuck-at fault on every net that could plausibly matter: both
/// polarities on each net except constants (a constant stuck at its own
/// value is undetectable by construction).
pub fn all_stuck_at_faults(nl: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::with_capacity(2 * nl.len());
    for net in nl.iter_nets() {
        match nl.kind(net) {
            GateKind::Const(v) => faults.push(Fault {
                net,
                kind: if v { FaultKind::StuckAt0 } else { FaultKind::StuckAt1 },
            }),
            _ => {
                faults.push(Fault { net, kind: FaultKind::StuckAt0 });
                faults.push(Fault { net, kind: FaultKind::StuckAt1 });
            }
        }
    }
    faults
}

/// Result of simulating one fault against the golden run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// The simulated fault.
    pub fault: Fault,
    /// First cycle at which any primary output differed, if any.
    pub first_detected: Option<usize>,
    /// For sequential circuits: whether register state still differed from
    /// the golden run when the stream ended (the fault is *latent* if this
    /// is true but no output ever differed).
    pub state_corrupted: bool,
}

impl FaultReport {
    /// Whether the fault was observable at a primary output.
    pub fn detected(&self) -> bool {
        self.first_detected.is_some()
    }
}

/// Aggregate result of a fault campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-fault outcomes, in campaign order.
    pub reports: Vec<FaultReport>,
    /// Cycles in the stimulus stream.
    pub cycles: usize,
}

impl CampaignReport {
    /// Number of faults whose effect reached a primary output.
    pub fn detected(&self) -> usize {
        self.reports.iter().filter(|r| r.detected()).count()
    }

    /// Detected / total (0.0 for an empty campaign).
    pub fn coverage(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.detected() as f64 / self.reports.len() as f64
        }
    }

    /// Number of faults that corrupted state without ever reaching an
    /// output (silent data corruption — the dangerous kind).
    pub fn latent(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.state_corrupted && !r.detected())
            .count()
    }
}

/// Reusable scratch for faulty runs: the settled-value and fanin buffers
/// survive across faults, so a campaign allocates once per worker thread
/// instead of once per run.
#[derive(Debug, Default)]
pub struct FaultArena {
    values: Vec<bool>,
    ins: Vec<bool>,
    /// Lane-grouped word buffers for the packed combinational campaign.
    w_vals: Vec<u64>,
    w_ins: Vec<u64>,
}

/// Behavioral fault simulator bound to one netlist (combinational or
/// sequential).
#[derive(Debug)]
pub struct FaultSim<'a> {
    nl: &'a Netlist,
    order: Vec<NetId>,
    wide: bool,
}

impl<'a> FaultSim<'a> {
    /// Bind a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the combinational part of the netlist is cyclic.
    pub fn new(nl: &'a Netlist) -> FaultSim<'a> {
        let order = nl.topo_order().expect("combinational part must be acyclic");
        FaultSim {
            nl,
            order,
            wide: !wide::scalar_env(),
        }
    }

    /// Force (`true`) or re-enable the default for the scalar one-cycle
    /// reference campaign. The packed campaign is bit-identical; this is
    /// the in-process hook tests and benches use instead of
    /// `LPOPT_WIDE_SCALAR`.
    pub fn with_scalar_reference(mut self, scalar: bool) -> FaultSim<'a> {
        self.wide = if scalar { false } else { !wide::scalar_env() };
        self
    }

    /// Settle one cycle with an optional forced net value, writing all net
    /// values into `values`. `state` is the flip-flop state (empty for
    /// combinational netlists).
    fn settle_forced(
        &self,
        state: &[bool],
        inputs: &[bool],
        force: Option<(NetId, bool)>,
        values: &mut Vec<bool>,
        ins: &mut Vec<bool>,
    ) {
        assert_eq!(inputs.len(), self.nl.num_inputs(), "pattern width");
        values.clear();
        values.resize(self.nl.len(), false);
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for (i, &dff) in self.nl.dffs().iter().enumerate() {
            values[dff.index()] = state[i];
        }
        if let Some((net, v)) = force {
            // Sources and registers are skipped by the sweep below, so the
            // override must land before downstream gates read them.
            values[net.index()] = v;
        }
        for &net in &self.order {
            let kind = self.nl.kind(net);
            if kind.is_source() || kind == GateKind::Dff {
                if let GateKind::Const(c) = kind {
                    if force.map(|(f, _)| f) != Some(net) {
                        values[net.index()] = c;
                    }
                }
                continue;
            }
            ins.clear();
            ins.extend(self.nl.fanins(net).iter().map(|x| values[x.index()]));
            values[net.index()] = kind.eval(ins);
            if let Some((fnet, v)) = force {
                if fnet == net {
                    values[net.index()] = v;
                }
            }
        }
    }

    fn next_state(&self, values: &[bool]) -> Vec<bool> {
        self.nl
            .dffs()
            .iter()
            .map(|&dff| {
                let fanins = self.nl.fanins(dff);
                if fanins.len() == 2 && !values[fanins[1].index()] {
                    // Hold — but a forced register value must persist, so
                    // read the (possibly forced) current value, not the
                    // pre-force state.
                    values[dff.index()]
                } else {
                    values[fanins[0].index()]
                }
            })
            .collect()
    }

    /// The fault-free output trace (and final register state) for a stream.
    pub fn golden(&self, patterns: &PatternSet) -> (Vec<Vec<bool>>, Vec<bool>) {
        match self.trace(patterns, None, &mut FaultArena::default()) {
            Ok(t) => t,
            Err(e) => unreachable!("fault-free run failed: {e}"),
        }
    }

    /// Output trace and final state with `fault` active.
    pub fn faulty(
        &self,
        patterns: &PatternSet,
        fault: Fault,
    ) -> Result<(Vec<Vec<bool>>, Vec<bool>), FaultError> {
        self.trace(patterns, Some(fault), &mut FaultArena::default())
    }

    /// [`FaultSim::faulty`] reusing `arena`'s scratch buffers.
    pub fn faulty_with(
        &self,
        patterns: &PatternSet,
        fault: Fault,
        arena: &mut FaultArena,
    ) -> Result<(Vec<Vec<bool>>, Vec<bool>), FaultError> {
        self.trace(patterns, Some(fault), arena)
    }

    fn trace(
        &self,
        patterns: &PatternSet,
        fault: Option<Fault>,
        arena: &mut FaultArena,
    ) -> Result<(Vec<Vec<bool>>, Vec<bool>), FaultError> {
        if let Some(f) = fault {
            if f.net.index() >= self.nl.len() {
                return Err(FaultError::UnknownNet {
                    net: f.net.index(),
                    len: self.nl.len(),
                });
            }
            if let FaultKind::BitFlip { cycle } = f.kind {
                if cycle >= patterns.len() {
                    return Err(FaultError::CycleOutOfRange {
                        cycle,
                        cycles: patterns.len(),
                    });
                }
            }
        }
        let mut state: Vec<bool> =
            self.nl.dffs().iter().map(|&d| self.nl.dff_init(d)).collect();
        let FaultArena { values, ins, .. } = arena;
        let mut trace = Vec::with_capacity(patterns.len());
        let dff_slot = fault.and_then(|f| {
            self.nl.dffs().iter().position(|&d| d == f.net)
        });
        for (c, p) in patterns.iter().enumerate() {
            let force = match fault {
                Some(Fault { net, kind: FaultKind::StuckAt0 }) => Some((net, false)),
                Some(Fault { net, kind: FaultKind::StuckAt1 }) => Some((net, true)),
                Some(Fault { net, kind: FaultKind::BitFlip { cycle } }) if cycle == c => {
                    // Invert what the net would have carried this cycle.
                    let clean = self.clean_value(net, &state, p, values, ins);
                    Some((net, !clean))
                }
                _ => None,
            };
            if let (Some(slot), Some((_, v))) = (dff_slot, force) {
                // A forced register bit is a *state* upset: patch the
                // stored bit so hold cycles keep the forced value.
                state[slot] = v;
            }
            self.settle_forced(&state, p, force, values, ins);
            trace.push(
                self.nl
                    .outputs()
                    .iter()
                    .map(|(net, _)| values[net.index()])
                    .collect(),
            );
            state = self.next_state(values);
        }
        Ok((trace, state))
    }

    /// The value `net` would settle to this cycle with no fault active.
    fn clean_value(
        &self,
        net: NetId,
        state: &[bool],
        pattern: &[bool],
        values: &mut Vec<bool>,
        ins: &mut Vec<bool>,
    ) -> bool {
        self.settle_forced(state, pattern, None, values, ins);
        values[net.index()]
    }

    /// Compare one fault against a precomputed golden run.
    pub fn report(
        &self,
        patterns: &PatternSet,
        fault: Fault,
        golden: &(Vec<Vec<bool>>, Vec<bool>),
    ) -> Result<FaultReport, FaultError> {
        self.report_with(patterns, fault, golden, &mut FaultArena::default())
    }

    /// [`FaultSim::report`] reusing `arena`'s scratch buffers.
    pub fn report_with(
        &self,
        patterns: &PatternSet,
        fault: Fault,
        golden: &(Vec<Vec<bool>>, Vec<bool>),
        arena: &mut FaultArena,
    ) -> Result<FaultReport, FaultError> {
        let (trace, end_state) = self.faulty_with(patterns, fault, arena)?;
        let first_detected = trace
            .iter()
            .zip(golden.0.iter())
            .position(|(a, b)| a != b);
        Ok(FaultReport {
            fault,
            first_detected,
            state_corrupted: end_state != golden.1,
        })
    }

    /// Run a fault campaign: simulate every fault in `faults` against the
    /// golden run, in parallel over up to `jobs` threads, under `budget`.
    ///
    /// Work is metered as `cycles × nets` per faulty run against the step
    /// limit (shared across threads); the deadline is polled between runs.
    /// Reports come back in campaign order regardless of thread count.
    pub fn campaign(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<CampaignReport, FaultError> {
        // Combinational campaigns run word-parallel: a faulty settle
        // covers 64·LANES cycles at once, and a stuck-at run stops at the
        // first differing group. State feedback makes the packed scheme
        // unsound for sequential netlists, so those keep the scalar path.
        if self.wide && self.nl.num_dffs() == 0 && !patterns.is_empty() {
            self.campaign_packed(patterns, faults, jobs, budget)
        } else {
            self.campaign_scalar(patterns, faults, jobs, budget)
        }
    }

    fn campaign_scalar(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<CampaignReport, FaultError> {
        budget.check_deadline()?;
        let golden = self.golden(patterns);
        let run_cost = patterns.len() as u64 * self.nl.len().max(1) as u64;
        let max_steps = budget.max_sim_steps_or(u64::MAX);
        let steps = AtomicU64::new(run_cost); // the golden run counts too
        if run_cost >= max_steps {
            return Err(budget.sim_steps_exceeded(run_cost).into());
        }
        let reports = par::par_map_with(faults, jobs, FaultArena::default, |_, &fault, arena| {
            let tally = steps.fetch_add(run_cost, Ordering::Relaxed) + run_cost;
            if tally >= max_steps {
                return Err(FaultError::Budget(budget.sim_steps_exceeded(tally)));
            }
            budget.check_deadline()?;
            self.report_with(patterns, fault, &golden, arena)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignReport {
            reports,
            cycles: patterns.len(),
        })
    }

    /// Settle one wide group (64·LANES consecutive cycles) with an
    /// optional forced net word. `input_words` is lane-grouped
    /// (`input * LANES + lane`), as is the `values` output
    /// (`net * LANES + lane`). Mirrors [`FaultSim::settle_forced`]:
    /// the force lands before downstream gates read it and survives the
    /// sweep even on sources.
    fn settle_words_forced(
        &self,
        input_words: &[u64],
        force: Option<(NetId, [u64; LANES])>,
        values: &mut Vec<u64>,
        ins: &mut Vec<u64>,
    ) {
        values.clear();
        values.resize(self.nl.len() * LANES, 0);
        for (i, &pi) in self.nl.inputs().iter().enumerate() {
            values[pi.index() * LANES..][..LANES]
                .copy_from_slice(&input_words[i * LANES..][..LANES]);
        }
        if let Some((net, w)) = force {
            values[net.index() * LANES..][..LANES].copy_from_slice(&w);
        }
        for &net in &self.order {
            let kind = self.nl.kind(net);
            if kind.is_source() {
                if let GateKind::Const(c) = kind {
                    if force.map(|(f, _)| f) != Some(net) {
                        values[net.index() * LANES..][..LANES]
                            .fill(if c { u64::MAX } else { 0 });
                    }
                }
                continue;
            }
            ins.clear();
            for f in self.nl.fanins(net) {
                ins.extend_from_slice(&values[f.index() * LANES..][..LANES]);
            }
            let out = kind.eval_wide::<LANES>(ins);
            values[net.index() * LANES..][..LANES].copy_from_slice(&out);
            if let Some((fnet, w)) = force {
                if fnet == net {
                    values[net.index() * LANES..][..LANES].copy_from_slice(&w);
                }
            }
        }
    }

    /// Word-parallel campaign over a combinational netlist. Bit-identical
    /// to [`FaultSim::campaign_scalar`]: a stuck-at fault settles group
    /// by group against the packed golden outputs and reports the first
    /// differing cycle bit; a transient flip only ever differs in its own
    /// cycle's bit column, so a single group settles with the clean word
    /// xor'd at that bit. Work metering is unchanged
    /// (`cycles × nets` per fault, golden counted once).
    fn campaign_packed(
        &self,
        patterns: &PatternSet,
        faults: &[Fault],
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<CampaignReport, FaultError> {
        budget.check_deadline()?;
        let cycles = patterns.len();
        let ninp = self.nl.num_inputs();
        let nout = self.nl.num_outputs();
        let ngroups = cycles.div_ceil(64).div_ceil(LANES);
        let gsize = ninp * LANES;
        let osize = nout * LANES;
        // Pack the stream lane-grouped: group g, input i, lane w holds
        // cycles `(g*LANES + w)*64 .. +64`; tail bits stay zero.
        let mut iw = vec![0u64; ngroups * gsize];
        for (c, p) in patterns.iter().enumerate() {
            let b = c / 64;
            let (g, w, bit) = (b / LANES, b % LANES, c % 64);
            for (i, &v) in p.iter().enumerate() {
                if v {
                    iw[g * gsize + i * LANES + w] |= 1 << bit;
                }
            }
        }
        let mut golden = vec![0u64; ngroups * osize];
        {
            let mut vals = Vec::new();
            let mut ins = Vec::new();
            for g in 0..ngroups {
                self.settle_words_forced(&iw[g * gsize..][..gsize], None, &mut vals, &mut ins);
                for (o, (net, _)) in self.nl.outputs().iter().enumerate() {
                    golden[g * osize + o * LANES..][..LANES]
                        .copy_from_slice(&vals[net.index() * LANES..][..LANES]);
                }
            }
        }
        let run_cost = cycles as u64 * self.nl.len().max(1) as u64;
        let max_steps = budget.max_sim_steps_or(u64::MAX);
        let steps = AtomicU64::new(run_cost); // the golden run counts too
        if run_cost >= max_steps {
            return Err(budget.sim_steps_exceeded(run_cost).into());
        }
        let reports = par::par_map_with(faults, jobs, FaultArena::default, |_, &fault, arena| {
            let tally = steps.fetch_add(run_cost, Ordering::Relaxed) + run_cost;
            if tally >= max_steps {
                return Err(FaultError::Budget(budget.sim_steps_exceeded(tally)));
            }
            budget.check_deadline()?;
            self.report_packed(fault, cycles, &iw, gsize, &golden, osize, ngroups, arena)
        })
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignReport { reports, cycles })
    }

    #[allow(clippy::too_many_arguments)]
    fn report_packed(
        &self,
        fault: Fault,
        cycles: usize,
        iw: &[u64],
        gsize: usize,
        golden: &[u64],
        osize: usize,
        ngroups: usize,
        arena: &mut FaultArena,
    ) -> Result<FaultReport, FaultError> {
        if fault.net.index() >= self.nl.len() {
            return Err(FaultError::UnknownNet {
                net: fault.net.index(),
                len: self.nl.len(),
            });
        }
        let bmask = |b: usize| -> u64 {
            let used = cycles - b * 64;
            if used >= 64 { u64::MAX } else { (1u64 << used) - 1 }
        };
        let first_detected = match fault.kind {
            FaultKind::StuckAt0 | FaultKind::StuckAt1 => {
                let fw = if fault.kind == FaultKind::StuckAt1 {
                    [u64::MAX; LANES]
                } else {
                    [0u64; LANES]
                };
                let mut hit = None;
                'groups: for g in 0..ngroups {
                    self.settle_words_forced(
                        &iw[g * gsize..][..gsize],
                        Some((fault.net, fw)),
                        &mut arena.w_vals,
                        &mut arena.w_ins,
                    );
                    for w in 0..LANES {
                        let b = g * LANES + w;
                        if b * 64 >= cycles {
                            break;
                        }
                        let mut diff = 0u64;
                        for (o, (net, _)) in self.nl.outputs().iter().enumerate() {
                            diff |= arena.w_vals[net.index() * LANES + w]
                                ^ golden[g * osize + o * LANES + w];
                        }
                        diff &= bmask(b);
                        if diff != 0 {
                            hit = Some(b * 64 + diff.trailing_zeros() as usize);
                            break 'groups;
                        }
                    }
                }
                hit
            }
            FaultKind::BitFlip { cycle } => {
                if cycle >= cycles {
                    return Err(FaultError::CycleOutOfRange { cycle, cycles });
                }
                let b = cycle / 64;
                let (g, w, bit) = (b / LANES, b % LANES, cycle % 64);
                // Clean settle of the flip's group to learn the net's
                // word, then re-settle with that one bit inverted. Every
                // other bit column sees clean values, so the diff is
                // confined to the flip's own column.
                self.settle_words_forced(
                    &iw[g * gsize..][..gsize],
                    None,
                    &mut arena.w_vals,
                    &mut arena.w_ins,
                );
                let mut fw = [0u64; LANES];
                fw.copy_from_slice(&arena.w_vals[fault.net.index() * LANES..][..LANES]);
                fw[w] ^= 1 << bit;
                self.settle_words_forced(
                    &iw[g * gsize..][..gsize],
                    Some((fault.net, fw)),
                    &mut arena.w_vals,
                    &mut arena.w_ins,
                );
                let mut diff = 0u64;
                for (o, (net, _)) in self.nl.outputs().iter().enumerate() {
                    diff |= arena.w_vals[net.index() * LANES + w]
                        ^ golden[g * osize + o * LANES + w];
                }
                if diff & (1 << bit) != 0 { Some(cycle) } else { None }
            }
        };
        Ok(FaultReport {
            fault,
            first_detected,
            state_corrupted: false,
        })
    }

    /// Single-event-upset sweep: one bit flip per (net, cycle) pair drawn
    /// deterministically from `seed`, `count` injections total. Returns
    /// the campaign report; [`CampaignReport::coverage`] is then the SEU
    /// *propagation fraction* — how many upsets reached an output.
    pub fn seu_sweep(
        &self,
        patterns: &PatternSet,
        count: usize,
        seed: u64,
        jobs: usize,
        budget: &ResourceBudget,
    ) -> Result<CampaignReport, FaultError> {
        let mut rng = netlist::Rng64::new(seed);
        let cycles = patterns.len().max(1);
        let faults: Vec<Fault> = (0..count)
            .map(|_| Fault {
                net: NetId::from_index(rng.range(0, self.nl.len())),
                kind: FaultKind::BitFlip { cycle: rng.range(0, cycles) },
            })
            .collect();
        self.campaign(patterns, &faults, jobs, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::CombSim;
    use crate::stimulus::Stimulus;
    use netlist::gen::{counter, ripple_adder};

    #[test]
    fn structural_injection_preserves_interface() {
        let (nl, _) = ripple_adder(4);
        let victim = nl.outputs()[0].0;
        let faulty = inject_stuck_at(&nl, victim, true).unwrap();
        assert_eq!(faulty.num_inputs(), nl.num_inputs());
        assert_eq!(faulty.num_outputs(), nl.num_outputs());
        // The faulted output is pinned high for every pattern.
        let patterns = Stimulus::uniform(8).patterns(64, 5);
        let outs = CombSim::new(&faulty).eval_outputs(&patterns);
        assert!(outs.iter().all(|o| o[0]));
        // Out-of-range sites are a typed error.
        let bogus = NetId::from_index(nl.len() + 7);
        assert!(matches!(
            inject_stuck_at(&nl, bogus, false),
            Err(FaultError::UnknownNet { .. })
        ));
    }

    #[test]
    fn behavioral_stuck_at_matches_structural() {
        let (nl, _) = ripple_adder(3);
        let patterns = Stimulus::uniform(6).patterns(80, 11);
        let sim = FaultSim::new(&nl);
        for net in nl.iter_nets() {
            for value in [false, true] {
                let structural = inject_stuck_at(&nl, net, value).unwrap();
                let expect = CombSim::new(&structural).eval_outputs(&patterns);
                let kind = if value { FaultKind::StuckAt1 } else { FaultKind::StuckAt0 };
                let (got, _) = sim.faulty(&patterns, Fault { net, kind }).unwrap();
                assert_eq!(got, expect, "net {net} sa{}", value as u8);
            }
        }
    }

    #[test]
    fn adder_coverage_is_high_under_random_patterns() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(128, 3);
        let sim = FaultSim::new(&nl);
        let faults = all_stuck_at_faults(&nl);
        let report = sim
            .campaign(&patterns, &faults, 2, &ResourceBudget::unlimited())
            .unwrap();
        // Adders are highly testable: random patterns detect nearly all
        // stuck-at faults.
        assert!(report.coverage() > 0.9, "coverage {}", report.coverage());
    }

    #[test]
    fn seu_on_counter_persists_in_state() {
        // Flip the LSB register of a free-running counter: the corrupted
        // count persists (state_corrupted) and shows at the outputs.
        let nl = counter(4);
        let patterns: PatternSet = (0..20).map(|_| vec![true]).collect();
        let sim = FaultSim::new(&nl);
        let golden = sim.golden(&patterns);
        let lsb = nl.dffs()[0];
        let report = sim
            .report(
                &patterns,
                Fault { net: lsb, kind: FaultKind::BitFlip { cycle: 7 } },
                &golden,
            )
            .unwrap();
        assert_eq!(report.first_detected, Some(7), "upset visible immediately");
        // A flipped count stays wrong forever on a counter.
        assert!(report.state_corrupted);
        // Flip cycle past the stream is a typed error.
        let err = sim
            .faulty(&patterns, Fault { net: lsb, kind: FaultKind::BitFlip { cycle: 99 } })
            .unwrap_err();
        assert!(matches!(err, FaultError::CycleOutOfRange { .. }));
    }

    #[test]
    fn packed_campaign_matches_scalar_reference() {
        // Cycle counts straddling block and group boundaries, including a
        // ragged tail; every stuck-at plus a deterministic SEU mix.
        let (nl, _) = ripple_adder(5);
        for cycles in [63, 64, 200, 256, 300] {
            let patterns = Stimulus::uniform(10).patterns(cycles, 17);
            let mut faults = all_stuck_at_faults(&nl);
            let mut rng = netlist::Rng64::new(41);
            faults.extend((0..40).map(|_| Fault {
                net: NetId::from_index(rng.range(0, nl.len())),
                kind: FaultKind::BitFlip { cycle: rng.range(0, cycles) },
            }));
            let packed = FaultSim::new(&nl)
                .campaign(&patterns, &faults, 2, &ResourceBudget::unlimited())
                .unwrap();
            let scalar = FaultSim::new(&nl)
                .with_scalar_reference(true)
                .campaign(&patterns, &faults, 1, &ResourceBudget::unlimited())
                .unwrap();
            assert_eq!(packed.reports, scalar.reports, "cycles={cycles}");
        }
    }

    #[test]
    fn campaign_budget_trips() {
        let (nl, _) = ripple_adder(4);
        let patterns = Stimulus::uniform(8).patterns(64, 9);
        let sim = FaultSim::new(&nl);
        let faults = all_stuck_at_faults(&nl);
        let run = 64 * nl.len() as u64;
        // Room for the golden run and a handful of faulty ones only.
        let tight = ResourceBudget::unlimited().with_max_sim_steps(run * 4);
        let err = sim.campaign(&patterns, &faults, 2, &tight).unwrap_err();
        assert!(matches!(err, FaultError::Budget(_)), "{err}");
        // Generous budget completes and matches the unbudgeted campaign.
        let roomy = ResourceBudget::unlimited()
            .with_max_sim_steps(run * (faults.len() as u64 + 2));
        let a = sim.campaign(&patterns, &faults, 2, &roomy).unwrap();
        let b = sim
            .campaign(&patterns, &faults, 1, &ResourceBudget::unlimited())
            .unwrap();
        assert_eq!(a.reports, b.reports, "campaign order is deterministic");
    }

    #[test]
    fn seu_sweep_is_deterministic() {
        let nl = counter(5);
        let patterns: PatternSet = (0..30).map(|_| vec![true]).collect();
        let sim = FaultSim::new(&nl);
        let a = sim
            .seu_sweep(&patterns, 40, 7, 2, &ResourceBudget::unlimited())
            .unwrap();
        let b = sim
            .seu_sweep(&patterns, 40, 7, 4, &ResourceBudget::unlimited())
            .unwrap();
        assert_eq!(a.reports, b.reports);
        assert!(a.coverage() > 0.0, "some upsets must propagate");
    }
}
