//! Simulation engines for switching-activity measurement.
//!
//! Three engines, matching the needs of the survey's experiments:
//!
//! * [`comb`] — 64-way bit-parallel **zero-delay** functional simulation.
//!   Counts *functional* transitions (value changes between settled
//!   states); this is the activity a glitch-free circuit would exhibit.
//! * [`event`] — **event-driven timing** simulation with per-gate delays.
//!   Counts *all* transitions including the spurious ones (glitches) that
//!   §III.A.2 of the survey attributes 10–40% of switching power to.
//! * [`seq`] — cycle-based **sequential** simulation of netlists with
//!   flip-flops (with load-enable support for gated-clock and
//!   precomputation architectures), counting toggles at register inputs
//!   and outputs separately (the observation behind low-power retiming).
//!
//! [`stimulus`] provides the input-pattern sources: uniform, biased,
//! temporally correlated and counting streams.
//!
//! # Example
//!
//! ```
//! use netlist::gen::ripple_adder;
//! use sim::{comb::CombSim, stimulus::Stimulus};
//!
//! let (nl, _) = ripple_adder(8);
//! let patterns = Stimulus::uniform(16).patterns(256, 7);
//! let activity = CombSim::new(&nl).activity(&patterns);
//! assert!(activity.avg_toggles_per_cycle() > 0.0);
//! ```

// Index-based loops are idiomatic for the parallel-array structures used
// throughout this EDA codebase.
#![allow(clippy::needless_range_loop)]

pub mod comb;
pub mod event;
pub mod fault;
pub mod incr;
pub mod par;
pub mod queue;
pub mod seq;
pub mod stimulus;
pub mod wide;

mod profile;

pub use profile::{ActivityProfile, QueueOccupancy};
