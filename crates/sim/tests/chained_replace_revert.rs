use netlist::{GateKind, Netlist};
use sim::incr::{Delta, IncrementalSim};
use sim::stimulus::{PackedPatterns, Stimulus};

#[test]
fn chained_replace_uses_revert_restores_outputs() {
    // x = AND(a,b); y = OR(a,b); z = XOR(a,b); output -> x
    let mut nl = Netlist::new("t");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let x = nl.add_gate(GateKind::And, &[a, b]);
    let y = nl.add_gate(GateKind::Or, &[a, b]);
    let z = nl.add_gate(GateKind::Xor, &[a, b]);
    nl.mark_output(x, "o");
    let _ = (y, z);

    let patterns = Stimulus::uniform(2).patterns(64, 1);
    let packed = PackedPatterns::pack(&patterns);
    let mut engine = IncrementalSim::from_full_eval(&nl, &packed);

    // One delta with a chained replace: x -> y, then y -> z.
    let mut delta = Delta::for_netlist(&nl);
    delta.replace_uses(x, y);
    delta.replace_uses(y, z);
    engine.apply_delta(&delta);
    assert_eq!(engine.netlist().outputs()[0].0, z);

    assert!(engine.revert());
    assert_eq!(
        engine.netlist().outputs()[0].0,
        x,
        "revert must restore the original output net"
    );
}
