//! Property tests pinning the wide-word engines to the scalar reference.
//!
//! Every engine that grew a 256-bit path in the wide-word rework — comb,
//! event, seq, incr, fault — is checked for bit-identity against the
//! scalar `u64` path on random DAGs, with cycle counts deliberately
//! straddling block (64) and wide-group (256) boundaries so tail masking
//! is always in play. The scalar side goes through
//! `with_scalar_reference(true)` where the engine exposes it; the
//! incremental engine (env-flag only) is pinned against an always-scalar
//! `CombSim` oracle instead, which covers both CI modes: with
//! `LPOPT_WIDE_SCALAR` unset this compares wide vs scalar, and with it
//! set it compares scalar vs scalar.

use budget::ResourceBudget;
use netlist::gen::{random_dag, RandomDagConfig};
use netlist::{GateKind, NetId, Netlist, Rng64};
use proptest::prelude::*;
use sim::comb::CombSim;
use sim::event::{DelayModel, EventSim};
use sim::fault::{all_stuck_at_faults, Fault, FaultKind, FaultSim};
use sim::incr::{Delta, IncrementalSim};
use sim::seq::SeqSim;
use sim::stimulus::{PackedPatterns, Stimulus};

/// A small random combinational DAG; sized so a case stays cheap even on
/// a one-core CI host while still covering multi-level reconvergence.
fn small_dag(seed: u64, inputs: usize, gates: usize) -> Netlist {
    random_dag(
        &RandomDagConfig {
            inputs,
            gates,
            outputs: 4.min(gates),
            max_fanin: 3,
            window: 24,
        },
        seed,
    )
}

/// A random sequential netlist: `dffs` feedback registers over a random
/// gate cloud, some with load-enables, registers and late gates marked
/// as outputs. Placeholder flops keep the graph acyclic at build time.
fn random_seq(seed: u64, inputs: usize, gates: usize, dffs: usize) -> Netlist {
    let mut rng = Rng64::new(seed);
    let mut nl = Netlist::new(format!("random_seq_s{seed}"));
    let ins: Vec<NetId> = (0..inputs).map(|i| nl.add_input(format!("x{i}"))).collect();
    let regs: Vec<NetId> = (0..dffs)
        .map(|_| nl.add_dff_placeholder(rng.next_u64() & 1 == 1))
        .collect();
    let mut pool: Vec<NetId> = ins.iter().chain(regs.iter()).copied().collect();
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xnor,
    ];
    for _ in 0..gates {
        let kind = kinds[rng.range(0, kinds.len())];
        let a = pool[rng.range(0, pool.len())];
        let b = pool[rng.range(0, pool.len())];
        pool.push(nl.add_gate(kind, &[a, b]));
    }
    for (i, &q) in regs.iter().enumerate() {
        // Feed each register from one of the last few gates so the
        // feedback cone is non-trivial; give a quarter of them enables.
        let d = pool[pool.len() - 1 - rng.range(0, gates.min(8))];
        nl.set_dff_data(q, d);
        if rng.next_u64() & 3 == 0 {
            let en = pool[rng.range(0, pool.len())];
            nl.set_dff_enable(q, en);
        }
        nl.mark_output(q, format!("q{i}"));
    }
    for i in 0..2 {
        nl.mark_output(pool[pool.len() - 1 - i], format!("y{i}"));
    }
    nl
}

/// Cycle counts that straddle the interesting boundaries: sub-block,
/// exact block, ragged wide group, exact wide group, multi-group tails.
fn ragged_cycles() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..64,
        Just(64usize),
        65usize..256,
        Just(256usize),
        257usize..700,
        Just(512usize),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Comb: the packed wide path reports exactly the scalar profile, and
    /// both agree with the (independent) unpacked PatternSet path, so
    /// toggle counts are conserved across all three implementations.
    #[test]
    fn comb_wide_matches_scalar(
        seed in 0u64..1 << 48,
        inputs in 4usize..12,
        gates in 12usize..120,
        cycles in ragged_cycles(),
        jobs in 1usize..4,
    ) {
        let nl = small_dag(seed, inputs, gates);
        let patterns = Stimulus::uniform(inputs).patterns(cycles, seed ^ 0x9e37);
        let packed = PackedPatterns::pack(&patterns);
        let wide = CombSim::new(&nl).activity_packed(&packed);
        let scalar = CombSim::new(&nl)
            .with_scalar_reference(true)
            .activity_packed(&packed);
        prop_assert_eq!(&wide, &scalar);
        // Conservation: the bool-vector path counts the same transitions.
        let unpacked = CombSim::new(&nl).activity_jobs(&patterns, jobs);
        prop_assert_eq!(&wide, &unpacked);
        // Per-net toggle totals are integral transition counts: toggles
        // are normalized over the cycles-1 consecutive-pattern pairs.
        let pairs = cycles.saturating_sub(1).max(1);
        for &t in &wide.toggles {
            let total = t * pairs as f64;
            prop_assert!((total - total.round()).abs() < 1e-6);
            prop_assert!(total.round() as usize <= pairs);
        }
    }

    /// Event: dense Jacobi blocks evaluated 256 lanes at a time produce
    /// the same timing activity (total and functional) as the scalar
    /// word loop, including glitch counts.
    #[test]
    fn event_wide_matches_scalar(
        seed in 0u64..1 << 48,
        inputs in 4usize..10,
        gates in 12usize..80,
        cycles in 200usize..600,
        unit in any::<bool>(),
    ) {
        let nl = small_dag(seed, inputs, gates);
        let model = if unit {
            DelayModel::Unit
        } else {
            DelayModel::Analytic { resolution: 4 }
        };
        let patterns = Stimulus::uniform(inputs).patterns(cycles, seed ^ 0x51ed);
        let wide = EventSim::new(&nl, &model).activity(&patterns);
        let scalar = EventSim::new(&nl, &model)
            .with_scalar_reference(true)
            .activity(&patterns);
        prop_assert_eq!(&wide.total, &scalar.total);
        prop_assert_eq!(&wide.functional, &scalar.functional);
    }

    /// Incr: resident packed words and the wide early cut-off reproduce
    /// the always-scalar full-eval profile, both at build time and after
    /// random rewire deltas.
    #[test]
    fn incr_wide_matches_scalar_oracle(
        seed in 0u64..1 << 48,
        inputs in 4usize..10,
        gates in 20usize..90,
        cycles in ragged_cycles(),
        edits in 1usize..4,
    ) {
        let nl = small_dag(seed, inputs, gates);
        let packed = Stimulus::uniform(inputs).packed(cycles, seed ^ 0xabcd);
        let mut incr = IncrementalSim::from_full_eval(&nl, &packed);
        let oracle = CombSim::new(&nl)
            .with_scalar_reference(true)
            .activity_packed(&packed);
        prop_assert_eq!(&incr.activity(), &oracle);

        let mut rng = Rng64::new(seed ^ 0xfeed);
        let mut current = nl.clone();
        let kinds = [GateKind::And, GateKind::Or, GateKind::Xor, GateKind::Nand];
        for _ in 0..edits {
            // Rewire a random gate to earlier nets: indices stay strictly
            // decreasing along fanin edges, so the DAG stays acyclic.
            let target = rng.range(inputs, current.len());
            let a = NetId::from_index(rng.range(0, target));
            let b = NetId::from_index(rng.range(0, target));
            let kind = kinds[rng.range(0, kinds.len())];
            let mut delta = Delta::for_netlist(incr.netlist());
            delta.set_gate(NetId::from_index(target), kind, &[a, b]);
            incr.apply_delta(&delta);
            delta.apply_to(&mut current);
            let oracle = CombSim::new(&current)
                .with_scalar_reference(true)
                .activity_packed(&packed);
            prop_assert_eq!(&incr.activity(), &oracle);
        }
    }

    /// Fault: the packed combinational campaign reports the same
    /// first-detection cycle for every stuck-at and bit-flip as the
    /// scalar per-cycle campaign.
    #[test]
    fn fault_packed_matches_scalar(
        seed in 0u64..1 << 48,
        inputs in 4usize..10,
        gates in 10usize..60,
        cycles in 1usize..420,
        flips in 0usize..12,
        jobs in 1usize..3,
    ) {
        let nl = small_dag(seed, inputs, gates);
        let patterns = Stimulus::uniform(inputs).patterns(cycles, seed ^ 0x7777);
        let mut faults = all_stuck_at_faults(&nl);
        let mut rng = Rng64::new(seed ^ 0x1234);
        faults.extend((0..flips).map(|_| Fault {
            net: NetId::from_index(rng.range(0, nl.len())),
            kind: FaultKind::BitFlip { cycle: rng.range(0, cycles) },
        }));
        let packed = FaultSim::new(&nl)
            .campaign(&patterns, &faults, jobs, &ResourceBudget::unlimited())
            .unwrap();
        let scalar = FaultSim::new(&nl)
            .with_scalar_reference(true)
            .campaign(&patterns, &faults, 1, &ResourceBudget::unlimited())
            .unwrap();
        prop_assert_eq!(&packed.reports, &scalar.reports);
    }
}

proptest! {
    // Seq cases cost cycles × nets × 2 engines each; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seq: the virtual-stream wide path (engaged at ≥1024 cycles)
    /// reproduces the serial scalar run exactly — net activity, register
    /// D/Q toggles, and load fractions — across chunk boundaries and
    /// ragged tails, in and out of sharded (`jobs`) mode.
    #[test]
    fn seq_wide_matches_scalar(
        seed in 0u64..1 << 48,
        inputs in 3usize..8,
        gates in 10usize..50,
        dffs in 1usize..6,
        cycles in 1024usize..1600,
        jobs in 1usize..4,
    ) {
        let nl = random_seq(seed, inputs, gates, dffs);
        let patterns = Stimulus::uniform(inputs).patterns(cycles, seed ^ 0xbeef);
        let wide = SeqSim::new(&nl).activity_jobs(&patterns, jobs);
        let scalar = SeqSim::new(&nl)
            .with_scalar_reference(true)
            .activity(&patterns);
        prop_assert_eq!(&wide.profile, &scalar.profile);
        prop_assert_eq!(&wide.ff_output_toggles, &scalar.ff_output_toggles);
        prop_assert_eq!(&wide.ff_input_toggles, &scalar.ff_input_toggles);
        prop_assert_eq!(&wide.ff_load_fraction, &scalar.ff_load_fraction);
    }
}
